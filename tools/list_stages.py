#!/usr/bin/env python
"""Generate the registry tables in ``docs/stages.md`` from the code.

Imports the stage/method registries (:mod:`repro.core.registry`) and
rewrites the marker-delimited block in ``docs/stages.md`` — the method
table and the predictor/quantizer/encoder stage tables — from the same
entries the compressor resolves at runtime, so the documentation cannot
drift from what the code dispatches.  The prose around the block is
hand-written and untouched (unlike ``tools/list_metrics.py``, which owns
its whole file).

The generated block is committed; ``tests/test_docs.py`` regenerates it
in-memory and fails when the two drift, so registering a member without
re-running this tool breaks the tier-1 suite with a one-line fix::

    python tools/list_stages.py            # rewrite the block in docs/stages.md
    python tools/list_stages.py --check    # exit 1 when stale (CI)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import registry  # noqa: E402

BEGIN = "<!-- BEGIN REGISTRY TABLES (tools/list_stages.py) -->"
END = "<!-- END REGISTRY TABLES -->"

DOC_PATH = Path("docs") / "stages.md"


def generate_block() -> str:
    """The registry tables, rendered from the live registries."""
    registry.ensure_members()
    lines = [
        BEGIN,
        "<!-- auto-generated — do not edit between these markers; "
        "run `python tools/list_stages.py` after registering -->",
        "",
        "### Methods",
        "",
        "| name | id | predictors | quantizer | encoder | needs ref | "
        "description |",
        "|---|---|---|---|---|---|---|",
    ]
    for entry in registry.method_entries():
        predictors = ", ".join(f"`{p}`" for p in entry.predictors)
        lines.append(
            f"| `{entry.name}` | {entry.method_id} | {predictors} | "
            f"`{entry.quantizer}` | `{entry.encoder}` | "
            f"{'yes' if entry.needs_reference else 'no'} | "
            f"{entry.description} |"
        )
    for stage_registry in (
        registry.PREDICTORS,
        registry.QUANTIZERS,
        registry.ENCODERS,
    ):
        lines.append("")
        lines.append(f"### {stage_registry.kind.capitalize()} stages")
        lines.append("")
        lines.append("| name | defined in | description |")
        lines.append("|---|---|---|")
        for entry in stage_registry.entries():
            lines.append(
                f"| `{entry.name}` | `src/repro/{entry.ref}` | "
                f"{entry.description} |"
            )
    lines.append("")
    lines.append(END)
    return "\n".join(lines)


def render(current: str) -> str:
    """``current`` with its marker block replaced by a fresh one."""
    start = current.find(BEGIN)
    end = current.find(END)
    if start < 0 or end < 0 or end < start:
        raise SystemExit(
            f"{DOC_PATH} is missing the {BEGIN!r} / {END!r} markers; "
            "restore them before regenerating"
        )
    return current[:start] + generate_block() + current[end + len(END):]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the docs/stages.md block is out of date",
    )
    args = parser.parse_args(argv)
    target = args.root / DOC_PATH
    if not target.exists():
        print(f"{target} does not exist", file=sys.stderr)
        return 1
    current = target.read_text()
    text = render(current)
    if args.check:
        if current != text:
            print(
                f"{target} is stale; run `python tools/list_stages.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.write_text(text)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
