#!/usr/bin/env python
"""Check that the repo's markdown documentation does not reference
things that do not exist.

Three classes of reference are verified across every tracked ``*.md``
file:

* **relative markdown links** — ``[text](path)`` must resolve to a file
  or directory in the repository (external ``http(s)``/``mailto``
  links are skipped: CI must not depend on the network);
* **anchors** — ``[text](path#heading)`` and in-page ``[text](#h)``
  must name a heading that exists in the target file, using GitHub's
  heading-to-anchor slug rules;
* **backticked repo paths** — `` `docs/formats.md` ``-style mentions of
  repository files must point at files that exist, so prose does not
  rot when modules are renamed.

Exit status is the number of broken references (0 = clean).  Run from
anywhere; the repo root is located relative to this file.

Usage::

    python tools/check_docs_links.py [--root DIR] [-v]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.  Nested brackets in the text are out of scope.
_LINK = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*(```|~~~)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# `path/with.ext` mentions in prose.  Require a slash plus a known doc/
# code extension so `a.b` attribute spellings and bare module names are
# not mistaken for paths.
_BACKTICK_PATH = re.compile(
    r"`([A-Za-z0-9_.\-/]+/[A-Za-z0-9_.\-]+\."
    r"(?:py|md|yml|yaml|json|jsonl|txt|toml|cfg|sh))`"
)

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _markdown_files(root: Path) -> list[Path]:
    skip_dirs = {
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".claude",
        "__pycache__",
        "node_modules",
    }
    files = []
    for path in sorted(root.rglob("*.md")):
        if not skip_dirs.intersection(p.name for p in path.parents):
            files.append(path)
    return files


def _strip_fences(text: str) -> list[str]:
    """Return the file's lines with fenced code blocks blanked out.

    Line numbers are preserved (blanked, not removed) so reports point
    at the real line.  Links inside code fences are examples, not
    references.
    """

    out = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def _slugify(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (the common subset:
    lowercase, strip punctuation except hyphens/underscores, spaces to
    hyphens).  Inline code/links inside the heading are unwrapped first.
    """

    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](u) -> t
    text = text.replace("`", "")
    text = text.lower().strip()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    slugs: dict[str, int] = {}
    out = set()
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        m = _HEADING.match(line)
        if not m:
            continue
        slug = _slugify(m.group(2))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def check(root: Path, verbose: bool = False) -> list[str]:
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = _anchors(path)
        return anchor_cache[path]

    for md in _markdown_files(root):
        rel = md.relative_to(root)
        lines = _strip_fences(md.read_text(encoding="utf-8"))
        checked = 0
        for lineno, line in enumerate(lines, 1):
            for m in _LINK.finditer(line):
                target = m.group(1)
                if target.startswith(_SKIP_SCHEMES):
                    continue
                checked += 1
                path_part, _, anchor = target.partition("#")
                if path_part:
                    dest = (md.parent / path_part).resolve()
                    if not dest.exists():
                        problems.append(
                            f"{rel}:{lineno}: broken link -> {target}"
                        )
                        continue
                else:
                    dest = md  # in-page anchor
                if anchor:
                    if dest.suffix != ".md" or dest.is_dir():
                        continue  # anchors into non-markdown: not checkable
                    if anchor.lower() not in anchors_of(dest):
                        problems.append(
                            f"{rel}:{lineno}: missing anchor -> {target}"
                        )
            for m in _BACKTICK_PATH.finditer(line):
                target = m.group(1)
                checked += 1
                # Prose shortens `src/repro/sz/huffman.py` to
                # `sz/huffman.py` or `repro/sz/huffman.py`; accept any
                # of the conventional roots.
                candidates = (
                    root / target,
                    root / "src" / target,
                    root / "src" / "repro" / target,
                )
                if not any(c.exists() for c in candidates):
                    problems.append(
                        f"{rel}:{lineno}: backticked path does not exist"
                        f" -> `{target}`"
                    )
        if verbose:
            print(f"{rel}: {checked} references checked")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    problems = check(args.root.resolve(), verbose=args.verbose)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken reference(s)", file=sys.stderr)
    else:
        print("docs links ok")
    return min(len(problems), 255)


if __name__ == "__main__":
    raise SystemExit(main())
