#!/usr/bin/env python
"""Pin legacy-member archive bytes against the pre-registry seed.

The stage-registry refactor (core/registry.py) must not change a single
byte of any archive produced by the legacy members (VQ / VQT / MT and the
default ADP pool).  This tool compresses one deterministic synthetic
trajectory under the 12 canonical container configurations — every legacy
method crossed with three framing variants — and records the BLAKE2b
digest of each archive::

    python tools/legacy_digests.py --write    # rewrite tests/data/legacy_digests.json
    python tools/legacy_digests.py --check    # exit 1 on any byte drift (CI)

The JSON file is committed; ``tests/test_registry.py`` re-derives the
digests in-process so a drift breaks the tier-1 suite, and the CI
entropy-smoke job runs ``--check`` so it also fails fast with a
one-line diff of which configuration moved.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

DIGEST_PATH = Path("tests") / "data" / "legacy_digests.json"

#: The 12 canonical container configurations: every legacy method crossed
#: with three framing variants (sequence ordering, entropy fan-out, and
#: the trailing dictionary coder).
VARIANTS = {
    "seq2-zlib": dict(sequence_mode="seq2", lossless_backend="zlib",
                      entropy_streams=None),
    "seq1-h1-zlib": dict(sequence_mode="seq1", lossless_backend="zlib",
                         entropy_streams=1),
    "seq2-lzma": dict(sequence_mode="seq2", lossless_backend="lzma",
                      entropy_streams=None),
}
METHODS = ("vq", "vqt", "mt", "adp")


def pinned_trajectory() -> np.ndarray:
    """The deterministic (16, 120, 3) trajectory every digest derives from.

    Level-structured space plus smooth temporal drift, so VQ, VQT, and MT
    all see the regime they were built for and ADP's trials exercise all
    three members.
    """
    rng = np.random.default_rng(20260807)
    levels = rng.integers(0, 9, (120, 3)) * 1.7
    vibration = rng.normal(0.0, 0.03, (16, 120, 3))
    drift = np.cumsum(rng.normal(0.0, 0.004, (16, 1, 3)), axis=0)
    return levels[None, :, :] + vibration + drift


def compute() -> dict:
    """``{config key: blake2b hexdigest}`` over the 12 configurations."""
    from repro.core.config import MDZConfig
    from repro.io.container import write_container

    trajectory = pinned_trajectory()
    digests: dict[str, str] = {}
    for method in METHODS:
        for variant, fields in VARIANTS.items():
            config = MDZConfig(
                error_bound=1e-3,
                buffer_size=5,
                method=method,
                **fields,
            )
            blob = write_container(trajectory, config)
            key = f"{method}/{variant}"
            digests[key] = hashlib.blake2b(blob, digest_size=16).hexdigest()
    return digests


def load(root: Path) -> dict:
    return json.loads((root / DIGEST_PATH).read_text())


def render(digests: dict) -> str:
    return json.dumps(
        {
            "comment": (
                "BLAKE2b-128 of write_container() output on the pinned "
                "trajectory (tools/legacy_digests.py); regenerate only "
                "when an intentional format change lands"
            ),
            "digests": digests,
        },
        indent=2,
        sort_keys=True,
    ) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="rewrite the committed digest file")
    mode.add_argument("--check", action="store_true",
                      help="exit 1 when any archive's bytes drifted")
    args = parser.parse_args(argv)
    target = args.root / DIGEST_PATH
    current = compute()
    if args.write:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(render(current))
        print(f"wrote {target} ({len(current)} configurations)")
        return 0
    if not target.exists():
        print(f"{target} missing; run `python tools/legacy_digests.py "
              "--write`", file=sys.stderr)
        return 1
    pinned = load(args.root)["digests"]
    drifted = sorted(
        key for key in pinned
        if current.get(key) != pinned[key]
    ) + sorted(set(current) - set(pinned))
    if drifted:
        for key in drifted:
            print(
                f"archive bytes drifted for {key}: "
                f"pinned {pinned.get(key, '<absent>')} != "
                f"current {current.get(key, '<absent>')}",
                file=sys.stderr,
            )
        return 1
    print(f"all {len(pinned)} legacy archive digests match")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
