"""Chaos tests: deterministic fault injection against the MDZ2 pipeline.

The matrix parametrizes (fault kind x serial/parallel x chunk-boundary
offset) and asserts the no-silent-loss invariant for every cell: a run
ends in either a byte-exact archive or a salvage report accounting for
all snapshots, with every salvaged snapshot byte-identical to the
pristine decode.  Chunk-boundary offsets are computed from a pristine
archive's real layout, so faults land exactly at frame starts, inside
payloads, and on the last byte of a frame.
"""

import io
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.exceptions import ContainerFormatError
from repro.faults import (
    ChaosResult,
    FaultPlan,
    FaultSpec,
    FaultyFile,
    apply_posthoc,
    run_chaos,
)
from repro.io.container import verify_container, write_container
from repro.stream import (
    StreamingReader,
    StreamingWriter,
    parse_stream,
    repair_stream,
    stream_compress,
    verify_stream,
)
from repro.stream import format as fmt
from repro.telemetry import recording

BUFFER_SIZE = 4
SNAPSHOTS = 16


@pytest.fixture(scope="module")
def positions():
    rng = np.random.default_rng(42)
    return rng.normal(size=(SNAPSHOTS, 20, 3)).cumsum(axis=0)


@pytest.fixture(scope="module")
def config():
    return MDZConfig(error_bound=1e-3, buffer_size=BUFFER_SIZE)


@pytest.fixture(scope="module")
def pristine(positions, config):
    buf = io.BytesIO()
    stream_compress(positions, buf, config)
    return buf.getvalue()


@pytest.fixture(scope="module")
def boundary_offsets(pristine):
    """Three byte offsets probing one mid-stream chunk frame exactly:
    its first header byte, a payload byte, and its final byte."""
    layout = parse_stream(pristine)
    entry = layout.chunks[4]  # a mid-stream chunk (buffer 1, axis 1)
    frame_start = entry.offset - fmt._CHUNK_HEAD.size
    frame_end = entry.offset + entry.length  # exclusive
    return {
        "frame_start": frame_start,
        "mid_payload": entry.offset + entry.length // 2,
        "frame_last_byte": frame_end - 1,
    }


def _assert_no_silent_loss(result: ChaosResult):
    """The invariant every matrix cell must satisfy."""
    assert result.ok, result.to_json()
    if result.outcome == "intact":
        assert result.byte_exact
        assert result.readable_snapshots == result.snapshots_fed
    else:
        assert result.accounted and result.content_exact
        covered = result.readable_snapshots + len(result.lost_snapshots)
        if result.truncated_tail:
            assert covered <= result.snapshots_fed
        else:
            assert covered == result.snapshots_fed
        # Lost indices are unique, sorted, and in range.
        lost = result.lost_snapshots
        assert lost == sorted(set(lost))
        assert all(0 <= i < result.snapshots_fed for i in lost)


# -- the matrix ---------------------------------------------------------


@pytest.mark.parametrize("workers", [0, 2], ids=["serial", "parallel"])
@pytest.mark.parametrize(
    "kind,times",
    [
        ("io_error", 1),  # transient: retries absorb it
        ("io_error", 10),  # permanent: writer crashes at the fence
        ("torn_write", 1),
        ("torn_write", 10),
    ],
    ids=["enospc-1", "enospc-perm", "torn-1", "torn-perm"],
)
@pytest.mark.parametrize(
    "boundary", ["frame_start", "mid_payload", "frame_last_byte"]
)
def test_write_fault_matrix(
    positions, config, boundary_offsets, kind, times, boundary, workers
):
    if workers and boundary != "mid_payload":
        pytest.skip("parallel runs cover one offset (pool startup cost)")
    plan = FaultPlan(
        (
            FaultSpec(
                kind,
                offset=boundary_offsets[boundary],
                length=5,
                times=times,
            ),
        ),
        seed=1,
    )
    result = run_chaos(positions, plan, config, workers=workers)
    _assert_no_silent_loss(result)
    assert result.injected, "the fault never fired"
    if times == 1:
        # A single transient failure must be fully absorbed by retries.
        assert result.outcome == "intact"
        assert result.crashed is None
    else:
        # A permanent fault crashes the writer; the fence guarantees a
        # salvageable prefix (footer-less, so the tail is flagged).
        assert result.outcome == "salvaged"
        assert result.crashed is not None
        assert result.truncated_tail


@pytest.mark.parametrize(
    "boundary", ["frame_start", "mid_payload", "frame_last_byte"]
)
@pytest.mark.parametrize("kind", ["corrupt", "truncate"])
def test_posthoc_fault_matrix(
    positions, config, boundary_offsets, kind, boundary
):
    spec = (
        FaultSpec(kind, offset=boundary_offsets[boundary], length=3)
        if kind == "corrupt"
        else FaultSpec(kind, offset=boundary_offsets[boundary])
    )
    result = run_chaos(positions, FaultPlan((spec,), seed=2), config)
    _assert_no_silent_loss(result)
    assert result.outcome == "salvaged"
    if kind == "corrupt":
        # Footer survived: the loss accounting must be exact.
        assert not result.truncated_tail
        assert (
            result.readable_snapshots + len(result.lost_snapshots)
            == SNAPSHOTS
        )
        assert result.lost_snapshots, "corruption must cost something"


@pytest.mark.parametrize("workers", [0, 2], ids=["serial", "parallel"])
@pytest.mark.parametrize("times", [1, 10], ids=["transient", "permanent"])
def test_worker_fault_matrix(positions, config, times, workers):
    plan = FaultPlan(
        (FaultSpec("worker_fail", job_index=2, times=times),), seed=3
    )
    result = run_chaos(positions, plan, config, workers=workers)
    _assert_no_silent_loss(result)
    if times == 1:
        assert result.outcome == "intact"
    else:
        assert result.outcome == "salvaged"
        assert result.crashed is not None


def test_combined_faults(positions, config, boundary_offsets):
    """A transient write fault plus post-hoc bit rot in one run."""
    plan = FaultPlan(
        (
            FaultSpec("io_error", offset=boundary_offsets["mid_payload"], times=1),
            FaultSpec(
                "corrupt",
                offset=boundary_offsets["frame_last_byte"],
                length=2,
                xor_mask=0x0F,
            ),
        ),
        seed=4,
    )
    result = run_chaos(positions, plan, config)
    _assert_no_silent_loss(result)
    assert result.outcome == "salvaged"


def test_seeded_plans_are_deterministic(positions, config):
    a = FaultPlan.random(99, size_hint=2000, n_faults=3)
    b = FaultPlan.random(99, size_hint=2000, n_faults=3)
    assert a.to_json() == b.to_json()
    r1 = run_chaos(positions, a, config)
    r2 = run_chaos(positions, b, config)
    assert r1.outcome == r2.outcome
    assert r1.lost_snapshots == r2.lost_snapshots
    assert r1.readable_snapshots == r2.readable_snapshots
    _assert_no_silent_loss(r1)


@pytest.mark.parametrize("seed", range(5))
def test_random_plan_sweep(positions, config, seed, pristine):
    """Seeded random plans never produce silent loss."""
    plan = FaultPlan.random(
        seed, size_hint=len(pristine), n_faults=2, jobs_hint=9
    )
    _assert_no_silent_loss(run_chaos(positions, plan, config))


def test_plan_json_roundtrip():
    plan = FaultPlan.random(7, n_faults=4)
    again = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
    assert again == plan


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike")
    with pytest.raises(ValueError):
        FaultSpec("io_error", times=0)
    with pytest.raises(ValueError):
        FaultSpec("corrupt", xor_mask=0)
    with pytest.raises(ValueError):
        FaultyFile(io.BytesIO(), [FaultSpec("corrupt")])


def test_faulty_file_is_transparent_without_faults(positions, config, pristine):
    """An empty fault set must not change a single byte."""
    buf = io.BytesIO()
    shim = FaultyFile(buf, [])
    with StreamingWriter(shim, config=config) as w:
        w.feed_many(positions)
    assert buf.getvalue() == pristine
    assert shim.injected == []


def test_apply_posthoc_clamps():
    blob = bytes(range(100))
    assert apply_posthoc(blob, [FaultSpec("corrupt", offset=5000)]) == blob
    assert apply_posthoc(blob, [FaultSpec("truncate", offset=-10)]) == blob[:90]
    flipped = apply_posthoc(
        blob, [FaultSpec("corrupt", offset=0, length=1, xor_mask=0xFF)]
    )
    assert flipped[0] == 0xFF and flipped[1:] == blob[1:]


def test_fault_telemetry_counters(positions, config, boundary_offsets):
    """Injected faults and writer retries surface as telemetry."""
    plan = FaultPlan(
        (
            FaultSpec(
                "io_error", offset=boundary_offsets["mid_payload"], times=2
            ),
        )
    )
    with recording() as rec:
        result = run_chaos(positions, plan, config)
    counters = rec.snapshot()["counters"]
    assert counters.get("faults.injected.io_error") == 2
    assert counters.get("stream.writer.write_retries", 0) >= 2
    assert counters.get("stream.writer.rollbacks", 0) >= 2
    assert result.outcome == "intact"


# -- repair and verify (the ISSUE acceptance paths) ---------------------


def test_repair_recovers_all_chunks_before_truncation(pristine):
    layout = parse_stream(pristine)
    # Cut inside chunk 8's payload: chunks 0..7 are fully before the cut.
    cut = layout.chunks[8].offset + 10
    repaired, report = repair_stream(pristine[:cut])
    assert report["chunks_kept"] == 8
    check = verify_stream(repaired)
    assert check["intact"], check
    # The repaired archive decodes its complete-buffer prefix cleanly.
    reader = StreamingReader(repaired)
    decoded = reader.read_all()
    full = StreamingReader(pristine).read_all()
    assert np.array_equal(decoded, full[: decoded.shape[0]])


def test_verify_reports_incomplete_buffer_after_repair(pristine):
    layout = parse_stream(pristine)
    cut = layout.chunks[5].offset + layout.chunks[5].length  # after (1, 2)...
    repaired, _ = repair_stream(pristine[: layout.chunks[4].offset + 3])
    check = verify_stream(repaired)
    assert check["intact"]
    assert check["warnings"], "partial buffer must be flagged"


def test_salvage_report_json_accounts_everything(pristine):
    bad = apply_posthoc(
        pristine,
        [FaultSpec("corrupt", offset=len(pristine) // 2, length=4)],
    )
    report = StreamingReader(bad, salvage=True).salvage_report()
    data = report.to_json()
    assert data["expected_snapshots"] == SNAPSHOTS
    assert (
        data["readable_snapshots"] + len(data["lost_snapshots"])
        == SNAPSHOTS
    )
    statuses = {b["buffer"]: b for b in data["buffers"]}
    for status in statuses.values():
        lo, hi = status["snapshots"]
        covered = set(range(lo, hi))
        if status["decodable"]:
            assert not covered & set(data["lost_snapshots"])
        else:
            assert covered <= set(data["lost_snapshots"])


# -- clean errors on degenerate files (both formats) --------------------


@pytest.mark.parametrize(
    "payload",
    [b"", b"MDZ2", b"MDZ2" + b"\x00" * 8, b"\x01\x04\x00\x00\x00\x00\x00\x00\x00MDZ"],
    ids=["empty", "magic-only", "short-header", "torn-mdz1"],
)
def test_degenerate_files_raise_clean_errors(tmp_path, payload):
    target = tmp_path / "broken.mdz"
    target.write_bytes(payload)
    with pytest.raises(ContainerFormatError) as exc_info:
        StreamingReader(target)
    message = str(exc_info.value)
    assert str(target) in message
    assert "struct" not in message  # never leak struct.error internals


def test_verify_container_dispatches_both_formats(positions, config, pristine):
    mdz1 = write_container(positions, config)
    r1 = verify_container(mdz1)
    assert r1["format"] == "MDZ1" and r1["intact"]
    r1bad = verify_container(mdz1[:-7])
    assert not r1bad["intact"] and r1bad["errors"]
    r2 = verify_container(pristine)
    assert r2["format"] == "MDZ2" and r2["intact"]
    with pytest.raises(ContainerFormatError):
        verify_container(b"")


# -- CLI round trip -----------------------------------------------------


def _mdz(*argv, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
    )


def test_cli_verify_and_repair_walkthrough(tmp_path, pristine):
    """The README "Crash safety" walkthrough, as a test."""
    broken = tmp_path / "broken.mdz"
    broken.write_bytes(pristine[: int(len(pristine) * 0.7)])

    audit = _mdz("verify", str(broken), cwd=tmp_path)
    assert audit.returncode == 1
    assert "DAMAGED" in audit.stdout

    fixed = tmp_path / "fixed.mdz"
    report_path = tmp_path / "salvage.json"
    repair = _mdz(
        "repair", str(broken), str(fixed), "--report", str(report_path),
        cwd=tmp_path,
    )
    assert repair.returncode == 0, repair.stderr
    assert "snapshots recovered" in repair.stdout

    audit2 = _mdz("verify", str(fixed), "--json", str(tmp_path / "v.json"),
                  cwd=tmp_path)
    assert audit2.returncode == 0, audit2.stdout
    assert "intact" in audit2.stdout
    report = json.loads(report_path.read_text())
    assert report["readable_snapshots"] >= 1
    assert json.loads((tmp_path / "v.json").read_text())["intact"]


def test_cli_verify_empty_file(tmp_path):
    empty = tmp_path / "empty.mdz"
    empty.write_bytes(b"")
    result = _mdz("verify", str(empty), cwd=tmp_path)
    assert result.returncode == 1
    assert "empty" in result.stderr
    assert "Traceback" not in result.stderr
