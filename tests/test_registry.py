"""Stage/method registry: contract, byte-stability, and the new members.

Four layers of guarantees:

1. **Registry contract** — wire ids come from ``METHOD_IDS``, every
   member's declared stage composition resolves, pool validation rejects
   bad input.
2. **Byte identity** — the registry refactor did not move a single byte
   of any legacy archive.  Re-derives the 12 pinned configurations from
   ``tools/legacy_digests.py`` in-process and compares against the
   committed JSON captured on the pre-registry seed.
3. **New members** — ``interp`` and ``bitadaptive`` round-trip within
   the bound across the container matrix, and ADP with the extended pool
   actually *selects* each of them on a regime built for it.
4. **Bitpack codec** — unit tests for the per-region fixed-width
   encoder stage backing ``bitadaptive``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import registry
from repro.core.config import MDZConfig
from repro.core.methods import METHOD_IDS
from repro.exceptions import ConfigurationError, DecompressionError
from repro.io.container import (
    read_container,
    read_container_info,
    write_container,
)
from repro.sz.bitpack import (
    REGION_SIZE,
    bitpack_decode,
    bitpack_encode,
    bitpack_estimate,
    unpack_uniform,
)
from repro.sz.quantizer import QuantizedBlock

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import legacy_digests  # noqa: E402

FULL_POOL = ("vq", "vqt", "mt", "interp", "bitadaptive")


def assert_in_bound(
    recon: np.ndarray,
    data: np.ndarray,
    eb: float,
    span_source: np.ndarray | None = None,
) -> None:
    """Per-axis value-range-relative bound, as the container applies it.

    ``span_source`` supplies the full trajectory when ``data`` is only a
    slice of it (the bound is derived from the whole session's range).
    """
    if span_source is None:
        span_source = data
    spans = span_source.max(axis=(0, 1)) - span_source.min(axis=(0, 1))
    errors = np.abs(recon - data).max(axis=(0, 1))
    assert np.all(errors <= eb * spans * (1 + 1e-9) + 1e-12), (
        errors,
        eb * spans,
    )

#: The three framing variants of the canonical 12-configuration matrix.
VARIANTS = legacy_digests.VARIANTS


# ---------------------------------------------------------------------------
# registry contract


class TestRegistryContract:
    def test_every_wire_id_is_registered(self):
        assert registry.method_names() == tuple(
            sorted(METHOD_IDS, key=METHOD_IDS.get)
        )

    def test_entries_carry_the_wire_ids(self):
        for entry in registry.method_entries():
            assert entry.method_id == METHOD_IDS[entry.name]

    def test_declared_stages_resolve(self):
        """Every member's composition names real stage entries."""
        for entry in registry.method_entries():
            for predictor in entry.predictors:
                assert registry.PREDICTORS.get(predictor).name == predictor
            assert registry.QUANTIZERS.get(entry.quantizer)
            assert registry.ENCODERS.get(entry.encoder)

    def test_get_method_is_a_singleton(self):
        assert registry.get_method("mt") is registry.get_method("mt")
        assert (
            registry.create_method("mt") is not registry.create_method("mt")
        )

    def test_register_rejects_unreserved_name(self):
        with pytest.raises(ConfigurationError, match="no wire id"):
            registry.register_method(
                "not-a-method",
                object,
                predictors=(),
                description="",
            )

    def test_register_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.register_method(
                "mt", object, predictors=(), description=""
            )

    def test_unknown_stage_lists_registered_names(self):
        registry.ensure_members()
        with pytest.raises(ConfigurationError, match="huffman-int-stream"):
            registry.ENCODERS.get("nope")

    def test_validate_members(self):
        assert registry.validate_members(["mt", "interp"]) == (
            "mt",
            "interp",
        )
        with pytest.raises(ConfigurationError, match="at least one"):
            registry.validate_members(())
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.validate_members(("mt", "mt"))
        with pytest.raises(ConfigurationError, match="unknown method"):
            registry.validate_members(("mt", "nope"))

    def test_config_validates_the_pool(self):
        with pytest.raises(ConfigurationError):
            MDZConfig(method="adp", adp_members=("mt", "nope"))
        cfg = MDZConfig(method="adp", adp_members=["mt", "interp"])
        assert cfg.adp_members == ("mt", "interp")

    def test_default_pool_is_the_paper_trio(self):
        assert registry.DEFAULT_MEMBERS == ("vq", "vqt", "mt")
        assert MDZConfig().adp_members == registry.DEFAULT_MEMBERS


# ---------------------------------------------------------------------------
# byte identity of the legacy members


class TestLegacyByteIdentity:
    def test_pinned_digests_match(self):
        """The 12 canonical archives are byte-identical to the seed."""
        pinned = legacy_digests.load(REPO_ROOT)["digests"]
        current = legacy_digests.compute()
        assert current == pinned, (
            "legacy archive bytes drifted; if intentional, regenerate "
            "with `python tools/legacy_digests.py --write`"
        )

    def test_default_header_has_no_members_key(self, trajectory):
        """Default-pool archives must keep the legacy header shape."""
        blob = write_container(
            trajectory, MDZConfig(error_bound=1e-3, method="adp")
        )
        assert read_container_info(blob).members is None

    def test_non_default_pool_is_recorded(self, trajectory):
        cfg = MDZConfig(
            error_bound=1e-3, method="adp", adp_members=("mt", "interp")
        )
        blob = write_container(trajectory, cfg)
        info = read_container_info(blob)
        assert info.members == ("mt", "interp")
        chosen = set().union(*info.methods_per_axis)
        assert chosen <= {"mt", "interp"}
        assert_in_bound(read_container(blob), trajectory, 1e-3)


# ---------------------------------------------------------------------------
# new members: round-trip + bound across the container matrix

EB = 1e-3


@pytest.fixture
def curved_trajectory() -> np.ndarray:
    """Smooth per-atom oscillation: the regime the new members target."""
    rng = np.random.default_rng(42)
    T, N = 16, 120
    steps = np.arange(T)[:, None, None]
    phase = rng.uniform(0, 2 * np.pi, (1, N, 3))
    freq = rng.uniform(0.05, 0.3, (1, N, 3))
    amp = rng.uniform(0.5, 3.0, (1, N, 3))
    return amp * np.sin(freq * steps + phase) + rng.normal(
        0, 1e-4, (T, N, 3)
    )


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize(
    "method, pool",
    [
        ("interp", None),
        ("bitadaptive", None),
        ("adp", FULL_POOL),
        ("adp", ("interp", "bitadaptive")),
    ],
    ids=["interp", "bitadaptive", "adp-full", "adp-new-only"],
)
def test_new_member_matrix(curved_trajectory, method, pool, variant):
    """Round-trip within bound for every new-member container config."""
    extra = {"adp_members": pool} if pool else {}
    config = MDZConfig(
        error_bound=EB,
        buffer_size=5,
        method=method,
        **VARIANTS[variant],
        **extra,
    )
    blob = write_container(curved_trajectory, config)
    recon = read_container(blob)
    assert recon.shape == curved_trajectory.shape
    assert_in_bound(recon, curved_trajectory, EB)
    info = read_container_info(blob)
    assert info.method == method
    if method != "adp":
        assert set().union(*info.methods_per_axis) == {method}


def test_interp_supports_random_access(curved_trajectory):
    """Interp decodes buffers in isolation (no session reference)."""
    from repro.io.container import read_container_batch

    config = MDZConfig(error_bound=EB, buffer_size=5, method="interp")
    blob = write_container(curved_trajectory, config)
    batch = read_container_batch(blob, 2)
    assert_in_bound(
        batch, curved_trajectory[10:15], EB, span_source=curved_trajectory
    )


# ---------------------------------------------------------------------------
# ADP matrix: each new member wins (and is chosen) on some regime


def _sizes(data: np.ndarray, eb: float, buffer_size: int) -> dict[str, int]:
    return {
        method: len(
            write_container(
                data,
                MDZConfig(
                    error_bound=eb, buffer_size=buffer_size, method=method
                ),
            )
        )
        for method in FULL_POOL
    }


def _adp_selections(
    data: np.ndarray, eb: float, buffer_size: int
) -> dict[str, int]:
    blob = write_container(
        data,
        MDZConfig(
            error_bound=eb,
            buffer_size=buffer_size,
            method="adp",
            adp_members=FULL_POOL,
        ),
    )
    info = read_container_info(blob)
    totals: dict[str, int] = {}
    for axis in info.methods_per_axis:
        for name, count in axis.items():
            totals[name] = totals.get(name, 0) + count
    return totals


class TestADPMatrix:
    """Each new member beats every legacy member on at least one regime,
    and full-pool ADP picks it there — the pool extension pays for real.
    """

    @staticmethod
    def _smooth_large_amplitude() -> np.ndarray:
        """Low-frequency, large-amplitude oscillation under a tight bound:
        first differences span many bins (hurting Huffman *and* region
        widths) while interp's second-difference residuals stay tiny.
        """
        rng = np.random.default_rng(7)
        T, N = 32, 200
        steps = np.arange(T)[:, None, None]
        phase = rng.uniform(0, 2 * np.pi, (1, N, 3))
        freq = rng.uniform(0.05, 0.2, (1, N, 3))
        amp = rng.uniform(0.5, 8.0, (1, N, 3))
        return amp * np.sin(freq * steps + phase) + rng.normal(
            0, 2e-6, (T, N, 3)
        )

    @staticmethod
    def _mixed_oscillation() -> np.ndarray:
        """Moderate oscillation at a loose bound: codes are small and
        locally homogeneous, so per-region fixed widths beat a global
        Huffman codebook.
        """
        rng = np.random.default_rng(7)
        T, N = 32, 200
        steps = np.arange(T)[:, None, None]
        phase = rng.uniform(0, 2 * np.pi, (1, N, 3))
        freq = rng.uniform(0.05, 0.15, (1, N, 3))
        amp = rng.uniform(0.5, 2.0, (1, N, 3))
        return amp * np.sin(freq * steps + phase) + rng.normal(
            0, 1e-4, (T, N, 3)
        )

    def test_interp_wins_smooth_regime(self):
        sizes = _sizes(self._smooth_large_amplitude(), eb=1e-4, buffer_size=16)
        assert min(sizes, key=sizes.get) == "interp", sizes

    def test_bitadaptive_wins_oscillatory_regime(self):
        sizes = _sizes(self._mixed_oscillation(), eb=1e-3, buffer_size=8)
        assert min(sizes, key=sizes.get) == "bitadaptive", sizes

    def test_adp_selects_interp_where_it_wins(self):
        picks = _adp_selections(
            self._smooth_large_amplitude(), eb=1e-4, buffer_size=16
        )
        assert picks.get("interp", 0) > 0, picks

    def test_adp_selects_bitadaptive_where_it_wins(self):
        picks = _adp_selections(
            self._mixed_oscillation(), eb=1e-3, buffer_size=8
        )
        assert picks.get("bitadaptive", 0) > 0, picks


# ---------------------------------------------------------------------------
# bitpack codec


def _block(codes: np.ndarray, wide=(), marker=999, order="C"):
    return QuantizedBlock(
        codes=np.asarray(codes, dtype=np.int64),
        wide=np.asarray(wide, dtype=np.int64),
        marker=marker,
        order=order,
    )


class TestBitpackCodec:
    def test_round_trip(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(-500, 500, (7, 321))
        block = _block(codes, wide=[12345, -99])
        for layout in ("C", "F"):
            out = bitpack_decode(bitpack_encode(block, layout))
            assert np.array_equal(out.codes, block.codes)
            assert np.array_equal(out.wide, block.wide)
            assert out.marker == block.marker
            assert out.order == block.order

    def test_small_regions_round_trip(self):
        rng = np.random.default_rng(4)
        codes = rng.integers(-5, 5, 1000)
        block = _block(codes)
        blob = bitpack_encode(block, "C", region=64)
        assert np.array_equal(bitpack_decode(blob).codes, codes)

    def test_constant_region_costs_zero_payload_bits(self):
        """A quiet region (span 0) stores only its offset."""
        flat = bitpack_encode(_block(np.full(REGION_SIZE, 7)))
        spread = bitpack_encode(
            _block(np.arange(REGION_SIZE) % 256)
        )
        assert len(flat) < len(spread) - REGION_SIZE // 2

    def test_empty_block(self):
        out = bitpack_decode(bitpack_encode(_block(np.zeros((0, 4)))))
        assert out.codes.shape == (0, 4)

    def test_estimate_tracks_actual_size(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(-300, 300, (6, 2000))
        block = _block(codes, wide=[7] * 10)
        actual = len(bitpack_encode(block, "F"))
        estimate = bitpack_estimate(block, "F")
        assert abs(estimate - actual) <= max(64, actual // 20)

    def test_unpack_rejects_corrupt_widths(self):
        with pytest.raises(DecompressionError, match="widths"):
            unpack_uniform(b"\x00" * 8, np.array([60]))

    def test_unpack_rejects_exhausted_payload(self):
        with pytest.raises(DecompressionError, match="exhausted"):
            unpack_uniform(b"\x00", np.array([16, 16]))

    def test_decode_rejects_region_table_mismatch(self):
        blob = bitpack_encode(_block(np.arange(100)), "C", region=10)
        # Re-frame with a lying region size in the JSON header.
        from repro.serde import BlobReader, BlobWriter

        reader = BlobReader(blob)
        meta = reader.read_json()
        meta["region"] = 25
        writer = BlobWriter()
        writer.write_json(meta)
        for _ in range(4):
            writer.write_bytes(reader.read_bytes())
        with pytest.raises(DecompressionError, match="region table"):
            bitpack_decode(writer.getvalue())
