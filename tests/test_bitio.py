"""Tests for bit streams, varints, zigzag, and vectorized code packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompressionError
from repro.sz.bitio import (
    BitReader,
    BitWriter,
    clz64,
    decode_varints,
    encode_varints,
    pack_codes,
    unpack_bits,
    zigzag_decode,
    zigzag_encode,
)


class TestBitStream:
    def test_simple_fields(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0xFFFF, 16)
        w.write(0, 5)
        r = BitReader(w.getvalue())
        assert r.read(3) == 0b101
        assert r.read(16) == 0xFFFF
        assert r.read(5) == 0

    def test_single_bits(self):
        w = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in bits] == bits

    def test_wide_field(self):
        w = BitWriter()
        w.write(2**63 + 12345, 64)
        assert BitReader(w.getvalue()).read(64) == 2**63 + 12345

    def test_bit_length_property(self):
        w = BitWriter()
        w.write(3, 2)
        w.write(1, 9)
        assert w.bit_length == 11

    def test_exhaustion_raises(self):
        w = BitWriter()
        w.write(1, 4)
        r = BitReader(w.getvalue())
        r.read(8)  # padding byte allows this
        with pytest.raises(DecompressionError):
            r.read(8)

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(1, -1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(1, 33)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, fields):
        w = BitWriter()
        expected = []
        for value, nbits in fields:
            w.write(value, nbits)
            expected.append(value & ((1 << nbits) - 1))
        r = BitReader(w.getvalue())
        got = [r.read(nbits) for _, nbits in fields]
        assert got == expected


class TestZigzag:
    def test_small_values(self):
        v = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert np.array_equal(zigzag_encode(v), [0, 1, 2, 3, 4])

    def test_round_trip_extremes(self):
        v = np.array([0, 2**62, -(2**62), 17, -17], dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(v)), v)

    @given(st.lists(st.integers(-(2**62), 2**62), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, values):
        v = np.array(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(v)), v)


class TestVarints:
    def test_known_encoding(self):
        # 300 = 0b1_0101100 -> 0xAC 0x02
        assert encode_varints(np.array([300], dtype=np.uint64)) == b"\xac\x02"

    def test_empty(self):
        assert encode_varints(np.empty(0, dtype=np.uint64)) == b""
        assert decode_varints(b"", 0).size == 0

    def test_round_trip_mixed_sizes(self):
        v = np.array([0, 1, 127, 128, 2**32, 2**63 - 1], dtype=np.uint64)
        assert np.array_equal(decode_varints(encode_varints(v), v.size), v)

    def test_truncation_detected(self):
        blob = encode_varints(np.array([2**40], dtype=np.uint64))
        with pytest.raises(DecompressionError):
            decode_varints(blob[:-1], 1)

    @given(st.lists(st.integers(0, 2**64 - 1), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, values):
        v = np.array(values, dtype=np.uint64)
        assert np.array_equal(decode_varints(encode_varints(v), v.size), v)


class TestClz64:
    def test_known_values(self):
        x = np.array([0, 1, 2, 255, 2**63], dtype=np.uint64)
        assert np.array_equal(clz64(x), [64, 63, 62, 56, 0])

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=80, deadline=None)
    def test_matches_bit_length(self, value):
        expected = 64 - value.bit_length()
        assert clz64(np.array([value], dtype=np.uint64))[0] == expected


class TestPackCodes:
    def test_empty(self):
        assert pack_codes(np.empty(0, np.uint64), np.empty(0, np.int64)) == b""

    def test_against_bitwriter(self):
        rng = np.random.default_rng(3)
        lengths = rng.integers(1, 24, 200)
        codes = np.array(
            [rng.integers(0, 2**int(n)) for n in lengths], dtype=np.uint64
        )
        packed = pack_codes(codes, lengths)
        w = BitWriter()
        for c, n in zip(codes, lengths):
            w.write(int(c), int(n))
        assert packed == w.getvalue()

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1], np.uint64), np.array([60]))

    def test_unpack_bits(self):
        assert np.array_equal(
            unpack_bits(b"\xa0"), [1, 0, 1, 0, 0, 0, 0, 0]
        )


class TestClz64Boundaries:
    """Exhaustive boundary coverage for the frexp-based implementation.

    Float64 rounding can push values just below a power of two up to
    exactly ``2**k``; every such edge (including the extremes 0, 1,
    ``2**63`` and ``2**64 - 1``) must still produce an exact count.
    """

    def test_required_extremes(self):
        x = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert np.array_equal(clz64(x), [64, 63, 0, 0])

    def test_all_powers_of_two_and_neighbours(self):
        values, expected = [], []
        for k in range(64):
            p = 1 << k
            for v in (p - 1, p, p + 1):
                if 0 < v < 2**64:
                    values.append(v)
                    expected.append(64 - v.bit_length())
        got = clz64(np.array(values, dtype=np.uint64))
        assert np.array_equal(got, expected)

    def test_all_ones_prefixes(self):
        # 0b1, 0b11, 0b111, ... — the worst case for mantissa rounding.
        values = [(1 << k) - 1 for k in range(1, 65)]
        got = clz64(np.array(values, dtype=np.uint64))
        assert np.array_equal(got, [64 - v.bit_length() for v in values])

    def test_scalar_and_multidim_inputs(self):
        assert clz64(np.uint64(255)) == 56
        arr = np.array([[1, 2], [4, 8]], dtype=np.uint64)
        assert np.array_equal(clz64(arr), [[63, 62], [61, 60]])


class TestPackCodesChunked:
    def test_crosses_chunk_boundary(self):
        from repro.sz.bitio import PACK_CHUNK

        rng = np.random.default_rng(17)
        n = PACK_CHUNK * 2 + 1234
        lengths = rng.integers(1, 17, n)
        codes = (
            rng.integers(0, 2**16, n).astype(np.uint64)
            & ((np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1))
        )
        packed = pack_codes(codes, lengths)
        # Reference: pack each half separately at the bit level.
        w = BitWriter()
        for c, l in zip(codes[:300].tolist(), lengths[:300].tolist()):
            w.write(c, l)
        prefix = w.getvalue()[:-1]  # drop the possibly-padded final byte
        assert packed[: len(prefix)] == prefix
        total_bits = int(lengths.sum())
        assert len(packed) == (total_bits + 7) // 8

    def test_chunk_local_widths(self):
        from repro.sz.bitio import PACK_CHUNK

        # First chunk all 1-bit codes, second chunk wide codes: the chunked
        # expansion must not leak one chunk's max_len into the other.
        lengths = np.concatenate(
            [np.ones(PACK_CHUNK, dtype=np.int64), np.full(10, 57)]
        )
        codes = np.concatenate(
            [np.ones(PACK_CHUNK, dtype=np.uint64), np.full(10, (1 << 57) - 1, np.uint64)]
        )
        packed = pack_codes(codes, lengths)
        assert len(packed) == (PACK_CHUNK + 10 * 57 + 7) // 8
        assert packed[: PACK_CHUNK // 8] == b"\xff" * (PACK_CHUNK // 8)

    def test_zero_length_entries_contribute_nothing(self):
        codes = np.array([0b101, 0, 0b11, 0], dtype=np.uint64)
        lengths = np.array([3, 0, 2, 0], dtype=np.int64)
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b11, 2)
        assert pack_codes(codes, lengths) == w.getvalue()

    def test_all_zero_lengths(self):
        assert pack_codes(np.zeros(5, np.uint64), np.zeros(5, np.int64)) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1], np.uint64), np.array([-1]))
