"""Tests for trajectory statistics (MSD / VACF / diffusion) and the
extended compression-fidelity checks built on them."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    diffusion_coefficient,
    displacement_histogram,
    mean_squared_displacement,
    velocity_autocorrelation,
)
from repro.core.config import MDZConfig
from repro.core.mdz import MDZ


class TestMSD:
    def test_static_atoms_zero_msd(self):
        positions = np.ones((10, 20, 3)) * 4.2
        msd = mean_squared_displacement(positions)
        assert np.allclose(msd, 0.0)

    def test_ballistic_motion_quadratic(self):
        t = np.arange(20, dtype=np.float64)
        velocity = np.array([1.0, 0.0, 0.0])
        positions = np.zeros((20, 5, 3)) + t[:, None, None] * velocity
        msd = mean_squared_displacement(positions, max_lag=8)
        lags = np.arange(9, dtype=np.float64)
        assert np.allclose(msd, lags**2)

    def test_random_walk_linear(self, rng):
        steps = rng.normal(0, 0.5, (400, 200, 3))
        positions = np.cumsum(steps, axis=0)
        msd = mean_squared_displacement(positions, max_lag=20)
        # MSD(tau) = 3 * sigma^2 * tau for a 3D Gaussian walk
        expected = 3 * 0.25 * np.arange(21)
        assert np.allclose(msd, expected, rtol=0.1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((5, 4)))


class TestVACF:
    def test_unit_at_zero_lag(self, rng):
        v = rng.normal(0, 1, (30, 50, 3))
        vacf = velocity_autocorrelation(v)
        assert vacf[0] == 1.0

    def test_white_noise_decorrelates(self, rng):
        v = rng.normal(0, 1, (300, 100, 3))
        vacf = velocity_autocorrelation(v, max_lag=5)
        assert np.abs(vacf[1:]).max() < 0.05

    def test_constant_velocity_stays_one(self):
        v = np.ones((20, 10, 3))
        vacf = velocity_autocorrelation(v, max_lag=5)
        assert np.allclose(vacf, 1.0)

    def test_zero_velocities_no_nan(self):
        vacf = velocity_autocorrelation(np.zeros((10, 5, 3)))
        assert np.allclose(vacf, 0.0)


class TestDiffusion:
    def test_known_walk_coefficient(self, rng):
        dt = 0.1
        sigma = 0.3
        steps = rng.normal(0, sigma, (600, 300, 3))
        positions = np.cumsum(steps, axis=0)
        d = diffusion_coefficient(positions, dt)
        # D = sigma^2 / (2 dt) per axis -> MSD slope 6D = 3 sigma^2 / dt
        expected = sigma**2 / (2 * dt)
        assert d == pytest.approx(expected, rel=0.15)

    def test_tiny_fit_range_rejected(self, rng):
        positions = np.cumsum(rng.normal(0, 1, (10, 5, 3)), axis=0)
        with pytest.raises(ValueError):
            diffusion_coefficient(positions, 0.1, fit_range=(2, 3))


class TestDisplacementHistogram:
    def test_density_normalized(self, rng):
        positions = np.cumsum(rng.normal(0, 0.2, (30, 100, 3)), axis=0)
        centers, density = displacement_histogram(positions, lag=2)
        widths = centers[1] - centers[0]
        assert np.sum(density) * widths == pytest.approx(1.0, rel=1e-6)

    def test_invalid_lag_rejected(self, rng):
        positions = rng.normal(0, 1, (5, 10, 3))
        with pytest.raises(ValueError):
            displacement_histogram(positions, lag=5)


class TestCompressionPreservesStatistics:
    """Extended fidelity: MSD/VACF survive compression at sane bounds."""

    def test_msd_preserved(self, rng):
        steps = rng.normal(0, 0.2, (40, 150, 3))
        positions = np.cumsum(steps, axis=0) + rng.uniform(0, 30, (1, 150, 3))
        mdz = MDZ(MDZConfig(error_bound=1e-3, buffer_size=10))
        restored = mdz.decompress(mdz.compress(positions))
        msd_ref = mean_squared_displacement(positions, max_lag=10)
        msd_out = mean_squared_displacement(restored, max_lag=10)
        assert np.allclose(msd_out[1:], msd_ref[1:], rtol=0.05)

    def test_vacf_preserved(self, rng):
        # OU velocities -> exponentially decaying VACF
        v = np.empty((60, 200, 3))
        v[0] = rng.normal(0, 1, (200, 3))
        for t in range(1, 60):
            v[t] = 0.8 * v[t - 1] + 0.6 * rng.normal(0, 1, (200, 3))
        positions = np.cumsum(v, axis=0) * 0.05
        mdz = MDZ(MDZConfig(error_bound=1e-4, buffer_size=10))
        restored = mdz.decompress(mdz.compress(positions))
        velocity_out = np.diff(restored, axis=0)
        velocity_ref = np.diff(positions, axis=0)
        vacf_ref = velocity_autocorrelation(velocity_ref, max_lag=8)
        vacf_out = velocity_autocorrelation(velocity_out, max_lag=8)
        assert np.allclose(vacf_out, vacf_ref, atol=0.05)
