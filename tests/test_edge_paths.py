"""Edge-path tests: error branches and rarely-hit code in every layer."""

import numpy as np
import pytest

from repro.baselines.api import Compressor, SessionMeta, register_compressor
from repro.baselines.hrtc import _segment_trajectory
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.exceptions import CompressionError, DecompressionError
from repro.io.container import read_container_info, write_container
from repro.sz.huffman import HuffmanCodec
from repro.sz.pipeline import decode_int_stream, encode_int_stream
from repro.sz.quantizer import LinearQuantizer


class TestSessionMeta:
    def test_effective_original_atoms_fallback(self):
        assert SessionMeta(n_atoms=42).effective_original_atoms == 42
        assert (
            SessionMeta(n_atoms=42, original_atoms=7_000_000)
            .effective_original_atoms
            == 7_000_000
        )

    def test_as_batch_promotes_1d(self):
        out = Compressor.as_batch(np.arange(5.0))
        assert out.shape == (1, 5)

    def test_as_batch_rejects_3d(self):
        with pytest.raises(CompressionError):
            Compressor.as_batch(np.zeros((2, 3, 4)))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("mdz", lambda: None)


class TestPipelineLayouts:
    def test_bad_layout_rejected(self):
        q = LinearQuantizer(0.1)
        block = q.split(np.zeros((2, 3), np.int64), np.zeros((2, 3), np.int64))
        with pytest.raises(ValueError, match="layout"):
            encode_int_stream(block, layout="Z")

    def test_corrupt_layout_tag_detected(self):
        q = LinearQuantizer(0.1)
        block = q.split(np.zeros((2, 3), np.int64), np.zeros((2, 3), np.int64))
        blob = encode_int_stream(block, "C")
        corrupted = blob.replace(b'"layout":"C"', b'"layout":"Q"')
        assert corrupted != blob
        with pytest.raises(DecompressionError, match="layout"):
            decode_int_stream(corrupted)

    def test_f_layout_round_trip_preserves_shape(self, rng):
        q = LinearQuantizer(0.1, scale=64)
        codes = rng.integers(-10, 10, (4, 7))
        block = q.split(codes, codes, order="F")
        back = decode_int_stream(encode_int_stream(block, "F"))
        assert np.array_equal(back.codes, block.codes)
        assert back.order == "F"


class TestHuffmanDensePath:
    def test_dense_codebook_round_trip(self, rng):
        values = rng.integers(-100, 100, 5000)
        blob_dense = HuffmanCodec.encode(values, alphabet_hint=1025)
        blob_sparse = HuffmanCodec.encode(values)
        assert np.array_equal(HuffmanCodec.decode(blob_dense), values)
        assert np.array_equal(HuffmanCodec.decode(blob_sparse), values)

    def test_hint_too_small_falls_back_to_sparse(self, rng):
        values = rng.integers(0, 10_000, 500)
        blob = HuffmanCodec.encode(values, alphabet_hint=16)
        assert np.array_equal(HuffmanCodec.decode(blob), values)

    def test_dense_single_symbol(self):
        values = np.full(100, 7, dtype=np.int64)
        blob = HuffmanCodec.encode(values, alphabet_hint=1025)
        assert np.array_equal(HuffmanCodec.decode(blob), values)


class TestHRTCSegmentation:
    def test_perfect_line_single_segment(self):
        values = np.linspace(0.0, 10.0, 50)
        lengths, ends = _segment_trajectory(
            values, anchor_q=0, grid=0.01, tol=0.05
        )
        assert lengths == [49]

    def test_constant_trajectory(self):
        values = np.full(30, 5.0)
        lengths, ends = _segment_trajectory(
            values, anchor_q=500, grid=0.01, tol=0.05
        )
        assert sum(lengths) == 29

    def test_jump_creates_short_segment(self):
        values = np.zeros(20)
        values[10:] = 100.0
        lengths, _ = _segment_trajectory(values, 0, grid=0.01, tol=0.05)
        assert sum(lengths) == 19
        assert len(lengths) >= 2

    def test_two_point_trajectory(self):
        lengths, ends = _segment_trajectory(
            np.array([1.0, 2.0]), anchor_q=100, grid=0.01, tol=0.05
        )
        assert sum(lengths) == 1


class TestMDZAxisEdges:
    def test_single_atom_stream(self):
        stream = np.cumsum(np.random.default_rng(0).normal(0, 0.1, (20, 1)), 0)
        enc = MDZAxisCompressor(MDZConfig(method="adp"))
        dec = MDZAxisCompressor(MDZConfig(method="adp"))
        enc.begin(0.01, SessionMeta(n_atoms=1))
        dec.begin(0.01, SessionMeta(n_atoms=1))
        out = dec.decompress_batch(enc.compress_batch(stream))
        assert np.abs(out - stream).max() <= 0.01 * (1 + 1e-9)

    def test_constant_stream(self):
        stream = np.full((8, 40), 3.25)
        enc = MDZAxisCompressor(MDZConfig(method="vq"))
        dec = MDZAxisCompressor(MDZConfig(method="vq"))
        enc.begin(0.5, SessionMeta(n_atoms=40))
        dec.begin(0.5, SessionMeta(n_atoms=40))
        blob = enc.compress_batch(stream)
        out = dec.decompress_batch(blob)
        assert np.abs(out - stream).max() <= 0.5
        # Constant data compresses to almost nothing.
        assert len(blob) < 600

    def test_unknown_method_id_rejected(self, crystal_stream):
        enc = MDZAxisCompressor(MDZConfig(method="vq"))
        enc.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
        blob = enc.compress_batch(crystal_stream)
        from repro.sz.lossless import lossless_compress, lossless_decompress

        payload = lossless_decompress(blob)
        corrupted = lossless_compress(payload.replace(b'{"m":1}', b'{"m":9}'))
        dec = MDZAxisCompressor(MDZConfig(method="vq"))
        dec.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
        with pytest.raises(DecompressionError, match="method id"):
            dec.decompress_batch(corrupted)


class TestContainerInfoDetails:
    def test_info_counts_adp_choices(self, rng):
        levels = rng.integers(0, 8, 120) * 2.0
        positions = (
            levels[None, :, None]
            + rng.normal(0, 0.02, (16, 120, 3))
        )
        blob = write_container(
            positions, MDZConfig(method="adp", buffer_size=4)
        )
        info = read_container_info(blob)
        assert info.n_buffers == 4
        for axis_methods in info.methods_per_axis:
            assert sum(axis_methods.values()) == 4
            assert set(axis_methods) <= {"vq", "vqt", "mt"}

    def test_info_fixed_method_uniform(self, rng):
        positions = rng.normal(0, 1, (8, 50, 2))
        blob = write_container(positions, MDZConfig(method="mt", buffer_size=4))
        info = read_container_info(blob)
        assert info.axes == 2
        for axis_methods in info.methods_per_axis:
            assert axis_methods == {"mt": 2}
