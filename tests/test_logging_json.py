"""Structured JSON logging: formatter schema, spans, error codes.

Every record on the ``mdz`` logger tree must serialize to one JSON
object per line with a stable envelope (``ts``/``level``/``logger``/
``message``), the active trace span when one is open, the service error
contract's code for exceptions, and any ``extra={...}`` fields — so a
log pipeline can index MDZ logs without regexes.
"""

from __future__ import annotations

import io
import json
import logging

from repro.exceptions import CompressionError
from repro.telemetry import recording
from repro.telemetry.logging import (
    JsonLogFormatter,
    configure_json_logging,
    get_logger,
)
from repro.telemetry.tracing import TracingRecorder


def _record_via(configure_stream, emit):
    root = logging.getLogger("mdz")
    prior_propagate, prior_level = root.propagate, root.level
    handler = configure_json_logging(stream=configure_stream)
    try:
        emit()
    finally:
        # configure_json_logging owns the tree for a process lifetime;
        # a test scope must put back what it flipped (propagate=False
        # would blind later tests' caplog).
        root.removeHandler(handler)
        root.propagate = prior_propagate
        root.setLevel(prior_level)
    lines = [l for l in configure_stream.getvalue().splitlines() if l]
    return [json.loads(l) for l in lines]


def test_envelope_fields():
    stream = io.StringIO()
    logs = _record_via(
        stream, lambda: get_logger("unit").info("hello %s", "world")
    )
    (entry,) = logs
    assert entry["message"] == "hello world"
    assert entry["level"] == "info"
    assert entry["logger"] == "mdz.unit"
    assert isinstance(entry["ts"], float)


def test_extra_fields_pass_through():
    stream = io.StringIO()
    logs = _record_via(
        stream,
        lambda: get_logger("unit").warning(
            "expired", extra={"tokens": ["a", "b"], "count": 2}
        ),
    )
    (entry,) = logs
    assert entry["tokens"] == ["a", "b"]
    assert entry["count"] == 2


def test_span_id_stamped_inside_trace():
    stream = io.StringIO()
    recorder = TracingRecorder()

    def emit():
        with recording(recorder):
            with recorder.span("outer"):
                get_logger("unit").info("inside")
        get_logger("unit").info("outside")

    inside, outside = _record_via(stream, emit)
    assert "span" in inside and inside["span"]
    assert "span" not in outside


def test_exception_carries_error_contract_code():
    stream = io.StringIO()

    def emit():
        try:
            raise CompressionError("buffer exploded")
        except CompressionError:
            get_logger("unit").error("encode failed", exc_info=True)

    (entry,) = _record_via(stream, emit)
    assert entry["error"]["type"] == "CompressionError"
    assert "buffer exploded" in entry["error"]["detail"]
    # The code matches the HTTP service's error contract vocabulary.
    from repro.service.errors import error_code

    assert entry["error"]["code"] == error_code(CompressionError("x"))


def test_formatter_output_is_single_line_json():
    formatter = JsonLogFormatter()
    record = logging.LogRecord(
        "mdz.x", logging.INFO, __file__, 1, "multi\nline %d", (7,), None
    )
    text = formatter.format(record)
    assert "\n" not in text
    assert json.loads(text)["message"] == "multi\nline 7"


def test_configure_is_scoped_to_mdz_tree():
    stream = io.StringIO()

    def emit():
        get_logger("unit").info("ours")
        logging.getLogger("someone.else").info("not ours")

    logs = _record_via(stream, emit)
    assert [e["message"] for e in logs] == ["ours"]
