"""Tests for the SZ-Interp baseline (spline-interpolation prediction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.api import SessionMeta
from repro.sz.interp import SZInterpCompressor, interpolate, level_plan


class TestLevelPlan:
    @pytest.mark.parametrize("t", [1, 2, 3, 4, 7, 8, 16, 33, 100, 257])
    def test_covers_every_index_once(self, t):
        covered = sorted(
            int(i) for _, idx, _ in level_plan(t) for i in idx
        )
        assert covered == list(range(1, t))

    def test_anchor_levels_precede_their_dependencies(self):
        """Any index's neighbours are decoded in an earlier level."""
        t = 37
        decoded = {0}
        for stride, idx, is_anchor in level_plan(t):
            for i in idx.tolist():
                assert i - stride in decoded, (i, stride)
                if not is_anchor and i + stride < t:
                    assert i + stride in decoded, (i, stride)
            decoded.update(int(i) for i in idx)

    def test_trivial_lengths(self):
        assert level_plan(0) == []
        assert level_plan(1) == []


class TestInterpolate:
    def test_linear_midpoint(self):
        recon = np.array([[0.0, 0.0], [0.0, 0.0], [4.0, 2.0]])
        pred = interpolate(recon, np.array([1]), 1, "linear", False)
        assert np.allclose(pred, [[2.0, 1.0]])

    def test_cubic_reduces_to_linear_at_borders(self):
        recon = np.zeros((8, 3))
        recon[6] = 6.0
        pred_lin = interpolate(recon, np.array([3]), 3, "linear", False)
        pred_cub = interpolate(recon, np.array([3]), 3, "cubic", False)
        # no anchors at -3*3 / +3*3: cubic must fall back to linear
        assert np.allclose(pred_cub, pred_lin)

    def test_anchor_prediction_uses_previous(self):
        recon = np.zeros((10, 2))
        recon[4] = 7.0
        pred = interpolate(recon, np.array([8]), 4, "linear", True)
        assert np.allclose(pred, [[7.0, 7.0]])


class TestCompressor:
    def run(self, stream, eb):
        enc = SZInterpCompressor()
        dec = SZInterpCompressor()
        meta = SessionMeta(n_atoms=stream.shape[1])
        enc.begin(eb, meta)
        dec.begin(eb, meta)
        return dec.decompress_batch(enc.compress_batch(stream))

    def test_round_trip_smooth(self, smooth_stream):
        eb = 1e-3 * (smooth_stream.max() - smooth_stream.min())
        out = self.run(smooth_stream, eb)
        assert np.max(np.abs(out - smooth_stream)) <= eb * (1 + 1e-9)

    def test_round_trip_crystal(self, crystal_stream):
        eb = 1e-3 * (crystal_stream.max() - crystal_stream.min())
        out = self.run(crystal_stream, eb)
        assert np.max(np.abs(out - crystal_stream)) <= eb * (1 + 1e-9)

    def test_single_snapshot(self, crystal_stream):
        out = self.run(crystal_stream[:1], 0.01)
        assert out.shape == (1, crystal_stream.shape[1])

    def test_picks_cubic_on_smooth_curves(self, rng):
        """On smoothly curved trajectories, the dynamic choice matters."""
        t = np.linspace(0, 4 * np.pi, 64)
        stream = np.sin(t)[:, None] * rng.uniform(1, 3, 200)[None, :]
        eb = 1e-4 * (stream.max() - stream.min())
        enc = SZInterpCompressor()
        enc.begin(eb, SessionMeta(n_atoms=200))
        blob = enc.compress_batch(stream)
        dec = SZInterpCompressor()
        dec.begin(eb, SessionMeta(n_atoms=200))
        out = dec.decompress_batch(blob)
        assert np.max(np.abs(out - stream)) <= eb * (1 + 1e-9)

    @given(st.integers(0, 2**31), st.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_property_bound(self, seed, t):
        rng = np.random.default_rng(seed)
        stream = np.cumsum(rng.normal(0, 0.5, (t, 25)), axis=0)
        eb = 0.01
        out = self.run(stream, eb)
        assert np.max(np.abs(out - stream)) <= eb * (1 + 1e-9) + 1e-12
