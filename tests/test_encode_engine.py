"""Tests for the vectorized encode engine (batched pack + cheap trials).

The encode hot path was rebuilt as batched numpy kernels: vectorized
canonical-code assignment, packed per-codebook encode tables, a single
cumulative-bit-offset ``pack_codes`` pass over all H2 streams, and ADP
trials that size candidates from entropy estimates instead of three full
encodes.  These tests pin the rebuilt path to scalar references and to the
exhaustive selector it replaced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import ADPSelector
from repro.core.levels import SessionLevelModel
from repro.core.methods import MethodState
from repro.datasets import DATASET_SPECS, load_dataset
from repro.sz.bitio import pack_codes
from repro.sz.huffman import (
    HuffmanCodec,
    canonical_codes,
    code_lengths,
    clear_codebook_caches,
)
from repro.sz.quantizer import LinearQuantizer
from repro.telemetry import recording


# -- canonical_codes: vectorized vs the per-symbol reference loop -------


def _reference_canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """The original per-symbol assignment loop, kept as the oracle."""
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


class TestCanonicalCodesVectorized:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_on_real_length_sets(self, counts):
        lengths = code_lengths(np.asarray(counts, dtype=np.int64))
        assert np.array_equal(
            canonical_codes(lengths), _reference_canonical_codes(lengths)
        )

    def test_matches_reference_on_deep_lengths(self):
        # Hand-built Kraft-exact length sets deeper than the encoder's
        # 16-bit cap (the decoder accepts up to 57): 2^-1 + 2^-2 + ... +
        # 2^-(n-1) + 2^-(n-1) == 1.
        for depth in (20, 40, 57):
            lengths = np.concatenate(
                [np.arange(1, depth + 1), [depth]]
            ).astype(np.int64)
            assert np.array_equal(
                canonical_codes(lengths), _reference_canonical_codes(lengths)
            )

    def test_matches_reference_on_single_symbol(self):
        lengths = np.array([1], dtype=np.int64)
        assert np.array_equal(
            canonical_codes(lengths), _reference_canonical_codes(lengths)
        )


# -- pack_codes: batched word placement vs a bit-string reference -------


def _reference_pack(codes, lengths) -> bytes:
    bits = "".join(
        format(int(c), f"0{int(l)}b")
        for c, l in zip(codes, lengths)
        if int(l)
    )
    if len(bits) % 8:
        bits += "0" * (8 - len(bits) % 8)
    return bytes(
        int(bits[i : i + 8], 2) for i in range(0, len(bits), 8)
    )


class TestPackCodes:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=57),
            min_size=0,
            max_size=400,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, length_list, rnd):
        lengths = np.asarray(length_list, dtype=np.int64)
        codes = np.array(
            [rnd.getrandbits(int(l)) if l else 0 for l in lengths],
            dtype=np.uint64,
        )
        assert pack_codes(codes, lengths) == _reference_pack(codes, lengths)

    def test_deep_codes_straddling_words(self):
        # 57-bit codes guarantee every placement spills across a word
        # boundary sooner or later.
        lengths = np.full(64, 57, dtype=np.int64)
        codes = np.arange(64, dtype=np.uint64) * np.uint64(0x1234567) + np.uint64(1)
        codes &= np.uint64((1 << 57) - 1)
        assert pack_codes(codes, lengths) == _reference_pack(codes, lengths)

    def test_trailing_zero_length_at_word_boundary(self):
        # Regression: zero-length pad codes sitting exactly at a 64-bit
        # boundary used to index one word past the end.
        lengths = np.array([32, 32, 0, 0], dtype=np.int64)
        codes = np.array([1, 2, 0, 0], dtype=np.uint64)
        assert pack_codes(codes, lengths) == _reference_pack(codes, lengths)


# -- bit-exact round trips across alphabet extremes ---------------------


def _alphabet_workload(alphabet: int, n: int = 20_000) -> np.ndarray:
    rng = np.random.default_rng(alphabet)
    # Zipf-ish skew so code lengths spread across the whole range.
    raw = rng.zipf(1.3, n) % alphabet
    out = np.concatenate([np.arange(alphabet), raw]).astype(np.int64)
    return out - alphabet // 2  # negative symbols too


class TestRoundTripAlphabets:
    @pytest.mark.parametrize("alphabet", [1, 2, 255, 257])
    @pytest.mark.parametrize("streams", [1, 8, None])
    def test_round_trip(self, alphabet, streams):
        data = _alphabet_workload(alphabet)
        blob = HuffmanCodec.encode(data, streams=streams)
        assert np.array_equal(HuffmanCodec.decode(blob), data)

    @pytest.mark.parametrize("streams", [1, 8, None])
    def test_deep_codebook_round_trip(self, streams):
        # Doubling counts force a maximally skewed tree, driving the
        # deepest codes to the 16-bit length cap.
        counts = [1, 1] + [2**k for k in range(1, 17)]
        data = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        lengths = code_lengths(np.asarray(counts))
        assert lengths.max() == 16
        blob = HuffmanCodec.encode(data, streams=streams)
        assert np.array_equal(HuffmanCodec.decode(blob), data)

    @pytest.mark.parametrize("streams", [1, 8, None])
    def test_empty_input(self, streams):
        data = np.array([], dtype=np.int64)
        blob = HuffmanCodec.encode(data, streams=streams)
        out = HuffmanCodec.decode(blob)
        assert out.size == 0 and out.dtype == np.int64

    @pytest.mark.parametrize("streams", [1, 8, None])
    def test_constant_input(self, streams):
        data = np.full(10_000, -7, dtype=np.int64)
        blob = HuffmanCodec.encode(data, streams=streams)
        assert np.array_equal(HuffmanCodec.decode(blob), data)

    def test_sparse_alphabet_uses_fallback_table(self):
        # Symbols spread over a huge span force the per-symbol
        # (searchsorted) encode table instead of the dense one.
        rng = np.random.default_rng(5)
        symbols = np.unique(rng.integers(0, 1 << 40, 64, dtype=np.int64))
        data = symbols[rng.integers(0, symbols.size, 30_000)]
        for streams in (1, None):
            blob = HuffmanCodec.encode(data, streams=streams)
            assert np.array_equal(HuffmanCodec.decode(blob), data)


# -- telemetry counters -------------------------------------------------


class TestEncodeTelemetry:
    def test_encode_table_cache_counters(self):
        clear_codebook_caches()
        rng = np.random.default_rng(11)
        data = rng.integers(-40, 40, 30_000)
        with recording() as rec:
            first = HuffmanCodec.encode(data)
            miss_after_first = rec.snapshot()["counters"][
                "sz.huffman.encode_table.miss"
            ]
            second = HuffmanCodec.encode(data)
            snap = rec.snapshot()["counters"]
        assert first == second
        assert miss_after_first >= 1
        assert snap["sz.huffman.encode_table.miss"] == miss_after_first
        assert snap.get("sz.huffman.encode_table.hit", 0) >= 1

    def test_trial_reuse_counter(self):
        rng = np.random.default_rng(3)
        batch = np.cumsum(rng.normal(0, 1e-4, (6, 400)), axis=0) + np.tile(
            np.linspace(0.0, 5.0, 400), (6, 1)
        )
        state = MethodState(
            quantizer=LinearQuantizer(1e-3),
            layout="F",
            levels=SessionLevelModel(seed=0),
        )
        selector = ADPSelector(interval=50)
        with recording() as rec:
            selector.encode(batch, state)
            counters = rec.snapshot()["counters"]
        # The trial's VQT head must be sliced from VQ's full-batch pass,
        # not recomputed.
        assert counters.get("adp.trial.reused_intermediates", 0) >= 1
        assert counters.get("adp.trials", 0) == 1


# -- ADP: cheap trials agree with the exhaustive selector ---------------


def _axis_streams():
    """A fig11-style dataset/axis matrix, truncated for test runtime."""
    for name in ("copper-b", "helium-b", "pt", "lj"):
        positions = load_dataset(name, snapshots=40).positions
        for axis in range(3):
            yield name, axis, positions[:, :, axis].astype(np.float64)


def _run_selector(stream, bs, **kwargs):
    state = MethodState(
        quantizer=LinearQuantizer(1e-3),
        layout="F",
        levels=SessionLevelModel(seed=0),
    )
    selector = ADPSelector(interval=3, **kwargs)
    winners, blobs = [], []
    for start in range(0, stream.shape[0], bs):
        batch = stream[start : start + bs]
        name, blob, recon = selector.encode(batch, state)
        if state.reference is None:
            state.reference = recon[0].copy()
        winners.append(name)
        blobs.append(blob)
    return winners, blobs, selector


class TestADPCheapTrialAgreement:
    def test_winners_and_blobs_match_exhaustive(self):
        skipped_total = 0
        for name, axis, stream in _axis_streams():
            cheap = _run_selector(stream, bs=5)
            exhaustive = _run_selector(stream, bs=5, margin=float("inf"))
            label = f"{name}/axis{axis}"
            assert cheap[0] == exhaustive[0], label
            assert cheap[1] == exhaustive[1], label
            skipped_total += sum(
                len(r.estimated) for r in cheap[2].history
            )
        # The matrix must actually exercise the shortcut somewhere,
        # otherwise this test proves nothing.
        assert skipped_total > 0

    def test_infinite_margin_never_estimates(self):
        stream = load_dataset("pt", snapshots=30).positions[:, :, 0].astype(
            np.float64
        )
        _, _, selector = _run_selector(stream, bs=5, margin=float("inf"))
        assert all(r.estimated == () for r in selector.history)
