"""Tests for the surrogate dynamics models (repro.md.models)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.md.models import (
    DefectHoppingModel,
    EinsteinCrystalModel,
    RouseChainModel,
    _ou_series,
)


class TestOUSeries:
    def test_stationary_variance(self, rng):
        series = _ou_series(rng, 4000, (200,), np.full(200, 0.5), 0.8)
        assert series.std() == pytest.approx(0.5, rel=0.1)

    def test_correlation_structure(self, rng):
        series = _ou_series(rng, 6000, (50,), np.ones(50), 0.7)
        x0, x1 = series[:-1].ravel(), series[1:].ravel()
        corr = np.corrcoef(x0, x1)[0, 1]
        assert corr == pytest.approx(0.7, abs=0.05)

    def test_zero_correlation_white(self, rng):
        series = _ou_series(rng, 3000, (20,), np.ones(20), 0.0)
        corr = np.corrcoef(series[:-1].ravel(), series[1:].ravel())[0, 1]
        assert abs(corr) < 0.05

    def test_invalid_rho_rejected(self, rng):
        with pytest.raises(SimulationError):
            _ou_series(rng, 10, (5,), np.ones(5), 1.5)


class TestEinsteinCrystal:
    def test_shape_and_site_anchoring(self, rng):
        sites = rng.uniform(0, 10, (100, 3))
        model = EinsteinCrystalModel(sites=sites, amplitude=0.05, correlation=0.5)
        frames = model.generate(30, rng)
        assert frames.shape == (30, 100, 3)
        assert np.abs(frames - sites[None]).max() < 1.0

    def test_anisotropic_amplitudes(self, rng):
        sites = np.zeros((400, 3))
        model = EinsteinCrystalModel(
            sites=sites, amplitude=[0.5, 0.05, 0.005], correlation=0.0
        )
        frames = model.generate(50, rng)
        stds = frames.std(axis=(0, 1))
        assert stds[0] > 5 * stds[1] > 5 * stds[2]

    def test_hopping_moves_sites_by_lattice_step(self, rng):
        sites = np.zeros((50, 3))
        model = EinsteinCrystalModel(
            sites=sites,
            amplitude=1e-4,
            correlation=0.0,
            hop_rate=0.5,
            hop_distance=2.0,
        )
        frames = model.generate(40, rng)
        # Displacements are near-multiples of the hop distance.
        final = frames[-1] - frames[0]
        big = np.abs(final) > 0.5
        assert big.any()
        ratio = np.abs(final[big]) / 2.0
        assert np.allclose(ratio, np.rint(ratio), atol=0.01)

    def test_drift_applies_collectively(self, rng):
        sites = rng.uniform(0, 5, (200, 3))
        model = EinsteinCrystalModel(
            sites=sites, amplitude=1e-5, correlation=0.0, drift_sigma=0.3
        )
        frames = model.generate(60, rng)
        # The per-snapshot mean displacement is shared by all atoms.
        displaced = frames[30] - sites
        assert displaced.std(axis=0).max() < 0.01


class TestDefectHopping:
    def test_only_defects_wander(self, rng):
        sites = rng.uniform(0, 20, (80, 3))
        model = DefectHoppingModel(
            sites=sites,
            amplitude=0.01,
            correlation=0.5,
            n_defects=4,
            defect_hop_rate=0.8,
            hop_distance=1.5,
        )
        frames = model.generate(60, rng)
        drift = np.abs(frames[-1] - frames[0]).max(axis=1)
        wanderers = (drift > 1.0).sum()
        assert 1 <= wanderers <= 4


class TestRouseChain:
    def test_shape_includes_solvent(self, rng):
        model = RouseChainModel(n_beads=50, n_chains=2, n_solvent=200)
        frames = model.generate(15, rng)
        assert frames.shape == (15, 300, 3)

    def test_solvent_stays_in_box(self, rng):
        model = RouseChainModel(
            n_beads=2, n_solvent=500, box=30.0, solvent_step=2.0
        )
        frames = model.generate(40, rng)
        solvent = frames[:, 2:, :]
        assert solvent.min() >= 0.0
        assert solvent.max() <= 30.0

    def test_mode_correlation_controls_smoothness(self, rng):
        slow = RouseChainModel(
            n_beads=100, base_correlation=0.95, local_correlation=0.95,
            mode_sigma=2.0,
        ).generate(40, np.random.default_rng(0))
        fast = RouseChainModel(
            n_beads=100, base_correlation=0.05, local_correlation=0.05,
            mode_sigma=2.0,
        ).generate(40, np.random.default_rng(0))
        step_slow = np.abs(np.diff(slow, axis=0)).mean()
        step_fast = np.abs(np.diff(fast, axis=0)).mean()
        assert step_fast > 2 * step_slow
