"""``mdz top``: frame rendering, rate computation, gauge selection.

The dashboard is driven with synthetic parsed expositions (and real
recorder snapshots rendered through :mod:`repro.telemetry.prom`), so the
tests pin its arithmetic — counter deltas, session counting, quantiles —
without a live service or a TTY.
"""

from __future__ import annotations

from repro import top
from repro.telemetry import MetricsRecorder, prom


def _families(**sections):
    rec = MetricsRecorder()
    for name, n in sections.get("counters", {}).items():
        rec.count(name, n)
    for name, v in sections.get("gauges", {}).items():
        rec.gauge(name, v)
    for name, values in sections.get("timers", {}).items():
        for v in values:
            rec.observe(name, v)
    return prom.parse(prom.render(rec.snapshot()))


def test_counter_totals_sum_across_labels():
    text = prom.render_many([
        ({"counters": {"stream.raw_bytes": 100}}, None),
        ({"counters": {"stream.raw_bytes": 50}}, {"session": "t1"}),
    ])
    totals = top.counter_totals(prom.parse(text))
    assert totals["mdz_stream_raw_bytes_total"] == 150


def test_rates_from_consecutive_scrapes():
    prev = {"mdz_x_total": 100.0}
    cur = {"mdz_x_total": 160.0, "mdz_new_total": 5.0}
    rates = top.rates(prev, cur, 30.0)
    assert rates["mdz_x_total"] == 2.0
    assert rates["mdz_new_total"] == 5.0 / 30.0
    assert top.rates(None, cur, 30.0) is None  # first sample: no rates


def test_rates_clamp_counter_resets():
    assert top.rates({"mdz_x_total": 10.0}, {"mdz_x_total": 3.0}, 1.0) == {
        "mdz_x_total": 0.0
    }


def test_session_tokens_counted():
    text = prom.render_many([
        ({"counters": {"hits": 1}}, {"session": "aaa"}),
        ({"counters": {"hits": 2}}, {"session": "bbb"}),
        ({"counters": {"hits": 3}}, None),
    ])
    assert top.session_tokens(prom.parse(text)) == {"aaa", "bbb"}


def test_latest_gauge_prefers_unlabeled_then_freshest():
    text = prom.render_many([
        ({"gauges": {"quality.ratio": 3.0},
          "gauge_age_seconds": {"quality.ratio": 40.0}},
         {"session": "old"}),
        ({"gauges": {"quality.ratio": 5.0},
          "gauge_age_seconds": {"quality.ratio": 2.0}},
         {"session": "fresh"}),
    ])
    value, age = top.latest_gauge(prom.parse(text), "mdz_quality_ratio")
    assert value == 5.0 and age == 2.0

    unlabeled = prom.parse(prom.render(
        {"gauges": {"quality.ratio": 7.0},
         "gauge_age_seconds": {"quality.ratio": 0.5}}
    ))
    value, age = top.latest_gauge(unlabeled, "mdz_quality_ratio")
    assert value == 7.0 and age == 0.5


def test_render_frame_contains_all_panels():
    families = _families(
        counters={
            "stream.raw_bytes": 10_000_000,
            "stream.chunk_bytes": 2_000_000,
            "service.requests": 42,
            "quality.audits": 6,
            "stream.executor.state_cache.hit": 9,
            "stream.executor.state_cache.miss": 1,
        },
        gauges={"quality.max_abs_error": 1.5e-4, "service.inflight": 2},
        timers={"stream.flush": [0.01, 0.02, 0.04]},
    )
    text = top.render(families, color=False)
    assert "throughput" in text and "quality" in text
    assert "10.00 MB" in text
    assert "CR    5.0x" in text
    assert "state-cache hit rate  90.0%" in text
    assert "stream_flush" in text
    assert "bound violations      0" in text
    assert "max |err|" in text
    assert "\x1b[" not in text  # color=False means no ANSI at all


def test_render_colors_violations_red():
    families = _families(counters={"quality.bound_violations": 3})
    text = top.render(families, color=True)
    assert "\x1b[31m" in text  # red
    clean = top.render(families, color=False)
    assert "bound violations      3" in clean


def test_render_rates_mode_label():
    families = _families(counters={"service.requests": 10})
    totals = top.counter_totals(families)
    text = top.render(families, top.rates(totals, totals, 1.0), color=False)
    assert "[rates/s]" in text
    assert "[totals (first sample)]" not in text


def test_render_snapshot_file(tmp_path):
    import json

    rec = MetricsRecorder()
    rec.count("stream.raw_bytes", 4_000_000)
    rec.gauge("quality.psnr", 70.0)
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(rec.snapshot()))
    text = top.render_snapshot_file(str(path))
    assert "4.00 MB" in text
    assert "psnr dB" in text


def test_run_against_live_exposition(tmp_path, monkeypatch):
    """Two iterations over a canned scrape function: totals then rates."""
    import io

    frames = [
        _families(counters={"service.requests": 10}),
        _families(counters={"service.requests": 20}),
    ]
    calls = {"n": 0}

    def fake_scrape(url, timeout=5.0):
        calls["n"] += 1
        return frames[min(calls["n"] - 1, len(frames) - 1)]

    monkeypatch.setattr(top, "scrape", fake_scrape)
    monkeypatch.setattr(top.time, "sleep", lambda s: None)
    out = io.StringIO()
    code = top.run("http://x", interval=0.0, iterations=2, color=False,
                   out=out)
    assert code == 0 and calls["n"] == 2
    text = out.getvalue()
    assert "[totals (first sample)]" in text
    assert "[rates/s]" in text


def test_run_handles_unreachable_service(monkeypatch):
    import io

    def fail(url, timeout=5.0):
        raise OSError("connection refused")

    monkeypatch.setattr(top, "scrape", fail)
    out = io.StringIO()
    assert top.run("http://nope", once=True, color=False, out=out) == 1
    assert "cannot scrape" in out.getvalue()
