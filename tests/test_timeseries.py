"""Rolling windows and the shared histogram-bucket math.

:class:`RollingWindows` is driven with an injectable clock, so every
assertion about 1m/5m rates, bucket recycling, and uptime clamping is
deterministic — no sleeps.
"""

from __future__ import annotations

import math

import pytest

from repro.telemetry import MetricsRecorder, RollingWindows, TIMER_BUCKETS
from repro.telemetry.timeseries import (
    bucket_bounds,
    bucket_index,
    bucket_value,
    percentile,
)


class _Clock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


class TestBucketMath:
    def test_bounds_bracket_their_bucket(self):
        for seconds in (2e-6, 1e-3, 0.5, 30.0):
            idx = bucket_index(seconds)
            lo, hi = bucket_bounds(idx)
            assert lo <= seconds <= hi
            assert lo < bucket_value(idx) < hi

    def test_first_and_overflow_buckets(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e30) == len(TIMER_BUCKETS)
        lo, hi = bucket_bounds(len(TIMER_BUCKETS))
        # The overflow bucket extrapolates one more doubling instead of
        # +inf, so reported percentile widths stay finite.
        assert lo == TIMER_BUCKETS[-1]
        assert hi == pytest.approx(2 * TIMER_BUCKETS[-1])

    def test_percentile_interpolates(self):
        hist = {10: 50, 12: 50}
        p50 = percentile(hist, 100, 0.50)
        lo, hi = bucket_bounds(10)
        assert lo <= p50 <= hi
        p99 = percentile(hist, 100, 0.99)
        lo, hi = bucket_bounds(12)
        assert lo <= p99 <= hi


class TestRollingWindows:
    def test_rates_reflect_recent_counts_only(self):
        clock = _Clock()
        win = RollingWindows(bucket_seconds=5.0, buckets=72, clock=clock)
        win.note_count("reqs", 100)
        clock.now += 60.0
        win.note_count("reqs", 30)
        view = win.window(60.0)
        # The 100-count bucket fell off the 1m edge; only 30 remain.
        assert view["counters"]["reqs"] == 30
        assert view["rates"]["reqs"] == 30 / view["seconds"]
        assert win.window(300.0)["counters"]["reqs"] == 130

    def test_span_clamped_to_uptime(self):
        clock = _Clock()
        win = RollingWindows(bucket_seconds=5.0, clock=clock)
        win.note_count("x", 10)
        clock.now += 2.0
        view = win.window(60.0)
        # Two seconds of history cannot claim a 60-second denominator.
        assert view["seconds"] <= 5.0
        assert view["rates"]["x"] >= 10 / 5.0

    def test_buckets_recycle_after_full_rotation(self):
        clock = _Clock()
        win = RollingWindows(bucket_seconds=1.0, buckets=4, clock=clock)
        win.note_count("x", 1)
        clock.now += 10.0  # far past the ring's span
        win.note_count("x", 2)
        assert win.window(4.0)["counters"]["x"] == 2

    def test_timer_percentiles_windowed(self):
        clock = _Clock()
        win = RollingWindows(bucket_seconds=5.0, clock=clock)
        for _ in range(100):
            win.note_observe("stage", 1e-3, bucket_index(1e-3))
        view = win.window(60.0)
        cell = view["timers"]["stage"]
        assert cell["count"] == 100
        lo, hi = bucket_bounds(bucket_index(1e-3))
        for q in ("p50", "p95", "p99"):
            assert lo <= cell[q] <= hi

    def test_snapshot_shape(self):
        win = RollingWindows(clock=_Clock())
        win.note_count("c", 1)
        snap = win.snapshot()
        assert set(snap) == {"bucket_seconds", "1m", "5m"}
        assert snap["1m"]["counters"]["c"] == 1


class TestRecorderIntegration:
    def test_snapshot_carries_windows_and_gauge_ages(self):
        rec = MetricsRecorder()
        rec.count("hits", 3)
        rec.gauge("depth", 7.0)
        with rec.timer("work"):
            pass
        snap = rec.snapshot()
        assert snap["windows"]["1m"]["counters"]["hits"] == 3
        assert "work" in snap["windows"]["1m"]["timers"]
        assert snap["gauge_age_seconds"]["depth"] >= 0.0
        assert "bucket_widths" in snap["timers"]["work"]
        widths = snap["timers"]["work"]["bucket_widths"]
        assert set(widths) == {"p50", "p95", "p99"}
        assert all(w > 0 for w in widths.values())

    def test_merge_folds_windows_and_ages(self):
        worker = MetricsRecorder()
        worker.count("jobs", 5)
        worker.gauge("ratio", 2.0)
        with worker.timer("encode"):
            pass
        main = MetricsRecorder()
        main.merge(worker.snapshot())
        snap = main.snapshot()
        assert snap["windows"]["1m"]["counters"]["jobs"] == 5
        assert snap["windows"]["1m"]["timers"]["encode"]["count"] == 1
        assert snap["gauge_age_seconds"]["ratio"] >= 0.0

    def test_reset_clears_windows(self):
        rec = MetricsRecorder()
        rec.count("x")
        rec.reset()
        snap = rec.snapshot()
        assert snap["windows"]["1m"]["counters"] == {}
        assert snap["gauge_age_seconds"] == {}

    def test_events_feed_window_counters(self):
        rec = MetricsRecorder()
        rec.event("pool_died", "detail")
        snap = rec.snapshot()
        assert snap["windows"]["1m"]["counters"]["events.pool_died"] == 1
