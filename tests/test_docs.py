"""Documentation integrity: every markdown reference resolves.

Runs :mod:`tools.check_docs_links` over the repository in-process, so a
renamed module or a moved doc breaks the tier-1 suite, not just the CI
docs job.  Also pins the checker's own behaviour (slug rules, shorthand
path resolution) with synthetic fixtures.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs_links  # noqa: E402
import list_metrics  # noqa: E402
import list_stages  # noqa: E402


def test_repo_docs_have_no_broken_references():
    problems = check_docs_links.check(REPO_ROOT)
    assert problems == [], "\n".join(problems)


def test_metrics_reference_is_in_sync():
    """docs/metrics.md must match what the source tree actually emits."""
    expected = list_metrics.generate(REPO_ROOT)
    path = REPO_ROOT / "docs" / "metrics.md"
    assert path.exists(), "docs/metrics.md missing; run tools/list_metrics.py"
    assert path.read_text() == expected, (
        "docs/metrics.md is stale; run `python tools/list_metrics.py`"
    )


def test_stages_reference_is_in_sync():
    """The registry tables in docs/stages.md must match the registries."""
    path = REPO_ROOT / "docs" / "stages.md"
    assert path.exists(), "docs/stages.md missing"
    current = path.read_text()
    assert current == list_stages.render(current), (
        "docs/stages.md registry tables are stale; "
        "run `python tools/list_stages.py`"
    )


def test_stages_tables_list_every_member():
    """Each registered member appears as a row of the generated block."""
    block = list_stages.generate_block()
    for name in ("vq", "vqt", "mt", "interp", "bitadaptive"):
        assert f"| `{name}` |" in block


def test_metrics_scan_sees_the_core_instruments():
    """The scanner's regex keeps finding the known load-bearing metrics."""
    found = list_metrics.scan(REPO_ROOT)
    assert "quality.bound_violations" in found["count"]
    assert "quality.max_abs_error" in found["gauge"]
    assert "quality.audit" in found["timer"]
    assert "service.request.<method> <path>" in found["observe"]
    assert "stream.executor.job_failed" in found["event"]


def test_checker_flags_broken_link_and_anchor(tmp_path):
    (tmp_path / "real.md").write_text("# A Heading\n\ntext\n")
    (tmp_path / "doc.md").write_text(
        "[ok](real.md)\n"
        "[ok anchor](real.md#a-heading)\n"
        "[bad file](gone.md)\n"
        "[bad anchor](real.md#missing)\n"
        "[bad self anchor](#nowhere)\n"
    )
    problems = check_docs_links.check(tmp_path)
    assert len(problems) == 3
    assert any("gone.md" in p for p in problems)
    assert any("real.md#missing" in p for p in problems)
    assert any("#nowhere" in p for p in problems)


def test_checker_ignores_code_fences_and_external_links(tmp_path):
    (tmp_path / "doc.md").write_text(
        "[ext](https://example.com/gone)\n"
        "```\n[fenced](nope.md) and `fenced/path.py`\n```\n"
    )
    assert check_docs_links.check(tmp_path) == []


def test_checker_resolves_shorthand_source_paths(tmp_path):
    (tmp_path / "src" / "repro" / "sz").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "sz" / "huffman.py").write_text("")
    (tmp_path / "doc.md").write_text(
        "see `sz/huffman.py` and `repro/sz/huffman.py`"
        " and `src/repro/sz/huffman.py`, but not `sz/gone.py`\n"
    )
    problems = check_docs_links.check(tmp_path)
    assert len(problems) == 1 and "sz/gone.py" in problems[0]


def test_slugify_matches_github_rules():
    slug = check_docs_links._slugify
    assert slug("Crash safety") == "crash-safety"
    assert slug("The `MDZ2` chunk frame layout") == "the-mdz2-chunk-frame-layout"
    assert slug("How MDZ works (paper § VI)") == "how-mdz-works-paper--vi"
    assert slug("readable / lost / tail") == "readable--lost--tail"
