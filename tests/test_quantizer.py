"""Tests for the linear-scale quantizer and chain reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DecompressionError
from repro.sz.quantizer import DEFAULT_SCALE, LinearQuantizer, QuantizedBlock


class TestConstruction:
    def test_defaults(self):
        q = LinearQuantizer(0.01)
        assert q.scale == DEFAULT_SCALE
        assert q.bin_width == pytest.approx(0.02)
        assert q.radius == DEFAULT_SCALE // 2
        assert q.marker == q.radius

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            LinearQuantizer(bad)

    def test_tiny_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearQuantizer(0.01, scale=2)


class TestGridLevels:
    def test_error_bound_guarantee(self, rng):
        q = LinearQuantizer(1e-3)
        values = rng.normal(0, 5, 10000)
        levels = q.grid_levels(values, anchor=1.25)
        recon = q.dequantize_levels(levels, anchor=1.25)
        assert np.max(np.abs(recon - values)) <= 1e-3 + 1e-12

    def test_vector_anchor(self, rng):
        q = LinearQuantizer(0.05)
        anchor = rng.normal(0, 1, 100)
        values = anchor + rng.normal(0, 0.3, (7, 100))
        levels = q.grid_levels(values, anchor[None, :])
        recon = q.dequantize_levels(levels, anchor[None, :])
        assert np.max(np.abs(recon - values)) <= 0.05 + 1e-12

    @given(
        st.floats(1e-6, 10.0),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bound(self, eb, values):
        q = LinearQuantizer(eb)
        arr = np.array(values)
        recon = q.dequantize_levels(q.grid_levels(arr, 0.0), 0.0)
        assert np.max(np.abs(recon - arr)) <= eb * (1 + 1e-9) + 1e-12


class TestSplit:
    def test_in_scope_passthrough(self):
        q = LinearQuantizer(0.5, scale=16)
        codes = np.array([[0, 3, -7], [1, -2, 5]])
        block = q.split(codes, codes * 10)
        assert np.array_equal(block.codes, codes)
        assert block.n_out_of_scope == 0

    def test_out_of_scope_marked(self):
        q = LinearQuantizer(0.5, scale=16)  # radius 8
        codes = np.array([1, 20, -9, 3])
        absolute = np.array([100, 200, 300, 400])
        block = q.split(codes, absolute)
        assert block.codes[1] == q.marker
        assert block.codes[2] == q.marker
        assert np.array_equal(block.wide, [200, 300])

    def test_fortran_order_extraction(self):
        q = LinearQuantizer(0.5, scale=8)  # radius 4
        codes = np.array([[9, 0], [0, 9]])
        absolute = np.array([[10, 20], [30, 40]])
        block = q.split(codes, absolute, order="F")
        # Column-major: (0,0) then (1,1)
        assert np.array_equal(block.wide, [10, 40])

    def test_bad_order_rejected(self):
        q = LinearQuantizer(0.5)
        with pytest.raises(ValueError):
            q.split(np.zeros(3, np.int64), np.zeros(3, np.int64), order="X")


class TestMergeIndependent:
    def test_round_trip(self):
        q = LinearQuantizer(0.5, scale=16)
        codes = np.array([1, 20, -9, 3])
        block = q.split(codes, codes)
        assert np.array_equal(q.merge_independent(block), codes)

    def test_mismatch_detected(self):
        q = LinearQuantizer(0.5, scale=16)
        block = QuantizedBlock(
            codes=np.array([q.marker, 0]),
            wide=np.empty(0, dtype=np.int64),
            marker=q.marker,
        )
        with pytest.raises(DecompressionError):
            q.merge_independent(block)


class TestChainReconstruct:
    def test_no_resets(self):
        q = LinearQuantizer(0.5, scale=64)
        s = np.array([0, 1, 3, 2, 2, -4])
        codes = np.diff(s, prepend=np.int64(0))
        block = q.split(codes, s)
        assert np.array_equal(q.chain_reconstruct(block, axis=0), s)

    def test_resets_latest_wins(self):
        q = LinearQuantizer(0.5, scale=8)  # radius 4
        s = np.array([0, 100, 101, 250, 251])  # two jumps out of scope
        codes = np.diff(s, prepend=np.int64(0))
        block = q.split(codes, s)
        assert block.n_out_of_scope == 2
        assert np.array_equal(q.chain_reconstruct(block, axis=0), s)

    def test_2d_time_axis(self, rng):
        q = LinearQuantizer(0.5, scale=16)
        s = rng.integers(-3, 3, (10, 5)).cumsum(axis=0)
        s[4, 2] += 500  # force a reset mid-chain
        s[7, 2] += 300  # and another in the same chain
        codes = np.diff(s, axis=0, prepend=np.zeros((1, 5), np.int64))
        block = q.split(codes, s, order="F")
        assert np.array_equal(q.chain_reconstruct(block, axis=0), s)

    def test_wide_mismatch_detected(self):
        q = LinearQuantizer(0.5, scale=8)
        block = QuantizedBlock(
            codes=np.array([[q.marker]]),
            wide=np.empty(0, dtype=np.int64),
            marker=q.marker,
            order="F",
        )
        with pytest.raises(DecompressionError):
            q.chain_reconstruct(block, axis=0)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_chain_round_trip(self, data):
        rng_seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(rng_seed)
        t, n = data.draw(st.tuples(st.integers(2, 12), st.integers(1, 8)))
        scale = data.draw(st.sampled_from([8, 16, 64]))
        q = LinearQuantizer(0.5, scale=scale)
        s = rng.integers(-1000, 1000, (t, n))
        codes = np.diff(s, axis=0, prepend=np.zeros((1, n), np.int64))
        block = q.split(codes, s, order="F")
        assert np.array_equal(q.chain_reconstruct(block, axis=0), s)
