"""Tests for the binary section framing (repro.serde)."""

import numpy as np
import pytest

from repro.exceptions import DecompressionError
from repro.serde import BlobReader, BlobWriter, pack_blobs, unpack_blobs


class TestBlobRoundTrip:
    def test_bytes_section(self):
        w = BlobWriter()
        w.write_bytes(b"hello world")
        r = BlobReader(w.getvalue())
        assert r.read_bytes() == b"hello world"
        assert r.exhausted

    def test_empty_bytes(self):
        w = BlobWriter()
        w.write_bytes(b"")
        assert BlobReader(w.getvalue()).read_bytes() == b""

    def test_string_section(self):
        w = BlobWriter()
        w.write_string("unicode: äöü ∆")
        assert BlobReader(w.getvalue()).read_string() == "unicode: äöü ∆"

    def test_json_section(self):
        payload = {"a": 1, "b": [1.5, None], "c": {"nested": True}}
        w = BlobWriter()
        w.write_json(payload)
        assert BlobReader(w.getvalue()).read_json() == payload

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(10, dtype=np.int64),
            np.random.default_rng(0).normal(size=(3, 4, 5)),
            np.array([], dtype=np.float32),
            np.array(3.5),  # zero-dim
            np.arange(6, dtype=np.uint8).reshape(2, 3),
        ],
    )
    def test_array_sections(self, arr):
        w = BlobWriter()
        w.write_array(arr)
        out = BlobReader(w.getvalue()).read_array()
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_mixed_sections_in_order(self):
        w = BlobWriter()
        w.write_json({"k": 1})
        w.write_bytes(b"xyz")
        w.write_array(np.ones(3))
        r = BlobReader(w.getvalue())
        assert r.read_json() == {"k": 1}
        assert r.read_bytes() == b"xyz"
        assert np.array_equal(r.read_array(), np.ones(3))
        assert r.exhausted

    def test_len_tracks_written_bytes(self):
        w = BlobWriter()
        assert len(w) == 0
        w.write_bytes(b"abcd")
        assert len(w) == 9 + 4  # frame header + body


class TestBlobErrors:
    def test_wrong_tag_raises(self):
        w = BlobWriter()
        w.write_bytes(b"data")
        r = BlobReader(w.getvalue())
        with pytest.raises(DecompressionError, match="expected section tag"):
            r.read_json()

    def test_truncated_header_raises(self):
        w = BlobWriter()
        w.write_bytes(b"data")
        blob = w.getvalue()[:5]
        with pytest.raises(DecompressionError, match="truncated"):
            BlobReader(blob).read_bytes()

    def test_truncated_body_raises(self):
        w = BlobWriter()
        w.write_bytes(b"0123456789")
        blob = w.getvalue()[:-4]
        with pytest.raises(DecompressionError, match="truncated"):
            BlobReader(blob).read_bytes()

    def test_array_length_mismatch_raises(self):
        w = BlobWriter()
        w.write_array(np.arange(8, dtype=np.int64))
        blob = bytearray(w.getvalue())
        # Body layout: hdr_len u32 | dtype '<i8' | ndim u32 | shape u64 | data.
        # The shape's low byte sits right after tag(1)+len(8)+4+3+4 = 20.
        assert blob[20] == 8
        blob[20] = 9  # claim 9 elements while only 8 are present
        with pytest.raises(DecompressionError):
            BlobReader(bytes(blob)).read_array()


class TestPackBlobs:
    def test_round_trip(self):
        blobs = [b"", b"a", b"bb" * 100]
        assert unpack_blobs(pack_blobs(blobs)) == blobs

    def test_empty_list(self):
        assert unpack_blobs(pack_blobs([])) == []
