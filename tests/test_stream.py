"""Tests for the streaming subsystem: MDZ2 format, writer/reader, executor."""

import io

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.exceptions import CompressionError, ContainerFormatError
from repro.io.container import (
    container_version,
    read_container,
    read_container_batch,
    read_container_info,
    write_container,
)
from repro.stream import (
    ParallelExecutor,
    StreamingReader,
    StreamingWriter,
    parse_stream,
    stream_compress,
    stream_decompress,
)


def _stream_blob(trajectory, config=None, workers=0):
    sink = io.BytesIO()
    stream_compress(trajectory, sink, config=config, workers=workers)
    return sink.getvalue()


class TestStreamRoundTrip:
    def test_full_round_trip_within_bound(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        out = stream_decompress(blob)
        assert out.shape == trajectory.shape
        bounds = StreamingReader(blob).error_bounds
        for a in range(3):
            err = np.abs(out[:, :, a] - trajectory[:, :, a]).max()
            assert err <= bounds[a] * (1 + 1e-9)

    def test_partial_final_buffer(self, trajectory):
        # 12 snapshots with BS=5 -> buffers of 5, 5, 2.
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=5))
        reader = StreamingReader(blob)
        assert reader.n_buffers == 3
        assert reader.snapshots == 12
        assert reader.read_all().shape == trajectory.shape

    @pytest.mark.parametrize("method", ["vq", "vqt", "mt", "adp"])
    def test_all_methods(self, trajectory, method):
        config = MDZConfig(buffer_size=4, method=method)
        out = stream_decompress(_stream_blob(trajectory, config))
        assert out.shape == trajectory.shape

    def test_single_axis_snapshots(self, crystal_stream):
        # (atoms,) snapshots are promoted to one axis.
        sink = io.BytesIO()
        with StreamingWriter(sink, MDZConfig(buffer_size=10)) as writer:
            for row in crystal_stream:
                writer.feed(row)
        out = stream_decompress(sink.getvalue())
        assert out.shape == (*crystal_stream.shape, 1)

    def test_path_target(self, tmp_path, trajectory):
        path = tmp_path / "run.mdz"
        stream_compress(trajectory, path, MDZConfig(buffer_size=4))
        out = StreamingReader(path).read_all()
        assert out.shape == trajectory.shape

    def test_stats(self, trajectory):
        sink = io.BytesIO()
        stats = stream_compress(trajectory, sink, MDZConfig(buffer_size=4))
        assert stats.snapshots == 12
        assert stats.buffers == 3
        assert stats.chunks == 9
        # raw_bytes reflects the true source dtype (float64 fixture),
        # not the old hardcoded float32 convention.
        assert stats.source_itemsize == trajectory.dtype.itemsize
        assert stats.raw_bytes == trajectory.nbytes
        assert stats.bytes_written == len(sink.getvalue())
        assert stats.compression_ratio > 1.0

    def test_stats_source_itemsize_float32(self, trajectory):
        sink = io.BytesIO()
        f32 = trajectory.astype(np.float32)
        stats = stream_compress(f32, sink, MDZConfig(buffer_size=4))
        assert stats.source_itemsize == 4
        assert stats.raw_bytes == f32.nbytes
        assert stats.to_dict()["source_itemsize"] == 4

    def test_matches_monolithic_reconstruction_bound(self, trajectory):
        # Same data through MDZ1 and MDZ2 obeys the same per-axis bounds
        # when those bounds are absolute (no first-buffer range estimate).
        config = MDZConfig(
            error_bound=0.02, error_bound_mode="absolute", buffer_size=4
        )
        mono = read_container(write_container(trajectory, config))
        streamed = stream_decompress(_stream_blob(trajectory, config))
        assert np.abs(mono - trajectory).max() <= 0.02 * (1 + 1e-9)
        assert np.abs(streamed - trajectory).max() <= 0.02 * (1 + 1e-9)


class TestRandomAccess:
    def test_read_buffer_matches_full_decode(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        reader = StreamingReader(blob)
        full = reader.read_all()
        for b, t0 in enumerate(range(0, 12, 4)):
            assert np.array_equal(reader.read_buffer(b), full[t0 : t0 + 4])

    def test_vq_buffer_access(self, trajectory):
        config = MDZConfig(buffer_size=4, method="vq")
        blob = _stream_blob(trajectory, config)
        reader = StreamingReader(blob)
        assert np.array_equal(reader.read_buffer(2), reader.read_all()[8:12])

    def test_out_of_range_rejected(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        with pytest.raises(ContainerFormatError, match="out of range"):
            StreamingReader(blob).read_buffer(99)

    def test_iter_buffers(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=5))
        parts = list(StreamingReader(blob).iter_buffers())
        assert [p.shape[0] for p in parts] == [5, 5, 2]
        assert np.array_equal(np.concatenate(parts), stream_decompress(blob))


class TestContainerDispatch:
    def test_container_version(self, trajectory):
        mono = write_container(trajectory, MDZConfig())
        streamed = _stream_blob(trajectory)
        assert container_version(mono) == 1
        assert container_version(streamed) == 2

    def test_version_rejects_garbage(self):
        with pytest.raises(ContainerFormatError):
            container_version(b"\x00\x01\x02\x03 not a container")

    def test_read_container_handles_mdz2(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        assert np.array_equal(read_container(blob), stream_decompress(blob))

    def test_read_container_batch_handles_mdz2(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        full = read_container(blob)
        assert np.array_equal(read_container_batch(blob, 1), full[4:8])

    def test_read_container_info_handles_mdz2(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        info = read_container_info(blob)
        assert info.snapshots == 12
        assert info.atoms == 150
        assert info.axes == 3
        assert info.n_buffers == 3
        assert len(info.methods_per_axis) == 3
        assert sum(info.methods_per_axis[0].values()) == 3


class TestWriterLifecycle:
    def test_empty_stream_rejected(self):
        writer = StreamingWriter(io.BytesIO())
        with pytest.raises(CompressionError, match="empty"):
            writer.close()

    def test_close_is_idempotent(self, trajectory):
        writer = StreamingWriter(io.BytesIO(), MDZConfig(buffer_size=4))
        writer.feed_many(trajectory)
        stats = writer.close()
        assert writer.close() is stats

    def test_feed_after_close_rejected(self, trajectory):
        writer = StreamingWriter(io.BytesIO(), MDZConfig(buffer_size=4))
        writer.feed_many(trajectory)
        writer.close()
        with pytest.raises(CompressionError, match="closed"):
            writer.feed(trajectory[0])

    def test_shape_mismatch_rejected(self, trajectory):
        writer = StreamingWriter(io.BytesIO(), MDZConfig(buffer_size=4))
        writer.feed(trajectory[0])
        with pytest.raises(CompressionError, match="shape"):
            writer.feed(trajectory[0, :50])
        writer.abort()

    def test_bad_rank_rejected(self):
        writer = StreamingWriter(io.BytesIO())
        with pytest.raises(CompressionError, match="snapshot"):
            writer.feed(np.zeros((2, 3, 4)))
        writer.abort()


class TestParallelByteIdentity:
    @pytest.mark.parametrize("method", ["adp", "vq", "mt"])
    def test_workers_match_serial_bytes(self, trajectory, method):
        config = MDZConfig(buffer_size=3, method=method)
        serial = _stream_blob(trajectory, config, workers=0)
        parallel = _stream_blob(trajectory, config, workers=2)
        assert parallel == serial

    def test_injected_executor(self, trajectory):
        config = MDZConfig(buffer_size=4)
        with ParallelExecutor(workers=2) as executor:
            sink = io.BytesIO()
            writer = StreamingWriter(sink, config, executor=executor)
            writer.feed_many(trajectory)
            writer.close()
        assert sink.getvalue() == _stream_blob(trajectory, config)


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"boom {x}")


class _ExplodingPool:
    """Stub pool whose dispatch always fails (simulates a dead pool)."""

    def apply_async(self, fn, args):
        raise RuntimeError("pool is dead")

    def terminate(self):
        pass

    def join(self):
        pass


class TestParallelExecutor:
    def test_serial_runs_inline_in_order(self):
        ex = ParallelExecutor(workers=0)
        for i in range(5):
            ex.submit(_double, i)
        assert not ex.parallel
        assert ex.drain() == [0, 2, 4, 6, 8]
        ex.close()

    def test_push_preserves_fifo_order(self):
        ex = ParallelExecutor(workers=0)
        ex.submit(_double, 1)
        ex.push("in-session")
        ex.submit(_double, 3)
        assert ex.drain() == [2, "in-session", 6]
        ex.close()

    def test_serial_ready_returns_everything(self):
        ex = ParallelExecutor(workers=0)
        ex.submit(_double, 7)
        assert ex.ready() == [14]
        assert ex.ready() == []
        ex.close()

    def test_pool_results_in_submission_order(self):
        with ParallelExecutor(workers=2) as ex:
            for i in range(8):
                ex.submit(_double, i)
            assert ex.drain() == [2 * i for i in range(8)]

    def test_backpressure_bounds_inflight(self):
        ex = ParallelExecutor(workers=2, max_pending=3)
        for i in range(10):
            ex.submit(_double, i)
            assert ex._inflight() <= 3
        assert ex.drain() == [2 * i for i in range(10)]
        ex.close()

    def test_dead_pool_degrades_to_inline(self):
        ex = ParallelExecutor(workers=2)
        ex._pool = _ExplodingPool()
        ex.submit(_double, 5)
        ex.submit(_double, 6)
        assert not ex.parallel  # fell back after the dispatch failure
        assert ex.drain() == [10, 12]
        ex.close()

    def test_job_error_surfaces(self):
        with pytest.raises(ValueError, match="boom"):
            with ParallelExecutor(workers=2) as ex:
                ex.submit(_boom, 1)
                ex.drain()

    def test_terminate_discards_queue(self):
        ex = ParallelExecutor(workers=0)
        ex.submit(_double, 1)
        ex.terminate()
        assert ex.drain() == []


class TestCrashRecovery:
    def test_abort_leaves_recoverable_file(self, trajectory):
        sink = io.BytesIO()
        writer = StreamingWriter(sink, MDZConfig(buffer_size=4))
        writer.feed_many(trajectory[:8])  # two full buffers
        writer.abort()
        blob = sink.getvalue()
        with pytest.raises(ContainerFormatError, match="footer"):
            StreamingReader(blob)
        reader = StreamingReader(blob, recover=True)
        assert reader.recovered
        assert reader.n_buffers == 2
        full = stream_decompress(_stream_blob(trajectory, MDZConfig(buffer_size=4)))
        assert np.array_equal(reader.read_all(), full[:8])

    def test_exception_in_with_block_aborts(self, trajectory):
        sink = io.BytesIO()
        with pytest.raises(RuntimeError, match="simulated"):
            with StreamingWriter(sink, MDZConfig(buffer_size=4)) as writer:
                writer.feed_many(trajectory[:4])
                raise RuntimeError("simulated producer crash")
        reader = StreamingReader(sink.getvalue(), recover=True)
        assert reader.n_buffers == 1

    def test_truncation_drops_torn_buffer(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        last_chunk = parse_stream(blob).chunks[-1]
        torn = blob[: last_chunk.offset + last_chunk.length // 2]
        reader = StreamingReader(torn, recover=True)
        assert reader.n_buffers == 2  # the third buffer lost an axis
        full = stream_decompress(blob)
        assert np.array_equal(reader.read_all(), full[:8])

    def test_truncation_without_recover_is_an_error(self, trajectory):
        blob = _stream_blob(trajectory, MDZConfig(buffer_size=4))
        with pytest.raises(ContainerFormatError):
            StreamingReader(blob[: len(blob) // 2])


class TestCorruption:
    def test_bad_magic_rejected(self, trajectory):
        blob = bytearray(_stream_blob(trajectory))
        blob[0] ^= 0xFF
        with pytest.raises(ContainerFormatError, match="magic"):
            StreamingReader(bytes(blob))

    def test_flipped_payload_byte_detected(self, trajectory):
        blob = bytearray(_stream_blob(trajectory, MDZConfig(buffer_size=4)))
        entry = parse_stream(bytes(blob)).chunks[0]
        blob[entry.offset + entry.length // 2] ^= 0x01
        with pytest.raises(ContainerFormatError, match="checksum"):
            StreamingReader(bytes(blob)).read_all()

    def test_corrupt_header_rejected(self, trajectory):
        blob = bytearray(_stream_blob(trajectory))
        blob[12] ^= 0x01  # inside the header JSON
        with pytest.raises(ContainerFormatError, match="header"):
            StreamingReader(bytes(blob))

    def test_recovery_scan_stops_at_corrupt_chunk(self, trajectory):
        blob = bytearray(_stream_blob(trajectory, MDZConfig(buffer_size=4)))
        entry = parse_stream(bytes(blob)).chunks[3]  # first chunk of buffer 1
        blob[entry.offset] ^= 0x01
        trailer = 12
        torn = bytes(blob)[: len(blob) - trailer]  # also drop the trailer
        reader = StreamingReader(torn, recover=True)
        assert reader.n_buffers == 1  # nothing after the bad frame is trusted
