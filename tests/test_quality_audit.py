"""The quality-audit plane: sampled round-trip error-bound verification.

Covers the contract end to end: deterministic sampling (serial and
parallel runs audit the same buffers and write byte-identical archives),
metric agreement with the reference definitions in
:mod:`repro.analysis.metrics`, and — through the faults shims — the
hard-violation path: a corrupted encoded chunk must drive
``quality.bound_violations`` from 0 to >= 1 and emit a structured event.
"""

from __future__ import annotations

import logging
import math

import numpy as np
import pytest

from repro.analysis.metrics import max_error, psnr
from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.exceptions import ConfigurationError
from repro.faults import apply_posthoc
from repro.faults.plan import FaultSpec
from repro.stream.writer import StreamingWriter
from repro.telemetry import MetricsRecorder, QualityAuditor, recording


def _trajectory(snapshots=48, atoms=80, axes=3, seed=7):
    rng = np.random.default_rng(seed)
    steps = rng.normal(scale=0.02, size=(snapshots, atoms, axes))
    return np.cumsum(steps, axis=0).astype(np.float64)


def _session(data_2d, bound=1e-3):
    config = MDZConfig(error_bound=bound, error_bound_mode="absolute")
    session = MDZAxisCompressor(config)
    session.begin(bound, SessionMeta(n_atoms=data_2d.shape[1]))
    return session


class TestAuditorUnit:
    def test_clean_roundtrip_is_within_bound(self):
        data = _trajectory()[:, :, 0]
        session = _session(data)
        blob = session.compress_batch(data)
        auditor = QualityAuditor(interval=1)
        with recording() as rec:
            report = auditor.audit(
                session, blob, data, buffer_index=0, axis=0
            )
        assert report.within_bound
        assert report.max_abs_error <= 1e-3 * (1 + 1e-9)
        assert auditor.violations == 0
        snap = rec.snapshot()
        assert snap["counters"]["quality.audits"] == 1
        assert snap["counters"].get("quality.bound_violations", 0) == 0
        assert "quality.max_abs_error" in snap["gauges"]

    def test_metrics_agree_with_reference_definitions(self):
        """Audit PSNR/max-error match repro.analysis.metrics bit for bit."""
        data = _trajectory()[:, :, 1]
        session = _session(data)
        blob = session.compress_batch(data)
        recon = np.asarray(
            session.audit_decoder().decompress_batch(blob), dtype=np.float64
        )
        report = QualityAuditor(interval=1).audit(
            session, blob, data, buffer_index=0, axis=0
        )
        assert report.max_abs_error == pytest.approx(
            max_error(data, recon), rel=0, abs=0
        )
        assert report.psnr == pytest.approx(psnr(data, recon), rel=1e-12)

    def test_corrupted_blob_is_a_hard_violation(self, caplog):
        """Post-hoc corruption through the faults shim trips the counter."""
        data = _trajectory()[:, :, 0]
        session = _session(data)
        blob = session.compress_batch(data)
        bad = apply_posthoc(
            blob,
            [FaultSpec("corrupt", offset=len(blob) // 2, length=8,
                       xor_mask=0x5A)],
        )
        assert bad != blob
        auditor = QualityAuditor(interval=1)
        with recording() as rec, caplog.at_level(
            logging.ERROR, logger="mdz.quality"
        ):
            report = auditor.audit(
                session, bad, data, buffer_index=0, axis=0
            )
        assert not report.within_bound
        assert auditor.violations == 1
        snap = rec.snapshot()
        assert snap["counters"]["quality.bound_violations"] == 1
        events = [e for e in snap["events"]
                  if e["name"] == "quality.bound_violation"]
        assert len(events) == 1 and "buffer 0 axis 0" in events[0]["detail"]
        # The structured log record fires even without a recorder.
        assert any("error-bound violation" in r.getMessage()
                   for r in caplog.records)

    def test_decode_failure_reports_infinite_error(self):
        data = _trajectory()[:, :, 0]
        session = _session(data)
        report = QualityAuditor(interval=1).audit(
            session, b"not a blob", data, buffer_index=0, axis=0
        )
        assert not report.within_bound
        assert report.decode_error is not None
        assert math.isinf(report.max_abs_error)
        assert report.psnr == -math.inf

    def test_disabled_auditor_is_a_noop(self):
        auditor = QualityAuditor(interval=0)
        assert not auditor.enabled
        assert not auditor.want(0)
        auditor.stash(0, 0, np.zeros((2, 2)))
        assert auditor.pop(0, 0) is None

    def test_sampling_is_by_buffer_index(self):
        auditor = QualityAuditor(interval=4)
        assert [i for i in range(12) if auditor.want(i)] == [0, 4, 8]


class TestWriterIntegration:
    def test_stream_counts_audits(self, tmp_path):
        data = _trajectory(snapshots=40)
        config = MDZConfig(
            error_bound=1e-3, error_bound_mode="absolute",
            buffer_size=8, audit_interval=2,
        )
        with recording() as rec:
            with StreamingWriter(tmp_path / "a.mdz", config) as writer:
                for snap in data:
                    writer.feed(snap)
                stats = writer.close()
        # 5 buffers, indices 0/2/4 sampled, 3 axes each.
        assert stats.audits == 9
        assert stats.audit_violations == 0
        assert stats.to_dict()["audits"] == 9
        assert rec.snapshot()["counters"]["quality.audits"] == 9

    def test_serial_and_parallel_audit_identically(self, tmp_path):
        """Same sampled buffers, same archive bytes, with and without
        workers — auditing never touches the encode path."""
        data = _trajectory(snapshots=48)
        audited = {}
        blobs = {}
        for label, workers in (("serial", 0), ("parallel", 2)):
            config = MDZConfig(
                error_bound=1e-3, error_bound_mode="absolute",
                buffer_size=6, audit_interval=3,
            )
            path = tmp_path / f"{label}.mdz"
            with StreamingWriter(path, config, workers=workers) as writer:
                for snap in data:
                    writer.feed(snap)
                audited[label] = None
                stats = writer.close()
                audited[label] = sorted(writer.auditor.audited)
            blobs[label] = path.read_bytes()
            assert stats.audit_violations == 0
        assert audited["serial"] == audited["parallel"]
        assert audited["serial"]  # the sample is not empty
        assert blobs["serial"] == blobs["parallel"]

    def test_audit_interval_does_not_change_bytes(self, tmp_path):
        data = _trajectory(snapshots=30)
        blobs = []
        for interval in (0, 1, 32):
            config = MDZConfig(
                error_bound=1e-3, error_bound_mode="absolute",
                buffer_size=5, audit_interval=interval,
            )
            path = tmp_path / f"i{interval}.mdz"
            with StreamingWriter(path, config) as writer:
                for snap in data:
                    writer.feed(snap)
                writer.close()
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1] == blobs[2]

    def test_corrupting_encoder_trips_stream_violations(
        self, tmp_path, monkeypatch
    ):
        """End to end: chunks corrupted between encode and commit (the
        faults shim plays bit rot) must surface as stream violations."""
        real = MDZAxisCompressor.compress_batch

        def corrupting(self, batch):
            blob = real(self, batch)
            return apply_posthoc(
                blob,
                [FaultSpec("corrupt", offset=len(blob) // 2, length=8,
                           xor_mask=0x3C)],
            )

        monkeypatch.setattr(MDZAxisCompressor, "compress_batch", corrupting)
        data = _trajectory(snapshots=16)
        config = MDZConfig(
            error_bound=1e-3, error_bound_mode="absolute",
            buffer_size=8, audit_interval=1,
        )
        with recording() as rec:
            with StreamingWriter(tmp_path / "bad.mdz", config) as writer:
                for snap in data:
                    writer.feed(snap)
                stats = writer.close()
        assert stats.audits > 0
        assert stats.audit_violations >= 1
        snap = rec.snapshot()
        assert snap["counters"]["quality.bound_violations"] >= 1
        assert any(e["name"] == "quality.bound_violation"
                   for e in snap["events"])


def test_negative_audit_interval_rejected():
    with pytest.raises(ConfigurationError):
        MDZConfig(audit_interval=-1).validate()


def test_config_default_interval_matches_auditor_default():
    from repro.telemetry.quality import DEFAULT_AUDIT_INTERVAL

    assert MDZConfig().audit_interval == DEFAULT_AUDIT_INTERVAL
