"""Cross-cutting tests for every registered compressor."""

import numpy as np
import pytest

from repro.baselines import (
    SessionMeta,
    available_compressors,
    create_compressor,
)
from repro.exceptions import UnsupportedDatasetError

LOSSY = [
    "mdz",
    "mdz-vq",
    "mdz-vqt",
    "mdz-mt",
    "sz2-1d",
    "sz2-2d",
    "tng",
    "hrtc",
    "asn",
    "mdb",
    "lfzip",
    "zfp",
]
LOSSLESS = ["zstd", "zlib", "brotli", "fpc", "fpzip", "zfp-lossless"]


def round_trip(name, stream, eb):
    enc = create_compressor(name)
    dec = create_compressor(name)
    meta = SessionMeta(n_atoms=stream.shape[1])
    bound = None if enc.is_lossless else eb
    enc.begin(bound, meta)
    dec.begin(bound, meta)
    out = np.empty(stream.shape, dtype=np.float64)
    row = 0
    for t0 in range(0, stream.shape[0], 7):
        blob = enc.compress_batch(stream[t0 : t0 + 7])
        piece = np.asarray(dec.decompress_batch(blob), dtype=np.float64)
        out[row : row + piece.shape[0]] = piece
        row += piece.shape[0]
    return out


class TestRegistry:
    def test_all_expected_compressors_registered(self):
        names = available_compressors()
        for required in LOSSY + LOSSLESS:
            assert required in names

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown compressor"):
            create_compressor("nope")

    def test_lossless_flags(self):
        for name in LOSSLESS:
            assert create_compressor(name).is_lossless
        for name in LOSSY:
            assert not create_compressor(name).is_lossless


class TestLossyBound:
    @pytest.mark.parametrize("name", LOSSY)
    def test_error_bound_crystal(self, name, crystal_stream):
        eb = 1e-3 * (crystal_stream.max() - crystal_stream.min())
        out = round_trip(name, crystal_stream, eb)
        assert np.max(np.abs(out - crystal_stream)) <= eb * (1 + 1e-9) + 1e-12

    @pytest.mark.parametrize("name", LOSSY)
    def test_error_bound_smooth(self, name, smooth_stream):
        eb = 1e-3 * (smooth_stream.max() - smooth_stream.min())
        out = round_trip(name, smooth_stream, eb)
        assert np.max(np.abs(out - smooth_stream)) <= eb * (1 + 1e-9) + 1e-12

    @pytest.mark.parametrize("name", LOSSY)
    def test_error_bound_random(self, name, random_stream):
        eb = 5e-3 * (random_stream.max() - random_stream.min())
        out = round_trip(name, random_stream, eb)
        assert np.max(np.abs(out - random_stream)) <= eb * (1 + 1e-9) + 1e-12

    @pytest.mark.parametrize("name", LOSSY)
    def test_missing_bound_rejected(self, name):
        from repro.exceptions import CompressionError

        with pytest.raises(CompressionError):
            create_compressor(name).begin(None, SessionMeta(n_atoms=10))


class TestLosslessExactness:
    @pytest.mark.parametrize("name", LOSSLESS)
    def test_bit_exact_float32(self, name, crystal_stream):
        stream = crystal_stream.astype(np.float32)
        enc = create_compressor(name)
        dec = create_compressor(name)
        enc.begin(None, SessionMeta(n_atoms=stream.shape[1]))
        dec.begin(None, SessionMeta(n_atoms=stream.shape[1]))
        blob = enc.compress_batch(stream)
        out = dec.decompress_batch(blob)
        assert out.dtype == np.float32
        assert np.array_equal(out, stream)

    @pytest.mark.parametrize("name", ["fpc", "fpzip", "zfp-lossless"])
    def test_bit_exact_float64(self, name, random_stream):
        enc = create_compressor(name)
        dec = create_compressor(name)
        enc.begin(None, SessionMeta(n_atoms=random_stream.shape[1]))
        dec.begin(None, SessionMeta(n_atoms=random_stream.shape[1]))
        out = dec.decompress_batch(enc.compress_batch(random_stream))
        assert np.array_equal(out, random_stream)

    @pytest.mark.parametrize("name", ["fpc", "fpzip"])
    def test_special_values_preserved(self, name):
        stream = np.array(
            [[0.0, -0.0, 1e-300, -1e300, 3.14, 2.0**-1040]], dtype=np.float64
        )
        enc = create_compressor(name)
        dec = create_compressor(name)
        enc.begin(None, SessionMeta(n_atoms=stream.shape[1]))
        dec.begin(None, SessionMeta(n_atoms=stream.shape[1]))
        out = dec.decompress_batch(enc.compress_batch(stream))
        assert np.array_equal(
            out.view(np.uint64), stream.view(np.uint64)
        )


class TestCapabilityLimits:
    def test_tng_atom_limit(self):
        compressor = create_compressor("tng")
        with pytest.raises(UnsupportedDatasetError, match="Pt and LJ"):
            compressor.begin(
                0.01, SessionMeta(n_atoms=100, original_atoms=2_371_092)
            )

    def test_tng_accepts_copper_a_scale(self):
        create_compressor("tng").begin(
            0.01, SessionMeta(n_atoms=100, original_atoms=1_077_290)
        )

    def test_hrtc_atom_limit(self):
        compressor = create_compressor("hrtc")
        with pytest.raises(UnsupportedDatasetError):
            compressor.begin(
                0.01, SessionMeta(n_atoms=100, original_atoms=106_711)
            )

    def test_hrtc_accepts_small_sets(self):
        create_compressor("hrtc").begin(
            0.01, SessionMeta(n_atoms=100, original_atoms=12_445)
        )


class TestStatefulSessions:
    def test_asn_batches_chain(self, smooth_stream):
        """ASN carries the last two reconstructions across batches."""
        eb = 1e-3 * (smooth_stream.max() - smooth_stream.min())
        out = round_trip("asn", smooth_stream, eb)
        assert np.max(np.abs(out - smooth_stream)) <= eb * (1 + 1e-9)

    def test_mdz_mt_reference_spans_batches(self, smooth_stream):
        eb = 1e-3 * (smooth_stream.max() - smooth_stream.min())
        out = round_trip("mdz-mt", smooth_stream, eb)
        assert np.max(np.abs(out - smooth_stream)) <= eb * (1 + 1e-9)

    def test_begin_resets_state(self, smooth_stream):
        """A second begin() must make the session forget the first run."""
        eb = 1e-3 * (smooth_stream.max() - smooth_stream.min())
        enc = create_compressor("asn")
        meta = SessionMeta(n_atoms=smooth_stream.shape[1])
        enc.begin(eb, meta)
        first = enc.compress_batch(smooth_stream[:7])
        enc.begin(eb, meta)
        again = enc.compress_batch(smooth_stream[:7])
        assert first == again
