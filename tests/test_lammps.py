"""Tests for the mini-LAMMPS driver (Table VII substrate)."""

import numpy as np
import pytest

from repro.lammps import (
    DumpSink,
    breakdown_row,
    format_breakdown_table,
    run_lj_benchmark,
)


class TestDumpSink:
    def test_raw_path_accounts_bytes(self, rng):
        sink = DumpSink(use_mdz=False, pfs_bandwidth=1e6)
        snapshot = rng.normal(0, 1, (100, 3))
        extra = sink.consume(1, snapshot)
        assert sink.raw_bytes == 100 * 3 * 4
        assert sink.written_bytes == sink.raw_bytes
        assert extra == pytest.approx(sink.raw_bytes / 1e6)
        assert sink.compression_ratio == pytest.approx(1.0)

    def test_mdz_path_buffers_until_full(self, rng):
        sink = DumpSink(use_mdz=True, buffer_size=3, pfs_bandwidth=1e6)
        base = rng.normal(0, 5, (80, 3))
        for step in range(2):
            assert sink.consume(step, base + 1e-4 * step) == 0.0
        assert sink.written_bytes == 0
        extra = sink.consume(2, base + 3e-4)
        assert extra > 0
        assert sink.written_bytes > 0
        assert sink.compression_ratio > 1.0

    def test_finish_flushes_partial_buffer(self, rng):
        sink = DumpSink(use_mdz=True, buffer_size=10, pfs_bandwidth=1e6)
        sink.consume(0, rng.normal(0, 5, (50, 3)))
        assert sink.written_bytes == 0
        assert sink.finish() > 0
        assert sink.written_bytes > 0

    def test_finish_noop_for_raw_path(self):
        assert DumpSink(use_mdz=False).finish() == 0.0


class TestBenchmark:
    def test_table_vii_shape(self):
        """MDZ shrinks the output share; total runtime comparable."""
        raw = run_lj_benchmark(
            cells=4, steps=60, dump_every=5, use_mdz=False, buffer_size=4
        )
        mdz = run_lj_benchmark(
            cells=4, steps=60, dump_every=5, use_mdz=True, buffer_size=4
        )
        assert raw.n_atoms == 4**3 * 4
        assert raw.report.dumped_snapshots == 12
        row_raw, row_mdz = raw.row(), mdz.row()
        assert row_mdz["output_cr"] > 2.0
        # At this toy scale the wall-clock benefit is noise-dominated (the
        # tab07 benchmark asserts it at proper scale); the structural
        # effect is the written-bytes reduction.
        assert mdz.sink.written_bytes < raw.sink.written_bytes / 2
        assert row_raw["comp"] > 0.5

    def test_rows_format(self):
        result = run_lj_benchmark(
            cells=3, steps=20, dump_every=10, use_mdz=True, buffer_size=2
        )
        text = breakdown_row(result)
        assert "w MDZ" in text and "output-CR" in text
        table = format_breakdown_table([result])
        assert text in table
