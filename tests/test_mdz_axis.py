"""Tests for the MDZ per-axis session and configuration."""

import numpy as np
import pytest

from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.exceptions import CompressionError, ConfigurationError


def run_round_trip(stream, config=None, eb=None):
    if eb is None:
        eb = 1e-3 * float(stream.max() - stream.min())
    enc = MDZAxisCompressor(config)
    dec = MDZAxisCompressor(config)
    meta = SessionMeta(n_atoms=stream.shape[1])
    enc.begin(eb, meta)
    dec.begin(eb, meta)
    out = np.empty_like(stream, dtype=np.float64)
    row = 0
    for t0 in range(0, stream.shape[0], 5):
        blob = enc.compress_batch(stream[t0 : t0 + 5])
        piece = dec.decompress_batch(blob)
        out[row : row + piece.shape[0]] = piece
        row += piece.shape[0]
    return out, eb


class TestConfig:
    def test_defaults_match_paper(self):
        config = MDZConfig()
        assert config.error_bound == 1e-3
        assert config.buffer_size == 10
        assert config.quantization_scale == 1024
        assert config.sequence_mode == "seq2"
        assert config.method == "adp"
        assert config.adaptation_interval == 50

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"error_bound": 0.0},
            {"error_bound": -1e-3},
            {"error_bound": 1.5, "error_bound_mode": "value_range"},
            {"error_bound_mode": "relative"},
            {"buffer_size": 0},
            {"quantization_scale": 2},
            {"sequence_mode": "seq3"},
            {"method": "best"},
            {"adaptation_interval": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MDZConfig(**kwargs)

    def test_layout_mapping(self):
        assert MDZConfig(sequence_mode="seq2").layout == "F"
        assert MDZConfig(sequence_mode="seq1").layout == "C"

    def test_absolute_bound_resolution(self):
        config = MDZConfig(error_bound=1e-3)
        assert config.absolute_bound(50.0) == pytest.approx(0.05)
        absolute = MDZConfig(error_bound=0.01, error_bound_mode="absolute")
        assert absolute.absolute_bound(50.0) == 0.01


class TestSessions:
    @pytest.mark.parametrize("method", ["adp", "vq", "vqt", "mt"])
    def test_round_trip_all_methods(self, crystal_stream, method):
        config = MDZConfig(method=method)
        out, eb = run_round_trip(crystal_stream, config)
        assert np.max(np.abs(out - crystal_stream)) <= eb * (1 + 1e-9) + 1e-12

    def test_smooth_stream_bound(self, smooth_stream):
        out, eb = run_round_trip(smooth_stream)
        assert np.max(np.abs(out - smooth_stream)) <= eb * (1 + 1e-9) + 1e-12

    def test_random_stream_bound(self, random_stream):
        out, eb = run_round_trip(random_stream)
        assert np.max(np.abs(out - random_stream)) <= eb * (1 + 1e-9) + 1e-12

    def test_seq1_round_trip(self, crystal_stream):
        config = MDZConfig(sequence_mode="seq1")
        out, eb = run_round_trip(crystal_stream, config)
        assert np.max(np.abs(out - crystal_stream)) <= eb * (1 + 1e-9) + 1e-12

    @pytest.mark.parametrize("scale", [64, 256, 4096])
    def test_quantization_scales(self, crystal_stream, scale):
        config = MDZConfig(quantization_scale=scale)
        out, eb = run_round_trip(crystal_stream, config)
        assert np.max(np.abs(out - crystal_stream)) <= eb * (1 + 1e-9) + 1e-12

    def test_compress_before_begin_raises(self, crystal_stream):
        compressor = MDZAxisCompressor()
        with pytest.raises(CompressionError, match="begin"):
            compressor.compress_batch(crystal_stream)

    def test_missing_bound_rejected(self, crystal_stream):
        compressor = MDZAxisCompressor()
        with pytest.raises(CompressionError):
            compressor.begin(None, SessionMeta(n_atoms=10))

    def test_selection_history_exposed(self, crystal_stream):
        compressor = MDZAxisCompressor(MDZConfig(method="adp"))
        compressor.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
        compressor.compress_batch(crystal_stream)
        assert len(compressor.selection_history) == 1

    def test_name_reflects_method(self):
        assert MDZAxisCompressor(MDZConfig(method="adp")).name == "mdz"
        assert MDZAxisCompressor(MDZConfig(method="vq")).name == "mdz-vq"

    def test_vq_supports_random_access(self):
        assert MDZAxisCompressor(MDZConfig(method="vq")).supports_random_access
        assert not MDZAxisCompressor(MDZConfig(method="mt")).supports_random_access


class TestSequenceAblation:
    def test_seq2_helps_on_smooth_data(self, smooth_stream):
        """Table III's effect: Seq-2 beats Seq-1 when time is stable."""
        sizes = {}
        # widen the stream so the dictionary coder sees substantial input
        stream = np.tile(smooth_stream, (1, 4))
        for mode in ("seq1", "seq2"):
            enc = MDZAxisCompressor(
                MDZConfig(method="mt", sequence_mode=mode)
            )
            eb = 1e-3 * float(stream.max() - stream.min())
            enc.begin(eb, SessionMeta(n_atoms=stream.shape[1]))
            sizes[mode] = sum(
                len(enc.compress_batch(stream[t : t + 10]))
                for t in range(0, stream.shape[0], 10)
            )
        assert sizes["seq2"] <= sizes["seq1"] * 1.02
