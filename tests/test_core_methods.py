"""Tests for MDZ's three prediction methods (VQ / VQT / MT)."""

import numpy as np
import pytest

from repro.core.levels import SessionLevelModel
from repro.core.methods import METHOD_IDS, METHOD_NAMES, MethodState
from repro.core.mt import MTMethod
from repro.core.vq import VQMethod
from repro.core.vqt import VQTMethod
from repro.exceptions import DecompressionError
from repro.sz.quantizer import LinearQuantizer

EB = 1e-3


def make_state(layout="F") -> MethodState:
    return MethodState(
        quantizer=LinearQuantizer(EB),
        layout=layout,
        levels=SessionLevelModel(seed=0),
    )


def assert_bound(recon, batch):
    assert np.max(np.abs(recon - batch)) <= EB * (1 + 1e-9) + 1e-12


class TestMethodIds:
    def test_ids_bijective(self):
        assert METHOD_NAMES == {v: k for k, v in METHOD_IDS.items()}

    def test_instances_expose_ids(self):
        assert VQMethod().method_id == METHOD_IDS["vq"]
        assert VQTMethod().method_id == METHOD_IDS["vqt"]
        assert MTMethod().method_id == METHOD_IDS["mt"]


class TestVQ:
    def test_round_trip_crystal(self, crystal_stream):
        enc_state, dec_state = make_state(), make_state()
        blob, recon = VQMethod().encode(crystal_stream, enc_state)
        assert_bound(recon, crystal_stream)
        out = VQMethod().decode(blob, dec_state)
        assert np.array_equal(out, recon)

    def test_round_trip_unstructured(self, random_stream):
        enc_state, dec_state = make_state(), make_state()
        blob, recon = VQMethod().encode(random_stream, enc_state)
        assert_bound(recon, random_stream)
        assert np.array_equal(VQMethod().decode(blob, dec_state), recon)

    def test_snapshots_independent(self, crystal_stream):
        """Encoding a sub-batch yields the same bytes for those rows."""
        s1, s2 = make_state(), make_state()
        s1.levels.fit_for(crystal_stream[0])
        s2.levels.fit_for(crystal_stream[0])
        blob_a, recon_a = VQMethod().encode(crystal_stream[:5], s1)
        blob_b, recon_b = VQMethod().encode(crystal_stream, s2)
        assert np.array_equal(recon_a, recon_b[:5])

    def test_seq1_layout_round_trip(self, crystal_stream):
        enc_state, dec_state = make_state("C"), make_state("C")
        blob, recon = VQMethod().encode(crystal_stream, enc_state)
        assert np.array_equal(VQMethod().decode(blob, dec_state), recon)


class TestVQT:
    def test_round_trip(self, crystal_stream):
        enc_state, dec_state = make_state(), make_state()
        blob, recon = VQTMethod().encode(crystal_stream, enc_state)
        assert_bound(recon, crystal_stream)
        assert np.array_equal(VQTMethod().decode(blob, dec_state), recon)

    def test_single_snapshot_batch(self, crystal_stream):
        enc_state, dec_state = make_state(), make_state()
        blob, recon = VQTMethod().encode(crystal_stream[:1], enc_state)
        assert recon.shape == (1, crystal_stream.shape[1])
        assert np.array_equal(VQTMethod().decode(blob, dec_state), recon)

    def test_beats_vq_on_smooth_data(self, smooth_stream):
        vq_state, vqt_state = make_state(), make_state()
        vq_blob, _ = VQMethod().encode(smooth_stream, vq_state)
        vqt_blob, _ = VQTMethod().encode(smooth_stream, vqt_state)
        assert len(vqt_blob) < len(vq_blob)


class TestMT:
    def test_bootstrap_then_reference(self, smooth_stream):
        enc_state, dec_state = make_state(), make_state()
        method = MTMethod()
        # batch 1 bootstraps (reference is None)
        blob1, recon1 = method.encode(smooth_stream[:10], enc_state)
        enc_state.reference = recon1[0].copy()
        out1 = method.decode(blob1, dec_state)
        dec_state.reference = out1[0].copy()
        assert np.array_equal(out1, recon1)
        # batch 2 predicts from the session reference
        blob2, recon2 = method.encode(smooth_stream[10:], enc_state)
        out2 = method.decode(blob2, dec_state)
        assert np.array_equal(out2, recon2)
        assert_bound(recon2, smooth_stream[10:])

    def test_decode_without_reference_raises(self, smooth_stream):
        enc_state = make_state()
        enc_state.reference = smooth_stream[0].copy()
        blob, _ = MTMethod().encode(smooth_stream[:5], enc_state)
        with pytest.raises(DecompressionError, match="reference"):
            MTMethod().decode(blob, make_state())

    def test_reference_prediction_cheaper_than_bootstrap(self, smooth_stream):
        cold, warm = make_state(), make_state()
        warm.reference = smooth_stream[0].astype(np.float64)
        blob_cold, _ = MTMethod().encode(smooth_stream[:5], cold)
        blob_warm, _ = MTMethod().encode(smooth_stream[:5], warm)
        assert len(blob_warm) < len(blob_cold)


class TestTrialState:
    def test_clone_isolates_reference(self, smooth_stream):
        state = make_state()
        state.reference = smooth_stream[0].astype(np.float64).copy()
        clone = state.clone_for_trial()
        clone.reference[:] = 0.0
        assert state.reference.max() > 0

    def test_clone_shares_levels(self, crystal_stream):
        state = make_state()
        fit = state.levels.fit_for(crystal_stream[0])
        clone = state.clone_for_trial()
        assert clone.levels.fit_for(crystal_stream[0]) is fit
