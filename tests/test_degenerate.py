"""Degenerate-input matrix: the inputs production traffic hits on day one.

Constant data, single snapshot, single atom, huge value ranges, NaN/Inf
trajectories, empty symbol arrays through the Huffman codec, trailing
partial buffers and never-fed streams through the streaming writer.  The
NaN/Inf, Huffman-dtype, and partial-file cases are regression tests for
bugs fixed in this tree — each failed before the fix.
"""

import io

import numpy as np
import pytest

from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZ, MDZAxisCompressor
from repro.exceptions import CompressionError
from repro.serde import BlobWriter
from repro.stream import StreamingReader, StreamingWriter, stream_compress
from repro.sz.huffman import HuffmanCodec


def _roundtrip(positions: np.ndarray, config: MDZConfig):
    mdz = MDZ(config)
    blob = mdz.compress(positions)
    return mdz.decompress(blob), blob


class TestDegenerateShapes:
    def test_constant_trajectory(self):
        positions = np.full((6, 40, 3), 2.5)
        out, blob = _roundtrip(positions, MDZConfig(buffer_size=4))
        # Zero value range: any positive bound preserves the data exactly.
        assert np.abs(out - positions).max() <= 1e-3
        assert len(blob) < 6 * 40 * 3 * 4

    def test_single_snapshot(self):
        rng = np.random.default_rng(7)
        positions = rng.normal(0, 1, (1, 50, 3))
        out, _ = _roundtrip(positions, MDZConfig())
        bound = 1e-3 * (positions.max(axis=(0, 1)) - positions.min(axis=(0, 1)))
        assert (np.abs(out - positions).max(axis=(0, 1)) <= bound * (1 + 1e-9)).all()

    def test_single_atom(self):
        rng = np.random.default_rng(8)
        positions = np.cumsum(rng.normal(0, 0.1, (20, 1, 3)), axis=0)
        out, _ = _roundtrip(positions, MDZConfig(buffer_size=5))
        for a in range(3):
            bound = 1e-3 * (
                positions[:, :, a].max() - positions[:, :, a].min()
            )
            assert np.abs(out[:, :, a] - positions[:, :, a]).max() <= bound * (
                1 + 1e-9
            )

    def test_huge_value_range(self):
        rng = np.random.default_rng(9)
        positions = rng.uniform(0.0, 1e30, (8, 30, 3))
        out, _ = _roundtrip(positions, MDZConfig(buffer_size=4))
        for a in range(3):
            axis = positions[:, :, a]
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.isfinite(out[:, :, a]).all()
            assert np.abs(out[:, :, a] - axis).max() <= bound * (1 + 1e-9)

    def test_streaming_constant_and_single_snapshot(self):
        sink = io.BytesIO()
        stats = stream_compress(
            np.full((1, 25, 3), 1.0), sink, MDZConfig(buffer_size=10)
        )
        assert stats.snapshots == 1
        out = StreamingReader(sink.getvalue()).read_all()
        assert out.shape == (1, 25, 3)
        assert np.abs(out - 1.0).max() <= 1e-3


class TestNonFiniteInput:
    """Regression: NaN trajectories used to die with a misleading
    ``ConfigurationError: error bound must be a positive finite number``."""

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_mdz_compress_rejects(self, bad):
        positions = np.zeros((4, 10, 3))
        positions[1, 2, 0] = bad
        with pytest.raises(CompressionError, match="non-finite"):
            MDZ(MDZConfig()).compress(positions)

    def test_axis_compressor_batch_rejects(self):
        session = MDZAxisCompressor(MDZConfig(method="vq"))
        session.begin(0.01, SessionMeta(n_atoms=5))
        batch = np.zeros((2, 5))
        batch[0, 0] = np.nan
        with pytest.raises(CompressionError, match="non-finite"):
            session.compress_batch(batch)

    def test_axis_compressor_begin_rejects_nan_bound(self):
        # A NaN bound is what a NaN value range resolves to; the error
        # must be a CompressionError pointing at the input, not a
        # ConfigurationError about the bound setting.
        session = MDZAxisCompressor(MDZConfig())
        with pytest.raises(CompressionError, match="not finite"):
            session.begin(float("nan"), SessionMeta(n_atoms=5))

    def test_streaming_feed_rejects(self, tmp_path):
        snapshot = np.zeros((10, 3))
        snapshot[3, 1] = np.inf
        writer = StreamingWriter(io.BytesIO(), MDZConfig())
        try:
            with pytest.raises(CompressionError, match="non-finite"):
                writer.feed(snapshot)
        finally:
            writer.abort()


class TestHuffmanDtype:
    """Regression: ``decode`` returned int64 regardless of input dtype."""

    @pytest.mark.parametrize(
        "dtype", [np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint16]
    )
    def test_dtype_round_trip(self, dtype):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 100, 500).astype(dtype)
        out = HuffmanCodec.decode(HuffmanCodec.encode(values))
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, values)

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
    def test_empty_array_round_trip(self, dtype):
        out = HuffmanCodec.decode(HuffmanCodec.encode(np.empty(0, dtype=dtype)))
        assert out.size == 0
        assert out.dtype == np.dtype(dtype)

    def test_single_symbol_keeps_dtype(self):
        values = np.full(64, -3, dtype=np.int32)
        out = HuffmanCodec.decode(HuffmanCodec.encode(values))
        assert out.dtype == np.int32
        assert np.array_equal(out, values)

    def test_legacy_blob_without_dtype_tag_decodes_int64(self):
        # Blobs written before the dtype tag: header JSON has no "dt".
        writer = BlobWriter()
        writer.write_json({"n": 0})
        out = HuffmanCodec.decode(writer.getvalue())
        assert out.size == 0
        assert out.dtype == np.int64


class TestStreamingWriterLifecycle:
    """Regression: a failed ``close()`` left a 0-byte file that the reader
    then rejected with ``bad container magic b''``."""

    def test_never_fed_close_removes_owned_file(self, tmp_path):
        path = tmp_path / "empty.mdz"
        writer = StreamingWriter(path, MDZConfig())
        with pytest.raises(CompressionError, match="empty stream"):
            writer.close()
        assert not path.exists()

    def test_close_idempotent_after_failure(self, tmp_path):
        writer = StreamingWriter(tmp_path / "empty.mdz", MDZConfig())
        with pytest.raises(CompressionError):
            writer.close()
        # Later calls return the (empty) stats instead of raising again.
        assert writer.close().snapshots == 0

    def test_never_fed_close_keeps_caller_owned_handle(self):
        sink = io.BytesIO()
        writer = StreamingWriter(sink, MDZConfig())
        with pytest.raises(CompressionError, match="empty stream"):
            writer.close()
        # The writer does not own the file object: it must stay open and
        # untouched for the caller to deal with.
        assert not sink.closed
        assert sink.getvalue() == b""

    def test_context_manager_never_fed(self, tmp_path):
        path = tmp_path / "empty.mdz"
        with pytest.raises(CompressionError, match="empty stream"):
            with StreamingWriter(path, MDZConfig()):
                pass
        assert not path.exists()

    def test_trailing_partial_buffer(self, tmp_path):
        rng = np.random.default_rng(11)
        trajectory = np.cumsum(rng.normal(0, 0.05, (7, 20, 3)), axis=0)
        path = tmp_path / "partial.mdz"
        with StreamingWriter(path, MDZConfig(buffer_size=5)) as writer:
            for snapshot in trajectory:
                writer.feed(snapshot)
            stats = writer.close()
        assert stats.buffers == 2  # 5 + 2
        reader = StreamingReader(path.read_bytes())
        assert reader.snapshots == 7
        out = reader.read_all()
        assert out.shape == trajectory.shape
        for a in range(3):
            err = np.abs(out[:, :, a] - trajectory[:, :, a]).max()
            assert err <= reader.error_bounds[a] * (1 + 1e-9)

    def test_partial_buffer_only(self, tmp_path):
        # Fewer snapshots than one buffer: close() must still flush them.
        rng = np.random.default_rng(12)
        trajectory = rng.normal(0, 1, (3, 15, 3))
        sink = io.BytesIO()
        stats = stream_compress(trajectory, sink, MDZConfig(buffer_size=10))
        assert stats.buffers == 1
        assert StreamingReader(sink.getvalue()).read_all().shape == (3, 15, 3)
