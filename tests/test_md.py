"""Tests for the MD simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.md.integrators import (
    LangevinThermostat,
    VelocityVerlet,
    maxwell_boltzmann_velocities,
)
from repro.md.lattice import bcc_lattice, fcc_lattice, surface_slab
from repro.md.neighbors import CellList
from repro.md.potentials import LennardJones
from repro.md.simulation import MDSimulation


class TestLattices:
    def test_fcc_atom_count(self):
        assert fcc_lattice((3, 4, 5), 1.0).n_atoms == 3 * 4 * 5 * 4

    def test_bcc_atom_count(self):
        assert bcc_lattice((3, 3, 3), 1.0).n_atoms == 27 * 2

    def test_fcc_nearest_neighbor_distance(self):
        lat = fcc_lattice((4, 4, 4), 3.615)
        cells = CellList(lat.box, cutoff=3.0)
        _, _, rij = cells.pairs(lat.positions)
        dist = np.linalg.norm(rij, axis=1)
        assert dist.min() == pytest.approx(3.615 / np.sqrt(2), rel=1e-9)

    def test_positions_inside_box(self):
        lat = fcc_lattice((3, 3, 3), 2.0)
        assert (lat.positions >= 0).all()
        assert (lat.positions < lat.box).all()

    def test_surface_slab_vacuum_and_adatoms(self):
        lat = surface_slab((4, 4, 4), 2.0, vacuum_layers=3, n_adatoms=5,
                           rng=np.random.default_rng(0))
        assert lat.n_atoms == 4 * 4 * 4 * 4 + 5
        assert lat.box[2] == pytest.approx(4 * 2.0 + 3 * 2.0)
        # Adatoms sit above the bulk surface.
        assert lat.positions[-5:, 2].min() > lat.positions[:-5, 2].max()

    def test_invalid_cells_rejected(self):
        with pytest.raises(ValueError):
            fcc_lattice((0, 2, 2), 1.0)


class TestCellList:
    def brute_force_pairs(self, pos, box, cutoff):
        n = pos.shape[0]
        found = set()
        for i in range(n):
            for j in range(i + 1, n):
                d = pos[j] - pos[i]
                d -= box * np.rint(d / box)
                if (d**2).sum() <= cutoff**2:
                    found.add((i, j))
        return found

    @pytest.mark.parametrize("n_atoms", [10, 60])
    def test_matches_brute_force(self, n_atoms, rng):
        box = np.array([9.0, 10.0, 11.0])
        pos = rng.uniform(0, box, (n_atoms, 3))
        cutoff = 2.6
        cells = CellList(box, cutoff)
        i, j, rij = cells.pairs(pos)
        got = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert len(got) == i.size  # no duplicates
        assert got == self.brute_force_pairs(pos, box, cutoff)

    def test_small_box_collapsed_axes(self, rng):
        # box < 3*cutoff along every axis -> single-cell fallback
        box = np.array([5.0, 5.0, 5.0])
        pos = rng.uniform(0, box, (25, 3))
        cells = CellList(box, cutoff=2.0)
        i, j, _ = cells.pairs(pos)
        got = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert len(got) == i.size
        assert got == self.brute_force_pairs(pos, box, 2.0)

    def test_displacement_is_minimum_image(self, rng):
        box = np.array([10.0, 10.0, 10.0])
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        cells = CellList(box, cutoff=2.0)
        i, j, rij = cells.pairs(pos)
        assert i.size == 1
        assert abs(np.linalg.norm(rij[0]) - 1.0) < 1e-12

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            CellList(np.array([1.0, -1.0, 1.0]), 0.5)
        with pytest.raises(SimulationError):
            CellList(np.ones(3), 0.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_no_duplicate_pairs(self, seed):
        rng = np.random.default_rng(seed)
        box = rng.uniform(6, 14, 3)
        pos = rng.uniform(0, box, (40, 3))
        cells = CellList(box, cutoff=2.5)
        i, j, _ = cells.pairs(pos)
        keys = set()
        for a, b in zip(i.tolist(), j.tolist()):
            assert a != b
            key = (min(a, b), max(a, b))
            assert key not in keys
            keys.add(key)


class TestLennardJones:
    def test_minimum_at_r_min(self):
        lj = LennardJones(cutoff=5.0)
        # two atoms at the potential minimum -> near-zero force
        pos = np.array([[0.0, 0.0, 0.0], [2.0 ** (1 / 6), 0.0, 0.0]])
        cells = CellList(np.array([20.0, 20.0, 20.0]), 5.0)
        forces, _ = lj.forces_energy(pos, cells)
        assert np.abs(forces).max() < 1e-10

    def test_forces_match_numeric_gradient(self, rng):
        lj = LennardJones(cutoff=2.5)
        box = np.array([8.0, 8.0, 8.0])
        pos = fcc_lattice((2, 2, 2), 2.0).positions + rng.normal(0, 0.05, (32, 3))
        cells = CellList(box, 2.5)
        forces, _ = lj.forces_energy(pos, cells)
        h = 1e-6
        for idx in [(0, 0), (7, 1), (20, 2)]:
            atom, axis = idx
            plus = pos.copy()
            plus[atom, axis] += h
            minus = pos.copy()
            minus[atom, axis] -= h
            _, e_plus = lj.forces_energy(plus, cells)
            _, e_minus = lj.forces_energy(minus, cells)
            numeric = -(e_plus - e_minus) / (2 * h)
            assert forces[atom, axis] == pytest.approx(numeric, rel=1e-4, abs=1e-5)

    def test_newton_third_law(self, rng):
        lj = LennardJones()
        box = np.array([10.0, 10.0, 10.0])
        pos = rng.uniform(0, box, (50, 3))
        # avoid overlapping atoms
        pos = fcc_lattice((2, 2, 2), 2.5).positions
        cells = CellList(np.array([5.0, 5.0, 5.0]), 2.5)
        forces, _ = lj.forces_energy(pos, cells)
        assert np.abs(forces.sum(axis=0)).max() < 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            LennardJones(sigma=-1.0)


class TestIntegrators:
    def test_maxwell_boltzmann_temperature(self, rng):
        v = maxwell_boltzmann_velocities(5000, 1.5, np.ones(5000), rng)
        kinetic = 0.5 * np.sum(v**2)
        temp = 2 * kinetic / (3 * 5000)
        assert temp == pytest.approx(1.5, rel=0.05)
        assert np.abs(v.mean(axis=0)).max() < 1e-12

    def test_invalid_timestep_rejected(self):
        with pytest.raises(SimulationError):
            VelocityVerlet(dt=0.0)

    def test_invalid_thermostat_rejected(self):
        with pytest.raises(SimulationError):
            LangevinThermostat(temperature=-1.0)
        with pytest.raises(SimulationError):
            LangevinThermostat(temperature=1.0, friction=0.0)

    def test_thermostat_relaxes_to_target(self, rng):
        thermostat = LangevinThermostat(temperature=2.0, friction=2.0, seed=3)
        v = np.zeros((2000, 3))
        masses = np.ones(2000)
        for _ in range(200):
            thermostat.apply(v, masses, dt=0.05)
        temp = np.sum(v**2) / (3 * 2000)
        assert temp == pytest.approx(2.0, rel=0.1)


class TestSimulation:
    def test_nve_energy_conservation(self):
        lat = fcc_lattice((3, 3, 3), 1.7)
        sim = MDSimulation(lat.positions, lat.box, temperature=0.5, seed=2, dt=0.002)
        sim.thermostat = None  # switch to NVE after thermal init
        e0 = sim.potential_energy + sim.kinetic_energy
        sim.run(150)
        e1 = sim.potential_energy + sim.kinetic_energy
        assert abs(e1 - e0) / abs(e0) < 5e-3

    def test_thermostat_holds_temperature(self):
        lat = fcc_lattice((3, 3, 3), 1.7)
        sim = MDSimulation(
            lat.positions, lat.box, temperature=1.0, friction=5.0, seed=4
        )
        sim.run(250)
        assert sim.temperature == pytest.approx(1.0, rel=0.25)

    def test_dump_callback_invoked(self):
        lat = fcc_lattice((2, 2, 2), 1.7)
        sim = MDSimulation(lat.positions, lat.box, temperature=0.5, seed=1)
        seen = []
        report = sim.run(
            20, dump_every=5, dump_callback=lambda s, p: seen.append(s) or 0.1
        )
        assert seen == [5, 10, 15, 20]
        assert report.dumped_snapshots == 4
        # the callback's returned 0.1s extra I/O must be accounted
        assert report.output_seconds >= 0.4

    def test_report_fractions_sum_to_one(self):
        lat = fcc_lattice((2, 2, 2), 1.7)
        sim = MDSimulation(lat.positions, lat.box, temperature=0.5, seed=1)
        report = sim.run(10)
        fr = report.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_bad_positions_shape_rejected(self):
        with pytest.raises(SimulationError):
            MDSimulation(np.zeros((5, 2)), np.ones(3))
