"""Tests for the lossless backend layer (repro.sz.lossless)."""

import pytest

from repro.exceptions import DecompressionError
from repro.sz.lossless import (
    available_backends,
    lossless_compress,
    lossless_decompress,
)


class TestBackends:
    def test_available_backends(self):
        names = available_backends()
        assert "zlib" in names
        assert "lzma" in names
        assert "bz2" in names

    @pytest.mark.parametrize("backend", ["zlib", "lzma", "bz2"])
    def test_round_trip(self, backend):
        data = b"abc" * 1000 + bytes(range(256))
        blob = lossless_compress(data, backend)
        assert lossless_decompress(blob) == data

    @pytest.mark.parametrize("backend", ["zlib", "lzma", "bz2"])
    def test_empty_payload(self, backend):
        assert lossless_decompress(lossless_compress(b"", backend)) == b""

    def test_compresses_redundancy(self):
        data = b"\x00" * 100_000
        assert len(lossless_compress(data)) < 1000

    def test_self_describing(self):
        blob = lossless_compress(b"payload", "lzma")
        # no backend argument needed to decompress
        assert lossless_decompress(blob) == b"payload"


class TestErrors:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown lossless backend"):
            lossless_compress(b"x", "snappy")

    def test_empty_blob_rejected(self):
        with pytest.raises(DecompressionError):
            lossless_decompress(b"")

    def test_unknown_id_rejected(self):
        with pytest.raises(DecompressionError, match="backend id"):
            lossless_decompress(b"\xfe1234")

    def test_corrupt_payload_rejected(self):
        blob = lossless_compress(b"hello hello hello")
        with pytest.raises(DecompressionError):
            lossless_decompress(blob[:1] + b"garbage")
