"""Tests for the optimal 1-D k-means DP (repro.cluster.kmeans1d)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.kmeans1d import (
    clustering_for_k,
    kmeans_1d,
    kmeans_1d_cost_profile,
)


def brute_force_cost(data: np.ndarray, k: int) -> float:
    """Exhaustive optimal k-means cost over sorted 1-D data."""
    d = np.sort(data)
    n = d.size

    def sse(seg):
        seg = np.asarray(seg)
        return float(((seg - seg.mean()) ** 2).sum()) if seg.size else 0.0

    best = np.inf
    for cuts in itertools.combinations(range(1, n), k - 1):
        bounds = (0, *cuts, n)
        cost = sum(sse(d[bounds[i] : bounds[i + 1]]) for i in range(k))
        best = min(best, cost)
    return best


class TestOptimality:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_brute_force(self, k, rng):
        data = rng.normal(0, 1, 9)
        result = kmeans_1d(data, k)
        assert result.cost == pytest.approx(brute_force_cost(data, k), abs=1e-9)

    def test_separated_clusters_found_exactly(self, rng):
        data = np.concatenate(
            [rng.normal(c * 10, 0.1, 40) for c in range(5)]
        )
        result = kmeans_1d(data, 5)
        assert np.allclose(np.sort(result.centroids), [0, 10, 20, 30, 40], atol=0.2)
        assert result.cost < 40 * 5 * 0.1**2 * 3

    def test_k_equals_n_zero_cost(self, rng):
        data = rng.normal(0, 1, 6)
        assert kmeans_1d(data, 6).cost == pytest.approx(0.0, abs=1e-12)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute_force(self, data):
        values = data.draw(
            st.lists(
                st.floats(-100, 100, allow_nan=False),
                min_size=3,
                max_size=8,
            )
        )
        k = data.draw(st.integers(1, min(4, len(values))))
        arr = np.array(values)
        got = kmeans_1d(arr, k).cost
        want = brute_force_cost(arr, k)
        assert got == pytest.approx(want, abs=1e-6, rel=1e-6)


class TestStructure:
    def test_boundaries_partition_data(self, rng):
        data = rng.normal(0, 5, 100)
        result = kmeans_1d(data, 7)
        assert result.boundaries[0] == 0
        assert (np.diff(result.boundaries) >= 1).all()
        assert result.boundaries[-1] < 100

    def test_centroids_ascending(self, rng):
        data = rng.uniform(0, 10, 60)
        result = kmeans_1d(data, 5)
        assert (np.diff(result.centroids) >= 0).all()

    def test_cost_decreases_with_k(self, rng):
        data = rng.uniform(0, 10, 80)
        costs = [kmeans_1d(data, k).cost for k in range(1, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.empty(0), 1)

    def test_bad_k_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans_1d(rng.normal(0, 1, 5), 6)
        with pytest.raises(ValueError):
            kmeans_1d(rng.normal(0, 1, 5), 0)


class TestCostProfile:
    def test_profile_matches_individual_runs(self, rng):
        data = rng.normal(0, 3, 50)
        costs, h_rows, sorted_data = kmeans_1d_cost_profile(data, 5)
        for k in range(1, 6):
            assert costs[k - 1] == pytest.approx(
                kmeans_1d(data, k).cost, rel=1e-9, abs=1e-9
            )

    def test_early_stop_callback(self, rng):
        data = rng.normal(0, 3, 50)
        costs, _, _ = kmeans_1d_cost_profile(
            data, 40, stop=lambda c: c.size >= 4
        )
        assert costs.size == 4

    def test_clustering_for_k_consistent(self, rng):
        data = rng.normal(0, 3, 60)
        costs, h_rows, sorted_data = kmeans_1d_cost_profile(data, 6)
        for k in (1, 3, 6):
            direct = kmeans_1d(data, k)
            from_profile = clustering_for_k(sorted_data, h_rows, k)
            assert from_profile.cost == pytest.approx(direct.cost, rel=1e-9, abs=1e-9)

    def test_too_few_layers_rejected(self, rng):
        data = rng.normal(0, 3, 20)
        costs, h_rows, sorted_data = kmeans_1d_cost_profile(data, 2)
        with pytest.raises(ValueError):
            clustering_for_k(sorted_data, h_rows, 5)
