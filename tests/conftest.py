"""Shared fixtures: small, fast synthetic streams for every test module."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def crystal_stream(rng) -> np.ndarray:
    """A (20, 300) stream with discrete levels + small vibration.

    Mimics the Copper-B regime: level structure in space, decorrelated
    vibration in time.
    """
    levels = rng.integers(0, 10, 300) * 1.8
    vibration = rng.normal(0.0, 0.04, (20, 300))
    return (levels[None, :] + vibration).astype(np.float64)


@pytest.fixture
def smooth_stream(rng) -> np.ndarray:
    """A (20, 300) stream that is very smooth in time (Pt/LJ regime)."""
    base = rng.uniform(0.0, 50.0, 300)
    drift = np.cumsum(rng.normal(0.0, 0.005, (20, 300)), axis=0)
    return (base[None, :] + drift).astype(np.float64)


@pytest.fixture
def random_stream(rng) -> np.ndarray:
    """A (20, 300) stream with no structure (protein/solvent regime)."""
    return np.cumsum(rng.normal(0.0, 0.5, (20, 300)), axis=0) + rng.uniform(
        0, 30, 300
    )


@pytest.fixture
def trajectory(rng) -> np.ndarray:
    """A small (12, 150, 3) trajectory for container-level tests."""
    levels = rng.integers(0, 8, (150, 3)) * 2.0
    vib = rng.normal(0.0, 0.03, (12, 150, 3))
    drift = np.cumsum(rng.normal(0.0, 0.002, (12, 1, 3)), axis=0)
    return levels[None, :, :] + vib + drift


def absolute_bound(stream: np.ndarray, epsilon: float = 1e-3) -> float:
    """Value-range-relative bound -> absolute, as the harness does."""
    return float(epsilon) * float(stream.max() - stream.min())
