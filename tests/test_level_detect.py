"""Tests for the sampling-based level detector (Section VI-A)."""

import numpy as np
import pytest

from repro.cluster.level_detect import (
    MAX_CLUSTERS,
    MAX_SAMPLE_POINTS,
    LevelFit,
    detect_levels,
)


class TestCrystalFits:
    def test_clean_levels(self, rng):
        data = np.concatenate(
            [rng.normal(i * 2.5, 0.05, 150) for i in range(12)]
        )
        fit = detect_levels(data, seed=0)
        assert fit.k == 12
        assert fit.lam == pytest.approx(2.5, rel=0.05)
        assert fit.residual < 0.05

    def test_two_levels(self, rng):
        data = np.concatenate(
            [rng.normal(0, 0.02, 300), rng.normal(5, 0.02, 300)]
        )
        fit = detect_levels(data, seed=0)
        assert fit.k == 2
        assert fit.lam == pytest.approx(5.0, rel=0.05)

    def test_level_index_and_value_inverse(self, rng):
        data = np.concatenate(
            [rng.normal(i * 1.8, 0.04, 100) for i in range(8)]
        )
        fit = detect_levels(data, seed=0)
        indices = fit.level_index(data)
        predictions = fit.level_value(indices)
        assert np.max(np.abs(predictions - data)) < 0.5 * fit.lam

    def test_deterministic_given_seed(self, rng):
        data = np.concatenate(
            [rng.normal(i * 2.0, 0.1, 200) for i in range(6)]
        )
        a = detect_levels(data, seed=7)
        b = detect_levels(data, seed=7)
        assert a.k == b.k and a.lam == b.lam and a.mu == b.mu


class TestUnstructuredData:
    def test_uniform_data_single_level(self, rng):
        fit = detect_levels(rng.uniform(0, 10, 4000), seed=0)
        assert fit.k == 1
        assert fit.lam > 0

    def test_gaussian_blob_single_level(self, rng):
        fit = detect_levels(rng.normal(3, 1, 4000), seed=0)
        assert fit.k == 1

    def test_constant_axis(self):
        fit = detect_levels(np.full(500, 4.25), seed=0)
        assert fit.k == 1
        assert fit.mu == pytest.approx(4.25)
        assert fit.lam == 1.0  # placeholder spacing


class TestSamplingBehaviour:
    def test_sample_capped(self, rng):
        # A very large snapshot must not blow up the DP: just verify it
        # completes quickly and correctly despite > MAX_SAMPLE_POINTS data.
        data = np.concatenate(
            [rng.normal(i * 3.0, 0.05, 3000) for i in range(5)]
        )
        assert data.size > MAX_SAMPLE_POINTS
        fit = detect_levels(data, seed=0)
        assert fit.k == 5

    def test_k_respects_cap(self, rng):
        # 200 well-separated levels: cap at MAX_CLUSTERS.
        data = np.concatenate(
            [rng.normal(i * 2.0, 0.01, 20) for i in range(200)]
        )
        fit = detect_levels(data, seed=0)
        assert fit.k <= MAX_CLUSTERS


class TestLevelFitApi:
    def test_is_dataclass_frozen(self):
        fit = LevelFit(lam=1.0, mu=0.0, k=1, centroids=np.zeros(1), residual=0.0)
        with pytest.raises(AttributeError):
            fit.lam = 2.0
