"""Tests for the compression service: HTTP surface, sessions, errors.

Covers the service-boundary contracts:

* one-shot compress/decompress/verify round trips over the wire;
* multi-tenant session isolation — interleaved tenants produce archives
  *byte-identical* to their serial single-tenant equivalents, and their
  telemetry never cross-talks;
* lifecycle edges — idle expiry after a client disconnect leaves a
  salvage-readable spool file; graceful shutdown seals every live
  session into a ``verify``-clean archive;
* backpressure — over-capacity requests get structured 429s with
  ``Retry-After``, draining servers answer 503;
* the structured error contract — stable ``{code, message, detail}``
  bodies, with the CLI's ``error: [<code>]`` lines using the same code
  strings (one vocabulary across both surfaces).

Everything runs the real server on an ephemeral port through the real
client — no mocked transport.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.cli import main
from repro.exceptions import (
    CompressionError,
    ContainerFormatError,
    DecompressionError,
    ReproError,
)
from repro.io.container import verify_container
from repro.service import (
    CompressionService,
    ServiceClient,
    ServiceConfig,
    error_body,
    error_code,
)
from repro.stream import StreamingReader, StreamingWriter


def _trajectory(seed: int, snapshots: int = 12, atoms: int = 40) -> np.ndarray:
    """A level-structured trajectory the compressor does well on."""
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, 6, (atoms, 3)) * 1.5
    return (levels[None] + rng.normal(0, 0.02, (snapshots, atoms, 3))).astype(
        np.float64
    )


@contextlib.asynccontextmanager
async def running_service(**overrides):
    """A started service on an ephemeral port, shut down afterwards."""
    config = ServiceConfig(port=0, **overrides)
    service = CompressionService(config)
    await service.start()
    try:
        yield service
    finally:
        if not service._shutting_down:
            await service.shutdown()


def run(coro):
    return asyncio.run(coro)


class TestOneShotEndpoints:
    def test_compress_decompress_verify_round_trip(self):
        traj = _trajectory(0)

        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    resp = await client.post_array(
                        "/v1/compress?error_bound=0.001&buffer_size=4", traj
                    )
                    assert resp.status == 200
                    blob = resp.body
                    verify = await client.request(
                        "POST", "/v1/verify", {}, blob
                    )
                    assert verify.status == 200
                    assert verify.json()["intact"] is True
                    restored = await client.request(
                        "POST", "/v1/decompress", {}, blob
                    )
                    assert restored.status == 200
                    shape = tuple(
                        int(d)
                        for d in restored.headers["x-mdz-shape"].split(",")
                    )
                    dtype = restored.headers["x-mdz-dtype"]
                    return np.frombuffer(
                        restored.body, dtype=dtype
                    ).reshape(shape)

        restored = run(main())
        bound = 1e-3 * float(traj.max() - traj.min())
        assert restored.shape == traj.shape
        assert np.abs(restored - traj).max() <= bound

    def test_healthz_and_stats(self):
        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    health = await client.get_json("/v1/healthz")
                    stats = await client.get_json("/v1/stats")
                    trace = await client.get_json("/v1/trace")
                    return health.json(), stats.json(), trace.json()

        health, stats, trace = run(main())
        assert health["status"] == "ok"
        assert health["sessions"]["open"] == 0
        assert stats["telemetry"]["counters"]["service.requests"] >= 1
        assert "traceEvents" in trace


class TestSessions:
    def test_session_lifecycle_and_archive(self):
        traj = _trajectory(1)

        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    created = await client.post_json(
                        "/v1/sessions",
                        {"error_bound": 1e-3, "buffer_size": 4},
                    )
                    assert created.status == 201
                    token = created.json()["token"]
                    for snapshot in traj:
                        fed = await client.post_array(
                            f"/v1/sessions/{token}/feed", snapshot
                        )
                        assert fed.status == 200
                    closed = await client.request(
                        "POST", f"/v1/sessions/{token}/close"
                    )
                    assert closed.status == 200
                    archive = await client.request(
                        "GET", f"/v1/sessions/{token}/archive"
                    )
                    assert archive.status == 200
                    tenant_stats = await client.get_json(
                        f"/v1/sessions/{token}/stats"
                    )
                    tenant_trace = await client.get_json(
                        f"/v1/sessions/{token}/trace"
                    )
                    return (
                        closed.json(),
                        archive.body,
                        tenant_stats.json(),
                        tenant_trace.json(),
                    )

        stats, blob, tenant_stats, tenant_trace = run(main())
        # The close body is exactly StreamStats.to_dict() + identifiers.
        from repro.stream.writer import StreamStats

        for key in StreamStats().to_dict():
            assert key in stats, key
        assert stats["snapshots"] == len(traj)
        assert verify_container(blob)["intact"] is True
        restored = StreamingReader(blob).read_all()
        bound = 1e-3 * float(traj[:4].max() - traj[:4].min())
        assert np.abs(restored - traj).max() <= bound
        # Per-tenant telemetry carries the tenant's own stream counters
        # and a Perfetto-loadable span trace.
        counters = tenant_stats["telemetry"]["counters"]
        assert counters["stream.chunks_written"] == stats["chunks"]
        assert any(
            event["ph"] == "X" for event in tenant_trace["traceEvents"]
        )

    def test_batched_feed_matches_single_feeds(self):
        """Request batching: one (T, N, axes) feed == T single feeds."""
        traj = _trajectory(2, snapshots=8)

        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    archives = []
                    for batched in (False, True):
                        created = await client.post_json(
                            "/v1/sessions",
                            {"error_bound": 1e-3, "buffer_size": 4},
                        )
                        token = created.json()["token"]
                        if batched:
                            resp = await client.post_array(
                                f"/v1/sessions/{token}/feed", traj
                            )
                            assert resp.status == 200
                            assert resp.json()["snapshots"] == len(traj)
                        else:
                            for snapshot in traj:
                                await client.post_array(
                                    f"/v1/sessions/{token}/feed", snapshot
                                )
                        await client.request(
                            "POST", f"/v1/sessions/{token}/close"
                        )
                        archive = await client.request(
                            "GET", f"/v1/sessions/{token}/archive"
                        )
                        archives.append(archive.body)
                    return archives

        single, batched = run(main())
        assert single == batched

    def test_concurrent_tenants_byte_identical_to_serial(self):
        """Two interleaved tenants == two serial single-tenant runs."""
        traj_a = _trajectory(10, snapshots=9)
        traj_b = _trajectory(20, snapshots=9) * 2.5

        async def main():
            async with running_service() as svc:
                async def tenant(traj):
                    async with ServiceClient(
                        "127.0.0.1", svc.port
                    ) as client:
                        created = await client.post_json(
                            "/v1/sessions",
                            {"error_bound": 1e-3, "buffer_size": 3},
                        )
                        token = created.json()["token"]
                        for snapshot in traj:
                            resp = await client.post_array(
                                f"/v1/sessions/{token}/feed", snapshot
                            )
                            assert resp.status == 200
                            # Force interleaving between the tenants.
                            await asyncio.sleep(0)
                        await client.request(
                            "POST", f"/v1/sessions/{token}/close"
                        )
                        archive = await client.request(
                            "GET", f"/v1/sessions/{token}/archive"
                        )
                        stats = await client.get_json(
                            f"/v1/sessions/{token}/stats"
                        )
                        return archive.body, stats.json()

                return await asyncio.gather(tenant(traj_a), tenant(traj_b))

        (blob_a, stats_a), (blob_b, stats_b) = run(main())
        import io

        for traj, blob in ((traj_a, blob_a), (traj_b, blob_b)):
            sink = io.BytesIO()
            with StreamingWriter(
                sink, MDZConfig(error_bound=1e-3, buffer_size=3)
            ) as writer:
                writer.feed_many(traj)
            assert blob == sink.getvalue()
        # Telemetry stayed per-tenant: each recorder saw exactly its own
        # chunk count (9 snapshots / 3 per buffer x 3 axes = 9 chunks).
        assert stats_a["telemetry"]["counters"]["stream.chunks_written"] == 9
        assert stats_b["telemetry"]["counters"]["stream.chunks_written"] == 9

    def test_disconnected_session_expires_to_salvageable_file(self):
        traj = _trajectory(3, snapshots=5)

        async def main():
            async with running_service(session_ttl=60.0) as svc:
                client = ServiceClient("127.0.0.1", svc.port)
                created = await client.post_json(
                    "/v1/sessions", {"error_bound": 1e-3, "buffer_size": 2}
                )
                token = created.json()["token"]
                for snapshot in traj:
                    await client.post_array(
                        f"/v1/sessions/{token}/feed", snapshot
                    )
                # The client vanishes without closing the session.
                await client.close()
                session = svc.sessions.get(token)
                session.last_active -= 61.0
                expired = await svc.sessions.expire_idle()
                assert expired == [token]
                async with ServiceClient("127.0.0.1", svc.port) as c2:
                    resp = await c2.post_array(
                        f"/v1/sessions/{token}/feed", traj[0]
                    )
                return session.path, resp.status, resp.json()

        path, status, body = run(main())
        assert status == 410
        assert body["error"]["code"] == "session_gone"
        # The abandoned spool file keeps every committed chunk: 5
        # snapshots at buffer_size=2 -> 2 full buffers (4 snapshots)
        # were fenced in, the 5th was still buffered in memory.
        blob = open(path, "rb").read()
        reader = StreamingReader(blob, salvage=True)
        report = reader.salvage_report()
        assert report.readable_snapshots == 4
        assert report.lost_snapshots == []
        restored = np.concatenate(
            [buf for _, _, buf in reader.iter_salvaged()]
        )
        bound = 1e-3 * float(traj[:2].max() - traj[:2].min())
        assert np.abs(restored - traj[:4]).max() <= bound

    def test_graceful_shutdown_seals_live_sessions(self):
        traj = _trajectory(4, snapshots=5)

        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    created = await client.post_json(
                        "/v1/sessions",
                        {"error_bound": 1e-3, "buffer_size": 2},
                    )
                    token = created.json()["token"]
                    for snapshot in traj:
                        await client.post_array(
                            f"/v1/sessions/{token}/feed", snapshot
                        )
                # Stop the server with the session still open and a
                # partial buffer (the 5th snapshot) unflushed.
                report = await svc.shutdown()
                session = svc.sessions._sessions[token]
                return report, token, session.path

        report, token, path = run(main())
        assert report["finalized"] == [token]
        blob = open(path, "rb").read()
        assert verify_container(blob)["intact"] is True
        restored = StreamingReader(blob).read_all()
        assert restored.shape == traj.shape  # nothing torn, nothing lost

    def test_empty_session_shutdown_aborts_cleanly(self):
        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    created = await client.post_json("/v1/sessions", {})
                    token = created.json()["token"]
                report = await svc.shutdown()
                return report, token

        report, token = run(main())
        assert report["finalized"] == []
        assert report["aborted"] == [token]


class TestMetricsEndpoint:
    def test_exposition_validates_and_quality_survives_retirement(self):
        """`GET /metrics` is parser-clean, labels live sessions, and
        keeps quality counters monotonic after the session closes."""
        traj = _trajectory(2)

        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    created = await client.post_json(
                        "/v1/sessions",
                        {
                            "error_bound": 1e-3,
                            "buffer_size": 4,
                            "audit_interval": 1,
                        },
                    )
                    assert created.status == 201
                    token = created.json()["token"]
                    fed = await client.post_array(
                        f"/v1/sessions/{token}/feed", traj
                    )
                    assert fed.status == 200
                    live = await client.request("GET", "/metrics")
                    closed = await client.request(
                        "POST", f"/v1/sessions/{token}/close"
                    )
                    assert closed.status == 200
                    retired = await client.request("GET", "/metrics")
                    return token, live, retired

        token, live, retired = run(main())
        from repro.telemetry import prom

        assert live.status == 200
        assert live.headers["content-type"].startswith(
            "text/plain; version=0.0.4"
        )
        families = prom.validate(live.body.decode("utf-8"))
        types = {entry["type"] for entry in families.values()}
        assert {"counter", "gauge", "histogram"} <= types
        live_tokens = {
            labels["session"]
            for entry in families.values()
            for (_, labels, _) in entry["samples"]
            if "session" in labels
        }
        assert live_tokens == {token}
        # After close the tenant's series leave the exposition, but its
        # quality counters fold into the unlabeled server families —
        # bound-violation alerts must see a monotonic counter.
        after = prom.validate(retired.body.decode("utf-8"))
        audits = [
            value
            for (_, labels, value) in
            after["mdz_quality_audits_total"]["samples"]
            if "session" not in labels
        ]
        # 12 snapshots / buffer_size 4 = 3 buffers, 3 axes, interval 1.
        assert sum(audits) == 9


class TestBackpressure:
    def test_over_capacity_yields_structured_429(self):
        async def main():
            async with running_service(max_pending=1) as svc:
                release = asyncio.Event()
                original = svc._compress_sync

                def slow_compress(config, data):
                    # Runs on a worker thread; hold the admission slot
                    # until the test has observed the rejection.
                    asyncio.run_coroutine_threadsafe(
                        release.wait(), loop
                    ).result()
                    return original(config, data)

                loop = asyncio.get_running_loop()
                svc._compress_sync = slow_compress
                traj = _trajectory(5, snapshots=4, atoms=10)
                async with ServiceClient("127.0.0.1", svc.port) as c1:
                    first = asyncio.create_task(
                        c1.post_array(
                            "/v1/compress?buffer_size=2", traj
                        )
                    )
                    # Wait until the first request holds the slot.
                    while svc._inflight == 0:
                        await asyncio.sleep(0.01)
                    async with ServiceClient(
                        "127.0.0.1", svc.port
                    ) as c2:
                        rejected = await c2.post_array(
                            "/v1/compress?buffer_size=2", traj
                        )
                    release.set()
                    accepted = await first
                    return accepted, rejected

        accepted, rejected = run(main())
        assert accepted.status == 200
        assert rejected.status == 429
        assert rejected.json()["error"]["code"] == "over_capacity"
        assert int(rejected.headers["retry-after"]) >= 1

    def test_draining_server_answers_503(self):
        async def main():
            async with running_service() as svc:
                svc._shutting_down = True
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    compress = await client.post_array(
                        "/v1/compress", _trajectory(6, snapshots=2, atoms=5)
                    )
                    svc._shutting_down = False  # let teardown run clean
                    return compress

        resp = run(main())
        assert resp.status == 503
        assert resp.json()["error"]["code"] == "shutting_down"
        assert "retry-after" in resp.headers


class TestStructuredErrors:
    def _one(self, coro_factory):
        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    return await coro_factory(client)

        return run(main())

    def test_non_finite_input_is_structured_400(self):
        bad = np.array([[np.nan, 1.0], [2.0, 3.0]])
        resp = self._one(
            lambda c: c.post_array("/v1/compress", bad[None])
        )
        assert resp.status == 400
        body = resp.json()["error"]
        assert body["code"] == "compression_failed"
        assert "non-finite" in body["message"]

    def test_non_finite_feed_does_not_kill_the_session(self):
        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    created = await client.post_json(
                        "/v1/sessions",
                        {"error_bound": 1e-3, "buffer_size": 2},
                    )
                    token = created.json()["token"]
                    good = _trajectory(7, snapshots=4)
                    await client.post_array(
                        f"/v1/sessions/{token}/feed", good[0]
                    )
                    bad = good[1].copy()
                    bad[0, 0] = np.inf
                    rejected = await client.post_array(
                        f"/v1/sessions/{token}/feed", bad
                    )
                    for snapshot in good[1:]:
                        ok = await client.post_array(
                            f"/v1/sessions/{token}/feed", snapshot
                        )
                        assert ok.status == 200
                    closed = await client.request(
                        "POST", f"/v1/sessions/{token}/close"
                    )
                    return rejected, closed

        rejected, closed = run(main())
        assert rejected.status == 400
        assert rejected.json()["error"]["code"] == "compression_failed"
        assert closed.status == 200
        assert closed.json()["snapshots"] == 4

    def test_framing_errors_have_specific_codes(self):
        cases = self._one_framing_cases()
        assert cases["missing"] == (400, "missing_header")
        assert cases["dtype"] == (400, "bad_dtype")
        assert cases["mismatch"] == (400, "payload_size_mismatch")
        assert cases["config"] == (400, "bad_config_key")

    def _one_framing_cases(self):
        async def main():
            out = {}
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    resp = await client.request(
                        "POST", "/v1/compress", {}, b"\x00" * 8
                    )
                    out["missing"] = (
                        resp.status, resp.json()["error"]["code"]
                    )
                    resp = await client.request(
                        "POST",
                        "/v1/compress",
                        {"X-MDZ-Dtype": "object", "X-MDZ-Shape": "2,2"},
                        b"\x00" * 8,
                    )
                    out["dtype"] = (resp.status, resp.json()["error"]["code"])
                    resp = await client.request(
                        "POST",
                        "/v1/compress",
                        {"X-MDZ-Dtype": "float64", "X-MDZ-Shape": "4,4"},
                        b"\x00" * 8,
                    )
                    out["mismatch"] = (
                        resp.status, resp.json()["error"]["code"]
                    )
                    resp = await client.post_json(
                        "/v1/sessions", {"bogus_knob": 1}
                    )
                    out["config"] = (
                        resp.status, resp.json()["error"]["code"]
                    )
            return out

        return run(main())

    def test_malformed_container_maps_to_container_code(self):
        resp = self._one(
            lambda c: c.request("POST", "/v1/verify", {}, b"not a container")
        )
        assert resp.status == 400
        assert resp.json()["error"]["code"] == "container_malformed"

    def test_unknown_routes_and_methods(self):
        async def main():
            async with running_service() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    missing = await client.get_json("/v1/nope")
                    wrong = await client.request("DELETE", "/v1/compress")
                    return missing, wrong

        missing, wrong = run(main())
        assert missing.status == 404
        assert missing.json()["error"]["code"] == "not_found"
        assert wrong.status == 405
        assert wrong.json()["error"]["code"] == "method_not_allowed"

    def test_cli_and_http_agree_on_code_strings(self, tmp_path, capsys):
        """The CLI's bracketed codes are the HTTP bodies' codes."""
        # HTTP side: the mapping function the service serializes with.
        for exc, expected in (
            (CompressionError("x"), "compression_failed"),
            (DecompressionError("x"), "decompression_failed"),
            (ContainerFormatError("x"), "container_malformed"),
            (ReproError("x"), "repro_error"),
            (FileNotFoundError("x"), "io_error"),
        ):
            assert error_code(exc) == expected
            assert error_body(exc)["error"]["code"] == expected
        # CLI side: a run that raises CompressionError prints the same
        # code string the HTTP surface would serialize.
        bad = tmp_path / "bad.npy"
        np.save(bad, np.array([[[np.nan, 1.0, 2.0]]]))
        assert main(["compress", str(bad), str(tmp_path / "out.mdz")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "[compression_failed]" in err
        # And a missing input maps to io_error on both surfaces.
        assert main(["info", str(tmp_path / "gone.mdz")]) == 1
        err = capsys.readouterr().err
        assert "[io_error]" in err


class TestPayloadLimits:
    def test_oversized_body_is_rejected_with_413(self):
        async def main():
            async with running_service(max_body=1024) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    return await client.post_array(
                        "/v1/compress", np.zeros((4, 64, 3))
                    )

        resp = run(main())
        assert resp.status == 413
        assert resp.json()["error"]["code"] == "payload_too_large"

    def test_malformed_http_gets_structured_400(self):
        async def main():
            async with running_service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(b"THIS IS NOT HTTP\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw

        raw = run(main())
        assert b"400" in raw.split(b"\r\n", 1)[0]
        body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
        assert body["error"]["code"] == "protocol_error"
