"""Tests for the dump format and the streaming batch harness."""

import numpy as np
import pytest

from repro.io.batch import run_stream, stream_error_bound
from repro.io.dump import (
    DumpFormatError,
    DumpFrame,
    frames_to_array,
    read_dump,
    write_dump,
)


class TestDumpFormat:
    def make_frames(self, rng, n_frames=3, n_atoms=20):
        box = np.array([[0.0, 10.0], [0.0, 11.0], [0.0, 12.0]])
        return [
            DumpFrame(
                timestep=100 * i,
                box=box,
                positions=rng.uniform(0, 10, (n_atoms, 3)),
            )
            for i in range(n_frames)
        ]

    def test_round_trip(self, rng, tmp_path):
        frames = self.make_frames(rng)
        path = tmp_path / "traj.dump"
        assert write_dump(path, frames) == 3
        back = list(read_dump(path))
        assert [f.timestep for f in back] == [0, 100, 200]
        for a, b in zip(frames, back):
            assert np.allclose(a.positions, b.positions, atol=1e-6)
            assert np.allclose(a.box, b.box)

    def test_frames_to_array(self, rng, tmp_path):
        frames = self.make_frames(rng, n_frames=4)
        arr = frames_to_array(frames)
        assert arr.shape == (4, 20, 3)

    def test_empty_frames_rejected(self):
        with pytest.raises(DumpFormatError):
            frames_to_array([])

    def test_corrupt_file_detected(self, tmp_path):
        path = tmp_path / "bad.dump"
        path.write_text("ITEM: NOT A DUMP\n42\n")
        with pytest.raises(DumpFormatError):
            next(read_dump(path))

    def test_truncated_atoms_detected(self, rng, tmp_path):
        frames = self.make_frames(rng, n_frames=1)
        path = tmp_path / "trunc.dump"
        write_dump(path, frames)
        text = path.read_text().splitlines()[:-5]
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(DumpFormatError):
            list(read_dump(path))


class TestStreamHarness:
    def test_error_bound_resolution(self, crystal_stream):
        bound = stream_error_bound(crystal_stream, 1e-3)
        expected = 1e-3 * (crystal_stream.max() - crystal_stream.min())
        assert bound == pytest.approx(expected)

    def test_constant_stream_bound(self):
        assert stream_error_bound(np.ones((3, 4)), 1e-3) == 1e-3

    def test_run_stream_result_fields(self, crystal_stream):
        decoded = run_stream("sz2", crystal_stream, 1e-3, 7, decompress=True)
        result = decoded.result
        assert result.raw_bytes == crystal_stream.size * 8  # float64 input
        assert result.compressed_bytes == sum(decoded.per_batch_sizes)
        assert result.compress_seconds > 0
        assert result.decompress_seconds > 0
        assert decoded.reconstruction.shape == crystal_stream.shape

    def test_float32_raw_accounting(self, crystal_stream):
        stream = crystal_stream.astype(np.float32)
        decoded = run_stream("sz2", stream, 1e-3, 7)
        assert decoded.result.raw_bytes == stream.size * 4

    def test_lossless_needs_no_epsilon(self, crystal_stream):
        decoded = run_stream(
            "zlib", crystal_stream.astype(np.float32), None, 10,
            decompress=True,
        )
        assert np.array_equal(
            decoded.reconstruction,
            crystal_stream.astype(np.float32).astype(np.float64),
        )

    def test_lossy_requires_epsilon(self, crystal_stream):
        with pytest.raises(ValueError, match="error bound"):
            run_stream("sz2", crystal_stream, None, 10)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            run_stream("sz2", np.zeros((2, 3, 4)), 1e-3, 10)

    def test_batches_cover_stream(self, crystal_stream):
        decoded = run_stream("mdz", crystal_stream, 1e-3, 6, decompress=True)
        assert len(decoded.per_batch_sizes) == 4  # 20 snapshots / 6
        eb = stream_error_bound(crystal_stream, 1e-3)
        err = np.abs(decoded.reconstruction - crystal_stream).max()
        assert err <= eb * (1 + 1e-9)
