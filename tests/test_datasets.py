"""Tests for the dataset registry and the Table I analogs."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    histogram_peaks,
    temporal_smoothness,
)
from repro.datasets import DATASET_SPECS, dataset_names, load_dataset
from repro.datasets.spec import HACC_DATASETS, MD_DATASETS


class TestSpecs:
    def test_all_table_one_datasets_present(self):
        for name in MD_DATASETS:
            assert name in DATASET_SPECS

    def test_hacc_datasets_present(self):
        for name in HACC_DATASETS:
            assert name in DATASET_SPECS

    def test_paper_sizes_recorded(self):
        spec = DATASET_SPECS["copper-b"]
        assert spec.paper_atoms == 3137
        assert spec.paper_snapshots == 5423
        assert DATASET_SPECS["lj"].paper_atoms == 6_912_000

    def test_small_datasets_keep_paper_atom_count(self):
        for name in ("copper-b", "helium-b", "adk", "ifabp"):
            spec = DATASET_SPECS[name]
            assert spec.atoms == spec.paper_atoms

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("water")


class TestLoading:
    @pytest.mark.parametrize("name", ["copper-b", "helium-b", "adk"])
    def test_shapes_match_spec(self, name):
        ds = load_dataset(name)
        spec = DATASET_SPECS[name]
        assert ds.positions.shape == (spec.snapshots, spec.atoms, 3)
        assert ds.positions.dtype == np.float32

    def test_truncation(self):
        ds = load_dataset("copper-b", snapshots=25)
        assert ds.snapshots == 25

    def test_deterministic_across_loads(self):
        a = load_dataset("helium-b").positions
        b = load_dataset("helium-b").positions
        assert np.array_equal(a, b)

    def test_axis_accessor(self):
        ds = load_dataset("copper-b", snapshots=10)
        assert np.array_equal(ds.axis("x"), ds.positions[:, :, 0])
        assert np.array_equal(ds.axis(2), ds.positions[:, :, 2])
        assert ds.value_range("x") > 0

    def test_names_listing(self):
        names = dataset_names()
        assert names.index("copper-a") < names.index("hacc-1")
        assert "hacc-1" not in dataset_names(include_hacc=False)


class TestCharacterization:
    """The generated data must exhibit the Section V features."""

    def test_crystals_are_multi_peak(self):
        for name in ("copper-b", "helium-b"):
            ds = load_dataset(name, snapshots=2)
            peaks = histogram_peaks(ds.axis("x")[0])
            assert peaks >= 5, f"{name} lost its level structure"

    def test_proteins_are_not_multi_peak(self):
        ds = load_dataset("adk", snapshots=2)
        assert histogram_peaks(ds.axis("x")[0]) <= 4

    def test_temporal_classes_match_spec(self):
        for name in MD_DATASETS:
            ds = load_dataset(name)
            smoothness = temporal_smoothness(ds.axis("x").astype(np.float64))
            expected = DATASET_SPECS[name].temporal_class == "smooth"
            assert smoothness.smooth == expected, (
                f"{name}: rel_step={smoothness.rel_step:.2e}, "
                f"expected smooth={expected}"
            )

    def test_pt_is_stairwise_in_z(self):
        ds = load_dataset("pt", snapshots=2)
        z = np.sort(ds.axis("z")[0].astype(np.float64))
        # Many atoms share each surface layer: strong plateaus in sorted z.
        assert histogram_peaks(z, prominence=0.05) >= 8

    def test_copper_b_regime_change_in_z(self):
        """After snapshot 400 the z axis drifts (Figure 10's switch)."""
        ds = load_dataset("copper-b")
        z = ds.axis("z").astype(np.float64)
        early = np.abs(z[300] - z[0]).mean()
        late = np.abs(z[-1] - z[0]).mean()
        assert late > 5 * early
