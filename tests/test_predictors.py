"""Tests for the grid-anchored SZ predictors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.predictors import (
    lorenzo_1d_codes,
    lorenzo_1d_reconstruct,
    lorenzo_2d_codes,
    lorenzo_2d_reconstruct,
    reference_codes,
    reference_reconstruct,
    timewise_codes,
    timewise_reconstruct,
)
from repro.sz.quantizer import LinearQuantizer

EB = 1e-3
TOL = EB * (1 + 1e-9) + 1e-12


@pytest.fixture
def quantizer():
    return LinearQuantizer(EB)


class TestLorenzo1D:
    def test_smooth_data_bound(self, quantizer, rng):
        data = np.cumsum(rng.normal(0, 0.002, 4000)) + 7.0
        block = lorenzo_1d_codes(data, quantizer, anchor=data[0])
        recon = lorenzo_1d_reconstruct(block, quantizer, anchor=data[0])
        assert np.max(np.abs(recon - data)) <= TOL

    def test_jumpy_data_uses_side_channel(self, quantizer, rng):
        data = np.cumsum(rng.normal(0, 0.002, 1000))
        data[::50] += 10.0  # far outside the quantization scale
        block = lorenzo_1d_codes(data, quantizer, anchor=data[0])
        assert block.n_out_of_scope > 0
        recon = lorenzo_1d_reconstruct(block, quantizer, anchor=data[0])
        assert np.max(np.abs(recon - data)) <= TOL

    def test_matches_sequential_reference(self, quantizer, rng):
        """The vectorized codes equal a naive sequential encoder's."""
        data = np.cumsum(rng.normal(0, 0.001, 200)) + 3.0
        block = lorenzo_1d_codes(data, quantizer, anchor=data[0])
        # naive sequential: predict from previous reconstruction
        w = quantizer.bin_width
        prev = data[0]
        seq_codes = [0]
        anchor = data[0]
        prev = anchor + w * round((data[0] - anchor) / w)
        for d in data[1:]:
            code = round((d - prev) / w)
            seq_codes.append(code)
            prev = prev + code * w
        assert np.array_equal(block.codes, seq_codes)

    def test_constant_data_all_zero_codes(self, quantizer):
        data = np.full(100, 2.5)
        block = lorenzo_1d_codes(data, quantizer, anchor=2.5)
        assert not block.codes.any()


class TestLorenzo2D:
    def test_bound_on_correlated_plane(self, quantizer, rng):
        plane = np.add.outer(
            np.cumsum(rng.normal(0, 0.02, 30)),
            np.cumsum(rng.normal(0, 0.02, 80)),
        )
        block = lorenzo_2d_codes(plane, quantizer, anchor=0.0)
        recon = lorenzo_2d_reconstruct(block, quantizer, anchor=0.0)
        assert np.max(np.abs(recon - plane)) <= TOL

    def test_out_of_scope_rectangle_fixes(self, quantizer, rng):
        plane = rng.normal(0, 0.001, (20, 20)).cumsum(axis=0)
        plane[5, 5] += 50.0
        plane[5, 6] -= 30.0
        plane[12, 3] += 40.0
        block = lorenzo_2d_codes(plane, quantizer, anchor=0.0)
        assert block.n_out_of_scope >= 3
        recon = lorenzo_2d_reconstruct(block, quantizer, anchor=0.0)
        assert np.max(np.abs(recon - plane)) <= TOL

    def test_requires_2d(self, quantizer):
        with pytest.raises(ValueError):
            lorenzo_2d_codes(np.zeros(5), quantizer, 0.0)


class TestTimewise:
    def test_bound(self, quantizer, rng):
        base = rng.normal(0, 2, 150)
        batch = base[None, :] + np.cumsum(
            rng.normal(0, 0.001, (12, 150)), axis=0
        )
        block = timewise_codes(batch, quantizer, base)
        recon = timewise_reconstruct(block, quantizer, base)
        assert np.max(np.abs(recon - batch)) <= TOL

    def test_resets_in_chains(self, quantizer, rng):
        base = rng.normal(0, 1, 40)
        batch = base[None, :] + rng.normal(0, 0.0005, (10, 40))
        batch[3, 7] += 25.0
        batch[8, 7] -= 12.0  # second reset in the same atom's chain
        block = timewise_codes(batch, quantizer, base)
        assert block.order == "F"
        recon = timewise_reconstruct(block, quantizer, base)
        assert np.max(np.abs(recon - batch)) <= TOL

    def test_requires_2d(self, quantizer):
        with pytest.raises(ValueError):
            timewise_codes(np.zeros(5), quantizer, np.zeros(5))


class TestReference:
    def test_bound(self, quantizer, rng):
        ref = rng.normal(0, 3, 500)
        snap = ref + rng.normal(0, 0.0008, 500)
        block = reference_codes(snap, quantizer, ref)
        recon = reference_reconstruct(block, quantizer, ref)
        assert np.max(np.abs(recon - snap)) <= TOL

    def test_far_values_via_side_channel(self, quantizer, rng):
        ref = np.zeros(50)
        snap = rng.normal(0, 0.0005, 50)
        snap[10] = 99.0
        block = reference_codes(snap, quantizer, ref)
        assert block.n_out_of_scope == 1
        recon = reference_reconstruct(block, quantizer, ref)
        assert np.max(np.abs(recon - snap)) <= TOL


class TestPropertyBounds:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_all_predictors_respect_bound(self, data):
        seed = data.draw(st.integers(0, 2**31))
        eb = data.draw(st.sampled_from([1e-4, 1e-3, 1e-2, 0.5]))
        scale = data.draw(st.sampled_from([16, 1024]))
        rng = np.random.default_rng(seed)
        q = LinearQuantizer(eb, scale=scale)
        t, n = 6, 30
        batch = rng.normal(0, 1, (t, n)) * data.draw(
            st.sampled_from([0.01, 1.0, 100.0])
        )
        tol = eb * (1 + 1e-9) + 1e-9
        b1 = lorenzo_1d_codes(batch[0], q, anchor=batch[0, 0])
        assert (
            np.abs(lorenzo_1d_reconstruct(b1, q, batch[0, 0]) - batch[0]).max()
            <= tol
        )
        b2 = lorenzo_2d_codes(batch, q, anchor=0.0)
        assert np.abs(lorenzo_2d_reconstruct(b2, q, 0.0) - batch).max() <= tol
        base = batch[0]
        b3 = timewise_codes(batch[1:], q, base)
        assert (
            np.abs(timewise_reconstruct(b3, q, base) - batch[1:]).max() <= tol
        )
        b4 = reference_codes(batch[1], q, base)
        assert (
            np.abs(reference_reconstruct(b4, q, base) - batch[1]).max() <= tol
        )
