"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.huffman import (
    MAX_CODE_LENGTH,
    HuffmanCodec,
    canonical_codes,
    code_lengths,
)


class TestCodeLengths:
    def test_uniform_counts_balanced(self):
        lengths = code_lengths(np.full(8, 10))
        assert (lengths == 3).all()

    def test_skewed_counts_short_code_for_frequent(self):
        lengths = code_lengths(np.array([1000, 10, 10, 10]))
        assert lengths[0] == lengths.min()

    def test_single_symbol(self):
        assert code_lengths(np.array([42]))[0] == 1

    def test_length_limit_enforced(self):
        # Fibonacci-like counts force a degenerate deep tree.
        counts = np.array([1] + [int(1.6**k) + 1 for k in range(40)])
        lengths = code_lengths(counts)
        assert lengths.max() <= MAX_CODE_LENGTH

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            code_lengths(np.array([3, 0, 1]))

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 1000, 50)
        lengths = code_lengths(counts)
        assert np.sum(2.0 ** -lengths) <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = code_lengths(np.array([50, 20, 20, 5, 3, 2]))
        codes = canonical_codes(lengths)
        entries = sorted(
            (f"{int(c):0{int(n)}b}") for c, n in zip(codes, lengths)
        )
        for a, b in zip(entries, entries[1:]):
            assert not b.startswith(a), f"{a} prefixes {b}"

    def test_deterministic_from_lengths(self):
        lengths = np.array([2, 2, 2, 3, 3])
        assert np.array_equal(canonical_codes(lengths), canonical_codes(lengths))


class TestHuffmanRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.zeros(1000, dtype=np.int64),
            np.array([5]),
            np.arange(-300, 300),
            np.random.default_rng(1).integers(-4, 4, 20000),
            np.random.default_rng(2).integers(0, 30000, 3000),
        ],
    )
    def test_round_trip(self, arr):
        blob = HuffmanCodec.encode(arr)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    def test_empty_array(self):
        blob = HuffmanCodec.encode(np.empty(0, dtype=np.int64))
        assert HuffmanCodec.decode(blob).size == 0

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            HuffmanCodec.encode(np.ones(4, dtype=np.float64))

    def test_compresses_skewed_data(self):
        rng = np.random.default_rng(3)
        # 95% zeros: should approach ~0.3-0.5 bits/symbol before framing
        arr = np.where(rng.random(50000) < 0.95, 0, rng.integers(-5, 5, 50000))
        blob = HuffmanCodec.encode(arr)
        assert len(blob) < 50000 * 0.25  # < 2 bits/symbol incl. overhead

    def test_shape_is_flattened(self):
        arr = np.arange(12).reshape(3, 4)
        out = HuffmanCodec.decode(HuffmanCodec.encode(arr))
        assert np.array_equal(out, arr.ravel())

    @given(
        st.lists(st.integers(-(2**31), 2**31), min_size=0, max_size=300)
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(HuffmanCodec.decode(HuffmanCodec.encode(arr)), arr)
