"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompressionError
from repro.sz.huffman import (
    MAX_CODE_LENGTH,
    HuffmanCodec,
    canonical_codes,
    code_lengths,
)


class TestCodeLengths:
    def test_uniform_counts_balanced(self):
        lengths = code_lengths(np.full(8, 10))
        assert (lengths == 3).all()

    def test_skewed_counts_short_code_for_frequent(self):
        lengths = code_lengths(np.array([1000, 10, 10, 10]))
        assert lengths[0] == lengths.min()

    def test_single_symbol(self):
        assert code_lengths(np.array([42]))[0] == 1

    def test_length_limit_enforced(self):
        # Fibonacci-like counts force a degenerate deep tree.
        counts = np.array([1] + [int(1.6**k) + 1 for k in range(40)])
        lengths = code_lengths(counts)
        assert lengths.max() <= MAX_CODE_LENGTH

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            code_lengths(np.array([3, 0, 1]))

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 1000, 50)
        lengths = code_lengths(counts)
        assert np.sum(2.0 ** -lengths) <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = code_lengths(np.array([50, 20, 20, 5, 3, 2]))
        codes = canonical_codes(lengths)
        entries = sorted(
            (f"{int(c):0{int(n)}b}") for c, n in zip(codes, lengths)
        )
        for a, b in zip(entries, entries[1:]):
            assert not b.startswith(a), f"{a} prefixes {b}"

    def test_deterministic_from_lengths(self):
        lengths = np.array([2, 2, 2, 3, 3])
        assert np.array_equal(canonical_codes(lengths), canonical_codes(lengths))


class TestHuffmanRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.zeros(1000, dtype=np.int64),
            np.array([5]),
            np.arange(-300, 300),
            np.random.default_rng(1).integers(-4, 4, 20000),
            np.random.default_rng(2).integers(0, 30000, 3000),
        ],
    )
    def test_round_trip(self, arr):
        blob = HuffmanCodec.encode(arr)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    def test_empty_array(self):
        blob = HuffmanCodec.encode(np.empty(0, dtype=np.int64))
        assert HuffmanCodec.decode(blob).size == 0

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            HuffmanCodec.encode(np.ones(4, dtype=np.float64))

    def test_compresses_skewed_data(self):
        rng = np.random.default_rng(3)
        # 95% zeros: should approach ~0.3-0.5 bits/symbol before framing
        arr = np.where(rng.random(50000) < 0.95, 0, rng.integers(-5, 5, 50000))
        blob = HuffmanCodec.encode(arr)
        assert len(blob) < 50000 * 0.25  # < 2 bits/symbol incl. overhead

    def test_shape_is_flattened(self):
        arr = np.arange(12).reshape(3, 4)
        out = HuffmanCodec.decode(HuffmanCodec.encode(arr))
        assert np.array_equal(out, arr.ravel())

    @given(
        st.lists(st.integers(-(2**31), 2**31), min_size=0, max_size=300)
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(HuffmanCodec.decode(HuffmanCodec.encode(arr)), arr)


def _legacy_v1_blob(arr: np.ndarray) -> bytes:
    """Build a pre-"dt" v1 blob the way the original encoder serialized it."""
    from repro.serde import BlobWriter
    from repro.sz.bitio import pack_codes
    from repro.sz.huffman import _compact_symbols

    writer = BlobWriter()
    flat = arr.astype(np.int64).ravel()
    if flat.size == 0:
        writer.write_json({"n": 0})
        return writer.getvalue()
    symbols, inverse = np.unique(flat, return_inverse=True)
    counts = np.bincount(inverse, minlength=symbols.size)
    lengths = code_lengths(counts)
    codes = canonical_codes(lengths)
    writer.write_json({"n": int(flat.size), "dense": None})
    writer.write_array(_compact_symbols(symbols))
    writer.write_array(lengths.astype(np.uint8))
    writer.write_bytes(pack_codes(codes[inverse], lengths[inverse]))
    return writer.getvalue()


def _deep_codebook(depth: int):
    """A complete canonical codebook with max code length ``depth``:
    lengths [1, 2, ..., depth-1, depth, depth] satisfy Kraft exactly."""
    lengths = np.array(list(range(1, depth)) + [depth, depth], dtype=np.int64)
    symbols = np.arange(lengths.size, dtype=np.int64)
    return symbols, lengths


def _hand_rolled_blob(
    symbols, lengths, payload_syms, version=1, n_streams=None, sizes=None,
    payload=None,
):
    """Assemble a Huffman blob from explicit parts (for corruption tests)."""
    from repro.serde import BlobWriter
    from repro.sz.bitio import pack_codes
    from repro.sz.huffman import _compact_symbols, _compact_unsigned, _h2_payload

    codes = canonical_codes(lengths)
    lut = {int(s): i for i, s in enumerate(symbols)}
    idx = np.array([lut[int(v)] for v in payload_syms], dtype=np.int64)
    writer = BlobWriter()
    meta = {"n": int(len(payload_syms)), "dense": None, "dt": "<i8"}
    if version == 2:
        meta["v"] = 2
        meta["ns"] = int(n_streams)
    writer.write_json(meta)
    writer.write_array(_compact_symbols(np.asarray(symbols, dtype=np.int64)))
    writer.write_array(np.asarray(lengths).astype(np.uint8))
    if version == 2:
        if payload is None:
            payload, auto_sizes = _h2_payload(codes[idx], lengths[idx], n_streams)
            if sizes is None:
                sizes = auto_sizes
        writer.write_array(_compact_unsigned(np.asarray(sizes)))
        writer.write_bytes(payload)
    else:
        if payload is None:
            payload = pack_codes(codes[idx], lengths[idx])
        writer.write_bytes(payload)
    return writer.getvalue()


class TestH2RoundTrip:
    DTYPES = (np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint16)

    @pytest.mark.parametrize("streams", [2, 3, 8, 17, 64, 500])
    def test_forced_streams_round_trip(self, streams):
        rng = np.random.default_rng(streams)
        arr = rng.integers(-50, 50, 4321)
        blob = HuffmanCodec.encode(arr, streams=streams)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_dtype_preserved(self, dtype):
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 100, 9001).astype(dtype)
        out = HuffmanCodec.decode(HuffmanCodec.encode(arr, streams=16))
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, arr)

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 15, 16, 17, 4095, 4096, 4097])
    def test_trailing_partial_rounds(self, n):
        # Every remainder class around the stream count boundary.
        rng = np.random.default_rng(n)
        arr = rng.integers(0, 9, n)
        blob = HuffmanCodec.encode(arr, streams=8)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    def test_empty_with_forced_streams(self):
        blob = HuffmanCodec.encode(np.empty(0, dtype=np.int32), streams=8)
        out = HuffmanCodec.decode(blob)
        assert out.size == 0 and out.dtype == np.int32

    def test_single_symbol_alphabet(self):
        arr = np.full(10007, -3, dtype=np.int64)
        blob = HuffmanCodec.encode(arr, streams=32)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    def test_auto_path_small_stays_legacy(self):
        arr = np.arange(100)
        blob = HuffmanCodec.encode(arr)
        assert blob == HuffmanCodec.encode(arr, streams=1)

    def test_auto_path_large_uses_h2(self):
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 64, 50000)
        blob = HuffmanCodec.encode(arr)
        assert blob != HuffmanCodec.encode(arr, streams=1)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    def test_dense_codebook_h2(self):
        rng = np.random.default_rng(13)
        arr = rng.integers(0, 1024, 20000)
        blob = HuffmanCodec.encode(arr, alphabet_hint=1025, streams=64)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)

    @given(
        st.lists(st.integers(-(2**31), 2**31), min_size=0, max_size=300),
        st.integers(2, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip_h2(self, values, streams):
        arr = np.array(values, dtype=np.int64)
        blob = HuffmanCodec.encode(arr, streams=streams)
        assert np.array_equal(HuffmanCodec.decode(blob), arr)


class TestBlobCompat:
    def test_v1_pre_dt_blob_decodes_as_int64(self):
        rng = np.random.default_rng(5)
        arr = rng.integers(-20, 20, 5000)
        out = HuffmanCodec.decode(_legacy_v1_blob(arr))
        assert out.dtype == np.int64
        assert np.array_equal(out, arr)

    def test_v1_pre_dt_empty(self):
        out = HuffmanCodec.decode(_legacy_v1_blob(np.empty(0, dtype=np.int64)))
        assert out.size == 0 and out.dtype == np.int64

    def test_all_formats_decode_identically(self):
        rng = np.random.default_rng(6)
        arr = rng.geometric(0.2, 30000).astype(np.int64)
        v1 = HuffmanCodec.decode(_legacy_v1_blob(arr))
        single = HuffmanCodec.decode(HuffmanCodec.encode(arr, streams=1))
        h2 = HuffmanCodec.decode(HuffmanCodec.encode(arr, streams=128))
        assert np.array_equal(v1, arr)
        assert np.array_equal(single, arr)
        assert np.array_equal(h2, arr)

    def test_streams_1_matches_historical_bytes(self):
        # The legacy single-stream format is frozen: no "v"/"ns" keys, same
        # section bytes as the pre-H2 encoder produced.
        arr = np.arange(-100, 100, dtype=np.int64)
        blob = HuffmanCodec.encode(arr, streams=1)
        from repro.serde import BlobReader

        meta = BlobReader(blob).read_json()
        assert "v" not in meta and "ns" not in meta


class TestH2Corruption:
    def _arr(self):
        return np.random.default_rng(9).integers(0, 30, 10000)

    def test_truncated_payload_raises(self):
        symbols, lengths = np.arange(4), np.array([2, 2, 2, 2])
        blob = _hand_rolled_blob(
            symbols, lengths, self._arr() % 4, version=2, n_streams=8
        )
        from repro.serde import BlobReader
        from repro.sz.huffman import _h2_payload

        codes = canonical_codes(lengths)
        syms = self._arr() % 4
        payload, sizes = _h2_payload(codes[syms], np.asarray(lengths)[syms], 8)
        # Claim the right sizes but hand over a short payload.
        bad = _hand_rolled_blob(
            symbols, lengths, syms, version=2, n_streams=8,
            sizes=sizes, payload=payload[:-10],
        )
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(bad)

    def test_undersized_streams_raise_exhausted(self):
        # Sizes consistent with the (short) payload, but too few bits for n
        # symbols: the cursor check must reject it, not return garbage.
        symbols, lengths = np.arange(4), np.array([2, 2, 2, 2])
        syms = self._arr() % 4
        from repro.sz.huffman import _h2_payload

        codes = canonical_codes(lengths)
        payload, sizes = _h2_payload(codes[syms], np.asarray(lengths)[syms], 8)
        cut = sizes.copy()
        cut[0] -= 5  # steal 5 bytes from stream 0
        short = payload[: int(cut[0])] + payload[int(sizes[0]) :]
        bad = _hand_rolled_blob(
            symbols, lengths, syms, version=2, n_streams=8,
            sizes=cut, payload=short,
        )
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(bad)

    def test_bad_stream_count_raises(self):
        symbols, lengths = np.arange(4), np.array([2, 2, 2, 2])
        syms = self._arr() % 4
        from repro.sz.huffman import _h2_payload

        codes = canonical_codes(lengths)
        payload, sizes = _h2_payload(codes[syms], np.asarray(lengths)[syms], 8)
        for ns in (0, -1, 100000):
            bad = _hand_rolled_blob(
                symbols, lengths, syms, version=2, n_streams=ns,
                sizes=sizes, payload=payload,
            )
            with pytest.raises(DecompressionError):
                HuffmanCodec.decode(bad)

    def test_size_table_length_mismatch_raises(self):
        symbols, lengths = np.arange(4), np.array([2, 2, 2, 2])
        syms = self._arr() % 4
        from repro.sz.huffman import _h2_payload

        codes = canonical_codes(lengths)
        payload, sizes = _h2_payload(codes[syms], np.asarray(lengths)[syms], 8)
        bad = _hand_rolled_blob(
            symbols, lengths, syms, version=2, n_streams=8,
            sizes=sizes[:-1], payload=payload[: int(sizes[:-1].sum())],
        )
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(bad)

    def test_unsupported_version_raises(self):
        from repro.serde import BlobWriter

        writer = BlobWriter()
        writer.write_json({"n": 4, "dense": None, "dt": "<i8", "v": 9})
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(writer.getvalue())

    def test_incomplete_codebook_raises(self):
        # Lengths [2, 2, 2] leave a Kraft hole; both paths must refuse.
        for version, ns in ((1, None), (2, 4)):
            bad = _hand_rolled_blob(
                np.arange(3), np.array([2, 2, 2]), np.zeros(50, dtype=np.int64),
                version=version, n_streams=ns,
            )
            with pytest.raises(DecompressionError):
                HuffmanCodec.decode(bad)

    def test_oversubscribed_codebook_raises(self):
        # Kraft surplus (overlapping spans) is corruption too.
        bad = _hand_rolled_blob(
            np.arange(3), np.array([1, 1, 1]), np.zeros(10, dtype=np.int64),
        )
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(bad)


class TestDeepCodebookCap:
    """Codebooks deeper than FLAT_TABLE_BITS must not allocate 2**max_len."""

    @pytest.mark.parametrize("depth", [20, 40, 57])
    def test_deep_legacy_blob_decodes(self, depth):
        symbols, lengths = _deep_codebook(depth)
        rng = np.random.default_rng(depth)
        # Mostly short codes with a few deep ones mixed in.
        syms = np.where(
            rng.random(2000) < 0.9, 0, rng.integers(0, symbols.size, 2000)
        )
        blob = _hand_rolled_blob(symbols, lengths, syms, version=1)
        out = HuffmanCodec.decode(blob)
        assert np.array_equal(out, syms)

    @pytest.mark.parametrize("depth", [20, 40, 57])
    def test_deep_h2_blob_decodes(self, depth):
        symbols, lengths = _deep_codebook(depth)
        rng = np.random.default_rng(depth + 1)
        syms = np.where(
            rng.random(5000) < 0.9, 0, rng.integers(0, symbols.size, 5000)
        )
        blob = _hand_rolled_blob(symbols, lengths, syms, version=2, n_streams=16)
        out = HuffmanCodec.decode(blob)
        assert np.array_equal(out, syms)

    def test_over_budget_depth_rejected(self):
        symbols, lengths = _deep_codebook(58)
        # Assemble the codebook sections only; payload content irrelevant.
        from repro.serde import BlobWriter
        from repro.sz.huffman import _compact_symbols

        writer = BlobWriter()
        writer.write_json({"n": 10, "dense": None, "dt": "<i8"})
        writer.write_array(_compact_symbols(symbols))
        writer.write_array(lengths.astype(np.uint8))
        writer.write_bytes(b"\x00" * 80)
        with pytest.raises(DecompressionError):
            HuffmanCodec.decode(writer.getvalue())


class TestCodebookCache:
    def test_cache_hits_on_repeated_alphabet(self):
        from repro.sz.huffman import clear_codebook_caches
        from repro.telemetry import recording

        clear_codebook_caches()
        rng = np.random.default_rng(21)
        arr = rng.integers(0, 50, 30000)
        with recording() as rec:
            first = HuffmanCodec.encode(arr)
            HuffmanCodec.decode(first)
            miss_after_first = rec.snapshot()["counters"]["sz.huffman.cache.miss"]
            second = HuffmanCodec.encode(arr)
            HuffmanCodec.decode(second)
            snap = rec.snapshot()["counters"]
        assert first == second
        assert snap["sz.huffman.cache.miss"] == miss_after_first
        assert snap.get("sz.huffman.cache.hit", 0) >= 2

    def test_clear_resets(self):
        from repro.sz.huffman import (
            _DECODE_CACHE,
            _ENCODE_CACHE,
            clear_codebook_caches,
        )

        HuffmanCodec.decode(HuffmanCodec.encode(np.arange(100)))
        assert len(_ENCODE_CACHE) > 0
        clear_codebook_caches()
        assert len(_ENCODE_CACHE) == 0 and len(_DECODE_CACHE) == 0

    def test_different_histograms_do_not_collide(self):
        from repro.sz.huffman import clear_codebook_caches

        clear_codebook_caches()
        a = np.array([0] * 100 + [1] * 5 + [2] * 5, dtype=np.int64)
        b = np.array([0] * 5 + [1] * 100 + [2] * 5, dtype=np.int64)
        assert np.array_equal(HuffmanCodec.decode(HuffmanCodec.encode(a)), a)
        assert np.array_equal(HuffmanCodec.decode(HuffmanCodec.encode(b)), b)
