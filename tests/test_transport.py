"""Degraded-path coverage for the executor's shared-memory transport.

The transport has a degradation ladder — pool + shared-memory payloads,
pool + pickled payloads, inline execution — and every rung must produce
byte-identical archives.  These tests force each rung: a pool that dies
mid-backpressure-wait, shared memory that is unavailable or exhausted,
and state digests that miss the worker cache, plus the lifecycle
guarantee that no ``/dev/shm`` segment outlives ``close``/``terminate``/
``abort``.
"""

from __future__ import annotations

import dataclasses
import io
import os

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.stream import (
    AxisJobSpec,
    FlushJobSpec,
    ParallelExecutor,
    StreamingWriter,
    backoff_delay,
    encode_flush,
    stream_compress,
)
from repro.stream import executor as executor_mod
from repro.telemetry import MetricsRecorder, recording


def _trajectory(snapshots=24, atoms=120, seed=3):
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, 6, (atoms, 3)) * 2.0
    return (
        levels[None] + rng.normal(0, 0.03, (snapshots, atoms, 3))
    ).astype(np.float32)


def _compress(traj, workers=0, executor=None, buffer_size=4):
    config = MDZConfig(
        buffer_size=buffer_size, error_bound=1e-3, error_bound_mode="absolute"
    )
    sink = io.BytesIO()
    with StreamingWriter(
        sink, config, workers=workers, executor=executor
    ) as writer:
        writer.feed_many(traj)
    return sink.getvalue()


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _double(x):
    return 2 * x


class _FailingHandle:
    """A pool result that never completes and fails when awaited.

    ``ready()`` is False so the non-blocking collect pass skips the job;
    the failure is only discovered when someone *waits* on it — which is
    exactly what the backpressure loop does when the queue is full."""

    def ready(self):
        return False

    def get(self, timeout=None):
        raise RuntimeError("worker died")


class _DyingPool:
    """Accepts submissions but every job is lost — the executor's retry
    path resubmits into the same void until it abandons the pool."""

    def apply_async(self, fn, args):
        return _FailingHandle()

    def terminate(self):
        pass

    def join(self):
        pass


class TestValidation:
    def test_explicit_max_pending_zero_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            ParallelExecutor(workers=2, max_pending=0)

    def test_negative_max_pending_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            ParallelExecutor(workers=2, max_pending=-3)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(workers=-1)

    def test_explicit_max_pending_one_honored(self):
        # Regression: the old falsy test replaced 0 with the default and
        # would also have replaced nothing else — but an explicit small
        # bound must stick.
        ex = ParallelExecutor(workers=4, max_pending=1)
        assert ex.max_pending == 1
        ex.close()

    def test_default_max_pending(self):
        ex = ParallelExecutor(workers=3)
        assert ex.max_pending == 12
        ex.close()
        serial = ParallelExecutor(workers=0)
        assert serial.max_pending == 4
        serial.close()


class TestBackoffDelay:
    def test_first_retry_waits_base(self):
        assert backoff_delay(1, 0.05, 1.0) == pytest.approx(0.05)

    def test_doubles_per_retry(self):
        assert backoff_delay(2, 0.05, 1.0) == pytest.approx(0.10)
        assert backoff_delay(3, 0.05, 1.0) == pytest.approx(0.20)

    def test_capped(self):
        assert backoff_delay(30, 0.05, 1.0) == 1.0

    def test_matches_documented_policy(self):
        # The docstrings promise min(base * 2**(attempt-1), cap); keep
        # the helper pinned to that exact formula.
        for attempt in range(1, 8):
            assert backoff_delay(attempt, 0.01, 0.5) == min(
                0.01 * 2 ** (attempt - 1), 0.5
            )


class TestPoolDeathDegradation:
    def test_pool_death_mid_backpressure_wait(self, monkeypatch):
        """A pool that loses every job while submit blocks on a full
        queue must degrade to inline execution, byte-identically."""
        traj = _trajectory()
        serial = _compress(traj, workers=0)

        monkeypatch.setattr(
            ParallelExecutor, "RETRY_BASE_DELAY", 0.001, raising=True
        )
        ex = ParallelExecutor(workers=2, max_pending=1)
        ex._pool = _DyingPool()  # pool "started", then every worker dies
        with recording(MetricsRecorder()) as rec:
            blob = _compress(traj, executor=ex)
        ex.close()

        assert blob == serial
        counters = rec.snapshot()["counters"]
        # The second dispatch hit max_pending=1, waited on the first
        # job, watched it fail, and the abandon sweep re-ran it inline.
        assert counters["stream.executor.backpressure_waits"] >= 1
        assert counters["stream.executor.pool_abandoned"] == 1
        assert counters["stream.executor.jobs_rerun_inline"] >= 1
        assert counters["stream.executor.job_retries"] >= 1

    def test_slot_released_by_abandon_sweep(self):
        """Payload slots held by queued jobs are freed when the pool is
        abandoned, and the ring is unlinked once idle."""
        ex = ParallelExecutor(workers=2, max_pending=2)
        ex.RETRY_BASE_DELAY = 0.001
        ex._pool = _DyingPool()
        before = _shm_entries()
        slot = ex.acquire_slot(1024)
        assert slot is not None
        ex.submit(_double, 21, slot=slot)
        ex._abandon_pool()
        assert not ex.parallel
        assert ex.drain() == [42]
        assert _shm_entries() == before  # ring idle -> unlinked
        ex.close()

    def test_dead_pool_at_acquire_returns_none(self):
        ex = ParallelExecutor(workers=2)
        ex._broken = True
        assert ex.acquire_slot(1024) is None
        assert ex.publish(b"state") is None
        ex.close()


class TestShmLifecycle:
    def test_no_leak_after_close(self):
        before = _shm_entries()
        traj = _trajectory()
        serial = _compress(traj, workers=0)
        parallel = _compress(traj, workers=2)
        assert parallel == serial
        assert _shm_entries() == before

    def test_no_leak_after_terminate(self):
        before = _shm_entries()
        ex = ParallelExecutor(workers=2, max_pending=2)
        slot = ex.acquire_slot(4096)
        handle = ex.publish(b"frozen session state")
        assert slot is not None and handle is not None
        assert _shm_entries() != before
        ex.submit(_double, 1, slot=slot)
        ex.terminate()
        assert _shm_entries() == before

    def test_no_leak_after_writer_abort(self):
        before = _shm_entries()
        traj = _trajectory()
        config = MDZConfig(
            buffer_size=4, error_bound=1e-3, error_bound_mode="absolute"
        )
        writer = StreamingWriter(io.BytesIO(), config, workers=2)
        writer.feed_many(traj[:12])
        writer.abort()
        assert _shm_entries() == before

    def test_slot_grows_for_larger_payload(self):
        before = _shm_entries()
        ring = executor_mod._ShmRing(1)
        index, seg = ring.try_acquire(100)
        assert seg.size >= 100
        ring.release(index)
        index, grown = ring.try_acquire(10 * seg.size)
        assert grown.size >= 10 * seg.size
        ring.release(index)
        ring.destroy()
        assert _shm_entries() == before

    def test_shm_unavailable_falls_back_to_pickle(self, monkeypatch):
        """When segment creation fails, the stream continues on pickled
        payloads with identical bytes."""
        traj = _trajectory()
        serial = _compress(traj, workers=0)

        def _no_shm(nbytes):
            raise OSError("shm exhausted")

        monkeypatch.setattr(executor_mod, "_create_segment", _no_shm)
        with recording(MetricsRecorder()) as rec:
            parallel = _compress(traj, workers=2)
        assert parallel == serial
        snap = rec.snapshot()
        assert "stream.executor.shm_bytes" not in snap["counters"]
        assert any(
            event["name"] == "stream.executor.shm_unavailable"
            for event in snap["events"]
        )


def _state_spec(traj, digest_override=None):
    """An AxisJobSpec (inline state) for axis 0 of ``traj`` plus the
    follow-up batch it should encode, and the serial reference bytes."""
    config = MDZConfig(
        buffer_size=4, error_bound=1e-3, error_bound_mode="absolute"
    )
    from repro.baselines.api import SessionMeta
    from repro.core.mdz import MDZAxisCompressor

    axis = np.ascontiguousarray(traj[:, :, 0].astype(np.float64))
    session = MDZAxisCompressor(config)
    session.begin(1e-3, SessionMeta(n_atoms=traj.shape[1]))
    session.compress_batch(axis[:4])  # establishes the frozen state
    session.compress_batch(axis[4:8])  # second buffer: ADP trial
    method = session.pending_method()
    assert method is not None
    reference, level_fit, digest = session.export_session_state(method)
    spec = AxisJobSpec(
        method=method,
        error_bound=1e-3,
        n_atoms=traj.shape[1],
        quantization_scale=config.quantization_scale,
        sequence_mode=config.sequence_mode,
        lossless_backend=config.lossless_backend,
        level_seed=config.level_seed,
        reference=reference,
        level_fit=level_fit,
        entropy_streams=config.entropy_streams,
        state_digest=digest_override or digest,
    )
    expected = session.compress_batch(axis[8:12])
    return spec, axis[8:12], expected


class TestStateDigestCache:
    def test_digest_miss_falls_back_to_full_state(self):
        """A digest the worker cache has never seen rebuilds the session
        from the shipped state — bytes identical to in-session encode."""
        traj = _trajectory()
        spec, batch, expected = _state_spec(
            traj, digest_override="no-such-digest-" + os.urandom(4).hex()
        )
        executor_mod._SESSIONS.clear()
        with recording(MetricsRecorder()) as rec:
            [blob] = encode_flush(FlushJobSpec(jobs=(spec,)), batch[None])
        assert blob == expected
        counters = rec.snapshot()["counters"]
        assert counters["stream.executor.state_cache.miss"] == 1
        assert "stream.executor.state_cache.hit" not in counters

    def test_digest_hit_reuses_cached_session(self):
        traj = _trajectory()
        spec, batch, expected = _state_spec(traj)
        executor_mod._SESSIONS.clear()
        with recording(MetricsRecorder()) as rec:
            [first] = encode_flush(FlushJobSpec(jobs=(spec,)), batch[None])
            [second] = encode_flush(FlushJobSpec(jobs=(spec,)), batch[None])
        assert first == expected
        assert second == expected
        counters = rec.snapshot()["counters"]
        assert counters["stream.executor.state_cache.miss"] == 1
        assert counters["stream.executor.state_cache.hit"] == 1

    def test_no_digest_skips_cache(self):
        traj = _trajectory()
        spec, batch, expected = _state_spec(traj)
        spec = dataclasses.replace(spec, state_digest=None)
        executor_mod._SESSIONS.clear()
        with recording(MetricsRecorder()) as rec:
            [blob] = encode_flush(FlushJobSpec(jobs=(spec,)), batch[None])
        assert blob == expected
        counters = rec.snapshot()["counters"]
        assert "stream.executor.state_cache.miss" not in counters
        assert len(executor_mod._SESSIONS) == 0

    def test_cache_is_bounded(self):
        traj = _trajectory()
        spec, batch, expected = _state_spec(traj)
        executor_mod._SESSIONS.clear()
        for i in range(executor_mod._SESSION_CACHE_MAX + 3):
            fake = dataclasses.replace(spec, state_digest=f"digest-{i}")
            [blob] = encode_flush(FlushJobSpec(jobs=(fake,)), batch[None])
            assert blob == expected
        assert len(executor_mod._SESSIONS) == executor_mod._SESSION_CACHE_MAX


class TestBatchedDispatch:
    def test_one_ipc_round_trip_per_flush(self):
        """All axes of a flush travel as one submission."""
        traj = _trajectory(snapshots=16)
        with recording(MetricsRecorder()) as rec:
            parallel = _compress(traj, workers=2)
        counters = rec.snapshot()["counters"]
        # 4 buffers, ADP trials on the first two -> 2 dispatched flushes,
        # each one job covering 3 axes.
        assert counters["stream.executor.dispatched"] == 2
        assert counters["stream.executor.shm_bytes"] > 0
        assert parallel == _compress(traj, workers=0)

    def test_backpressure_one_slot(self):
        """max_pending=1 recycles a single payload slot across flushes."""
        traj = _trajectory(snapshots=40)
        serial = _compress(traj, workers=0)
        ex = ParallelExecutor(workers=2, max_pending=1)
        assert _compress(traj, executor=ex) == serial
        ex.close()

    def test_float64_source_byte_identical(self):
        traj = _trajectory().astype(np.float64)
        assert _compress(traj, workers=2) == _compress(traj, workers=0)
