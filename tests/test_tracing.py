"""Tests for hierarchical tracing: spans, provenance, export, workers."""

import io
import json
import threading

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.core.mdz import MDZ
from repro.stream import stream_compress
from repro.telemetry import (
    MetricsRecorder,
    TracingRecorder,
    get_recorder,
    recording,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_provenance,
)
from repro.telemetry.recorder import _NULL_SPAN


@pytest.fixture
def trajectory(rng) -> np.ndarray:
    levels = rng.integers(0, 8, 60) * 2.0
    return levels[None, :, None] + rng.normal(0, 0.03, (12, 60, 3))


def _by_id(spans):
    out = {s["span_id"]: s for s in spans}
    # Span ids must be unique even after merging worker-side snapshots
    # produced in the *same* process (inline executor fallback).
    assert len(out) == len(spans)
    return out


class TestSpanPrimitives:
    def test_nesting_links_parent(self):
        rec = TracingRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        spans = _by_id(rec.snapshot()["spans"])
        inner = next(s for s in spans.values() if s["name"] == "inner")
        outer = next(s for s in spans.values() if s["name"] == "outer")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_no_negative_durations_and_containment(self):
        rec = TracingRecorder()
        with rec.span("a"):
            with rec.span("b"):
                with rec.span("c"):
                    pass
        spans = _by_id(rec.snapshot()["spans"])
        for span in spans.values():
            assert span["duration"] >= 0.0
            parent = spans.get(span["parent_id"])
            if parent is not None:
                # Same process, same clock: children are contained.
                assert parent["start"] <= span["start"]
                assert (
                    span["start"] + span["duration"]
                    <= parent["start"] + parent["duration"] + 1e-9
                )

    def test_no_orphans_within_one_recorder(self):
        rec = TracingRecorder()
        with rec.span("root"):
            with rec.span("mid"):
                with rec.span("leaf"):
                    pass
            with rec.span("mid2"):
                pass
        spans = _by_id(rec.snapshot()["spans"])
        for span in spans.values():
            assert span["parent_id"] is None or span["parent_id"] in spans

    def test_stack_unwinds_on_exception(self):
        from repro.telemetry.tracing import current_span_id

        rec = TracingRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("root"):
                raise RuntimeError("boom")
        assert current_span_id() is None
        span = rec.snapshot()["spans"][0]
        assert "error" in span["attrs"]

    def test_explicit_parent_overrides_stack(self):
        rec = TracingRecorder()
        with rec.span("root"):
            with rec.span("detached", parent="ffff-99"):
                pass
        spans = rec.snapshot()["spans"]
        detached = next(s for s in spans if s["name"] == "detached")
        assert detached["parent_id"] == "ffff-99"

    def test_attrs_are_bounded(self):
        from repro.telemetry.tracing import MAX_ATTR_CHARS, MAX_ATTRS

        rec = TracingRecorder()
        many = {f"k{i}": i for i in range(MAX_ATTRS * 2)}
        with rec.span("s", big="x" * (MAX_ATTR_CHARS * 3), **many):
            pass
        attrs = rec.snapshot()["spans"][0]["attrs"]
        assert len(attrs) <= MAX_ATTRS
        assert len(attrs["big"]) == MAX_ATTR_CHARS

    def test_span_cap_drops_and_counts(self):
        rec = TracingRecorder(max_spans=3)
        for _ in range(5):
            with rec.span("s"):
                pass
        snap = rec.snapshot()
        assert len(snap["spans"]) == 3
        assert snap["counters"]["trace.spans_dropped"] == 2

    def test_null_recorder_span_is_shared_noop(self):
        rec = get_recorder()
        handle = rec.span("anything", pointless=1)
        assert handle is _NULL_SPAN
        with handle:
            handle.annotate(ignored=True)
        assert rec.export_token(x=1) is None

    def test_annotate_prefers_provenance_span_and_absorb_wins(self):
        rec = TracingRecorder()
        with rec.span("buffer", provenance=True):
            with rec.span("stage"):
                rec.annotate(reached="provenance")
            with rec.span("trial", absorb=True):
                rec.annotate(swallowed=True)
        record = rec.snapshot()["provenance"][0]
        assert record["reached"] == "provenance"
        assert "swallowed" not in record

    def test_annotate_without_spans_is_harmless(self):
        rec = TracingRecorder()
        rec.annotate(orphan=True)
        assert rec.snapshot()["provenance"] == []


class TestPipelineTracing:
    def test_compress_emits_provenance_per_buffer(self, trajectory):
        rec = TracingRecorder()
        with recording(rec):
            MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        snap = rec.snapshot()
        records = snap["provenance"]
        assert len(records) == 9  # 3 buffers x 3 axes
        for record in records:
            assert record["method"] in ("vq", "vqt", "mt")
            assert record["raw_values"] == 4 * 60
            assert 0 < record["compressed_bytes"]
            assert record["duration"] >= 0
        # ADP trial buffers carry the trial outcome.
        trials = [r for r in records if r.get("adp_trial")]
        assert trials
        for record in trials:
            assert set(record["adp_sizes"]) == {"vq", "vqt", "mt"}
            assert record["adp_chosen"] == record["method"]
        # Non-trial buffers carry the entropy fan-out annotation.
        plain = [r for r in records if not r.get("adp_trial")]
        for record in plain:
            assert record["entropy_streams"] >= 1
            assert record["lossless_out"] == record["compressed_bytes"]

    def test_stream_spans_nest_flush_over_buffers(self, trajectory):
        rec = TracingRecorder()
        with recording(rec):
            stream_compress(trajectory, io.BytesIO(), MDZConfig(buffer_size=4))
        spans = _by_id(rec.snapshot()["spans"])
        flushes = [s for s in spans.values() if s["name"] == "stream.flush"]
        assert len(flushes) == 3
        buffers = [
            s for s in spans.values() if s["name"] == "mdz.compress.buffer"
        ]
        assert len(buffers) == 9
        for span in spans.values():
            assert span["duration"] >= 0.0
            assert span["parent_id"] is None or span["parent_id"] in spans

    def test_plain_metrics_recorder_collects_no_spans(self, trajectory):
        rec = MetricsRecorder()
        with recording(rec):
            MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        snap = rec.snapshot()
        assert "spans" not in snap
        assert snap["counters"]["mdz.buffers"] == 9


class TestCrossProcess:
    def test_workers_byte_identical_and_reparented(self, trajectory):
        serial_sink, parallel_sink = io.BytesIO(), io.BytesIO()
        serial_rec, parallel_rec = TracingRecorder(), TracingRecorder()
        with recording(serial_rec):
            stream_compress(
                trajectory, serial_sink, MDZConfig(buffer_size=2), workers=0
            )
        with recording(parallel_rec):
            stream_compress(
                trajectory, parallel_sink, MDZConfig(buffer_size=2), workers=2
            )
        assert serial_sink.getvalue() == parallel_sink.getvalue()

        snap = parallel_rec.snapshot()
        spans = _by_id(snap["spans"])
        session_pid = snap["trace"]["pid"]
        worker_roots = [
            s
            for s in spans.values()
            if s["name"] == "stream.worker.encode_axis"
        ]
        assert worker_roots
        for root in worker_roots:
            # Re-parented under a session-side flush span.
            parent = spans[root["parent_id"]]
            assert parent["pid"] == session_pid
            assert parent["name"] == "stream.flush"
            assert root["attrs"]["buffer"] == parent["attrs"]["buffer"]
        # At least some jobs ran in actual worker processes, and their
        # nested stage spans came along in the merge.
        foreign = [s for s in spans.values() if s["pid"] != session_pid]
        if foreign:  # pool may legitimately degrade inline on tiny boxes
            names = {s["name"] for s in foreign}
            assert "mdz.compress.buffer" in names
        # Provenance covers every (buffer, axis) chunk exactly once.
        keys = {
            (r["buffer"], r["axis"])
            for r in snap["provenance"]
            if "buffer" in r
        }
        assert len(keys) == len(snap["provenance"]) == 6 * 3

    def test_worker_metrics_sideband_merges(self, trajectory):
        rec = MetricsRecorder()
        with recording(rec):
            stream_compress(
                trajectory, io.BytesIO(), MDZConfig(buffer_size=2), workers=2
            )
        snap = rec.snapshot()
        # Out-of-session jobs' stage counters made it back to the session.
        assert snap["counters"]["mdz.buffers"] == 6 * 3
        assert snap["counters"]["stream.chunks_written"] == 6 * 3


class TestExport:
    def test_chrome_trace_is_valid_and_nested(self, tmp_path, trajectory):
        rec = TracingRecorder()
        with recording(rec):
            stream_compress(trajectory, io.BytesIO(), MDZConfig(buffer_size=4))
        trace = write_chrome_trace(tmp_path / "trace.json", rec.snapshot())
        validate_chrome_trace(trace)
        reloaded = json.loads((tmp_path / "trace.json").read_text())
        validate_chrome_trace(reloaded)
        xs = [e for e in reloaded["traceEvents"] if e["ph"] == "X"]
        assert xs
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        assert min(ts) == 0.0
        names = {e["name"] for e in xs}
        assert {"stream.flush", "mdz.compress.buffer"} <= names

    def test_provenance_jsonl_round_trips(self, tmp_path, trajectory):
        rec = TracingRecorder()
        with recording(rec):
            MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        path = tmp_path / "prov.jsonl"
        n = write_provenance(path, rec.snapshot())
        lines = path.read_text().splitlines()
        assert len(lines) == n == 9
        for line in lines:
            record = json.loads(line)
            assert "method" in record and "span_id" in record

    def test_validator_rejects_malformed_traces(self):
        validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}
                    ]
                }
            )
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "a", "ph": "X", "pid": 1, "tid": 1,
                         "ts": 5.0, "dur": 1.0},
                        {"name": "b", "ph": "X", "pid": 1, "tid": 1,
                         "ts": 1.0, "dur": 1.0},
                    ]
                }
            )
        with pytest.raises(ValueError, match="unmatched"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
                    ]
                }
            )

    def test_empty_snapshot_exports_cleanly(self):
        rec = TracingRecorder()
        trace = to_chrome_trace(rec.snapshot())
        validate_chrome_trace(trace)


class TestConcurrentMerge:
    def test_merge_is_atomic_under_concurrent_snapshots(self):
        """A snapshot taken mid-merge must never see torn aggregates.

        Each worker snapshot carries a counter increment and a timer
        observation in lockstep; if merge released the lock between the
        counter fold and the timer fold, a concurrent reader would see
        them disagree.
        """
        worker = MetricsRecorder()
        worker.count("jobs", 1)
        worker.observe("job.time", 0.001)
        worker.event("job.done", "ok")
        worker_snap = worker.snapshot()

        session = MetricsRecorder()
        stop = threading.Event()
        tears = []

        def reader():
            while not stop.is_set():
                snap = session.snapshot()
                jobs = snap["counters"].get("jobs", 0)
                timed = snap["timers"].get("job.time", {"count": 0})["count"]
                if jobs != timed:
                    tears.append((jobs, timed))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for _ in range(300):
            session.merge(worker_snap)
        stop.set()
        for t in threads:
            t.join()
        assert not tears, f"torn merge observed: {tears[:3]}"
        final = session.snapshot()
        assert final["counters"]["jobs"] == 300
        assert final["timers"]["job.time"]["count"] == 300

    def test_concurrent_merges_from_many_threads(self):
        worker = MetricsRecorder()
        worker.count("n", 1)
        worker.observe("t", 0.5)
        snap = worker.snapshot()
        session = TracingRecorder()
        span_snap = None
        with session.span("s"):
            pass
        span_snap = session.snapshot()

        def fold():
            for _ in range(50):
                session.merge(snap)
                session.merge(span_snap)

        threads = [threading.Thread(target=fold) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = session.snapshot()
        assert final["counters"]["n"] == 200
        assert final["timers"]["t"]["count"] == 200
        assert final["timers"]["t"]["seconds"] == pytest.approx(100.0)
