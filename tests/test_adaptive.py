"""Tests for the ADP adaptive method selector (Section VI-D)."""

import numpy as np

from repro.core.adaptive import ADPSelector
from repro.core.levels import SessionLevelModel
from repro.core.methods import MethodState
from repro.sz.lossless import lossless_compress
from repro.sz.quantizer import LinearQuantizer


def make_state() -> MethodState:
    return MethodState(
        quantizer=LinearQuantizer(1e-3),
        layout="F",
        levels=SessionLevelModel(seed=0),
    )


class TestSelection:
    def test_first_batch_triggers_trial(self, crystal_stream):
        selector = ADPSelector(interval=50)
        state = make_state()
        name, blob, recon = selector.encode(crystal_stream, state)
        assert name in ("vq", "vqt", "mt")
        assert len(selector.history) == 1
        assert set(selector.history[0].sizes) == {"vq", "vqt", "mt"}

    def test_winner_has_smallest_final_size(self, crystal_stream):
        selector = ADPSelector(interval=50)
        state = make_state()
        name, blob, _ = selector.encode(crystal_stream, state)
        sizes = selector.history[0].sizes
        assert sizes[name] == min(sizes.values())
        # The recorded size is the *final* (dictionary-coded) size.
        assert sizes[name] == len(lossless_compress(blob, "zlib"))

    def test_interval_respected(self, crystal_stream):
        selector = ADPSelector(interval=3)
        state = make_state()
        state.reference = crystal_stream[0].astype(np.float64)
        for _ in range(7):
            selector.encode(crystal_stream[:4], state)
        # trials at buffer 0, the bootstrap-bias follow-up at 1, then 3, 6
        assert [r.buffer_index for r in selector.history] == [0, 1, 3, 6]

    def test_smooth_data_picks_time_method(self, smooth_stream):
        selector = ADPSelector(interval=50)
        state = make_state()
        state.reference = smooth_stream[0].astype(np.float64)
        name, _, _ = selector.encode(smooth_stream, state)
        assert name in ("mt", "vqt")

    def test_reset_clears_state(self, crystal_stream):
        selector = ADPSelector(interval=50)
        selector.encode(crystal_stream, make_state())
        selector.reset()
        assert selector.current is None
        assert selector.buffers_seen == 0
        assert selector.history == []

    def test_non_trial_batches_reuse_current(self, crystal_stream):
        selector = ADPSelector(interval=100)
        state = make_state()
        selector.encode(crystal_stream[:5], state)      # trial (buffer 0)
        current, _, _ = selector.encode(crystal_stream[5:10], state)  # trial
        third, _, _ = selector.encode(crystal_stream[10:15], state)
        assert third == current
        assert len(selector.history) == 2

    def test_deterministic_tie_break(self):
        # Identical trivial batches: whatever wins must win reproducibly.
        batch = np.zeros((3, 50)) + 1.5
        names = set()
        for _ in range(3):
            selector = ADPSelector(interval=50)
            name, _, _ = selector.encode(batch, make_state())
            names.add(name)
        assert len(names) == 1
