"""Tests specific to the SZ2 baseline (Table IV behaviour)."""

import numpy as np
import pytest

from repro.baselines.api import SessionMeta
from repro.exceptions import DecompressionError
from repro.sz.sz2 import SZ2Compressor


class TestModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SZ2Compressor(mode="3d")

    def test_mode_mismatch_detected(self, crystal_stream):
        enc = SZ2Compressor(mode="1d")
        enc.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
        blob = enc.compress_batch(crystal_stream)
        dec = SZ2Compressor(mode="2d")
        dec.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
        with pytest.raises(DecompressionError, match="mode"):
            dec.decompress_batch(blob)

    def test_2d_beats_1d_on_smooth_time(self, smooth_stream):
        """Table IV: the 2D mode exploits the time dimension."""
        sizes = {}
        for mode in ("1d", "2d"):
            comp = SZ2Compressor(mode=mode)
            comp.begin(
                1e-3 * (smooth_stream.max() - smooth_stream.min()),
                SessionMeta(n_atoms=smooth_stream.shape[1]),
            )
            sizes[mode] = len(comp.compress_batch(smooth_stream))
        assert sizes["2d"] < sizes["1d"]

    @pytest.mark.parametrize("mode", ["1d", "2d"])
    def test_round_trip_bound(self, mode, random_stream):
        eb = 1e-3 * (random_stream.max() - random_stream.min())
        enc = SZ2Compressor(mode=mode)
        dec = SZ2Compressor(mode=mode)
        meta = SessionMeta(n_atoms=random_stream.shape[1])
        enc.begin(eb, meta)
        dec.begin(eb, meta)
        out = dec.decompress_batch(enc.compress_batch(random_stream))
        assert np.max(np.abs(out - random_stream)) <= eb * (1 + 1e-9)

    def test_single_snapshot_batch(self, crystal_stream):
        eb = 0.01
        enc = SZ2Compressor(mode="2d")
        dec = SZ2Compressor(mode="2d")
        meta = SessionMeta(n_atoms=crystal_stream.shape[1])
        enc.begin(eb, meta)
        dec.begin(eb, meta)
        out = dec.decompress_batch(enc.compress_batch(crystal_stream[:1]))
        assert out.shape == (1, crystal_stream.shape[1])
        assert np.max(np.abs(out - crystal_stream[:1])) <= eb * (1 + 1e-9)
