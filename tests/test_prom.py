"""Prometheus exposition: render, parse, validate, quantile estimation.

The renderer and the miniature parser are exercised against each other
(round-trip), against hand-written expositions (format details: label
escaping, TYPE rules, cumulative buckets), and against the recorder's
real snapshots — the same path ``GET /metrics`` serves.
"""

from __future__ import annotations

import math

import pytest

from repro.telemetry import MetricsRecorder, TIMER_BUCKETS
from repro.telemetry import prom


def _snapshot():
    rec = MetricsRecorder()
    rec.count("service.requests", 7)
    rec.gauge("quality.ratio", 3.5)
    for seconds in (1e-4, 2e-4, 1e-3):
        rec.observe("stream.flush", seconds)
    return rec.snapshot()


class TestRender:
    def test_families_and_types(self):
        families = prom.validate(prom.render(_snapshot()))
        assert families["mdz_service_requests_total"]["type"] == "counter"
        assert families["mdz_quality_ratio"]["type"] == "gauge"
        assert families["mdz_stream_flush_seconds"]["type"] == "histogram"
        # Gauges grow a staleness companion.
        assert families["mdz_quality_ratio_age_seconds"]["type"] == "gauge"

    def test_histogram_is_cumulative_with_inf(self):
        families = prom.validate(prom.render(_snapshot()))
        samples = families["mdz_stream_flush_seconds"]["samples"]
        buckets = [(float(lb["le"]), v) for n, lb, v in samples
                   if n.endswith("_bucket")]
        assert len(buckets) == len(TIMER_BUCKETS) + 1
        counts = [v for _, v in sorted(buckets)]
        assert counts == sorted(counts)
        assert math.isinf(sorted(buckets)[-1][0])
        count = [v for n, _, v in samples if n.endswith("_count")][0]
        assert count == 3

    def test_labels_escaped_and_stamped(self):
        text = prom.render(
            {"counters": {"hits": 1}}, labels={"session": 'a"b\\c\nd'}
        )
        families = prom.parse(text)
        (_, labels, value), = families["mdz_hits_total"]["samples"]
        assert labels["session"] == 'a"b\\c\nd'
        assert value == 1

    def test_render_many_single_type_per_family(self):
        text = prom.render_many([
            ({"counters": {"hits": 1}}, None),
            ({"counters": {"hits": 2}}, {"session": "t1"}),
            ({"counters": {"hits": 3}}, {"session": "t2"}),
        ])
        assert text.count("# TYPE mdz_hits_total counter") == 1
        families = prom.validate(text)
        assert len(families["mdz_hits_total"]["samples"]) == 3

    def test_type_conflict_raises(self):
        with pytest.raises(ValueError, match="declared both"):
            prom.render_many([
                ({"counters": {"x": 1}}, None),
                ({"gauges": {"x_total": 2}}, None),
            ])

    def test_metric_name_flattening(self):
        assert prom.metric_name("sz.huffman.encode", "_seconds") == \
            "mdz_sz_huffman_encode_seconds"
        assert prom.metric_name("a-b c") == "mdz_a_b_c"


class TestParseValidate:
    def test_rejects_duplicate_type(self):
        bad = (
            "# TYPE mdz_x counter\nmdz_x 1\n"
            "# TYPE mdz_x counter\nmdz_x 2\n"
        )
        with pytest.raises(ValueError, match="duplicate TYPE"):
            prom.parse(bad)

    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="unparseable"):
            prom.parse("this is not a metric\n")

    def test_validate_rejects_noncumulative_histogram(self):
        bad = (
            "# TYPE mdz_t_seconds histogram\n"
            'mdz_t_seconds_bucket{le="0.1"} 5\n'
            'mdz_t_seconds_bucket{le="1"} 3\n'
            'mdz_t_seconds_bucket{le="+Inf"} 3\n'
            "mdz_t_seconds_sum 1\nmdz_t_seconds_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            prom.validate(bad)

    def test_validate_rejects_inf_count_mismatch(self):
        bad = (
            "# TYPE mdz_t_seconds histogram\n"
            'mdz_t_seconds_bucket{le="+Inf"} 3\n'
            "mdz_t_seconds_sum 1\nmdz_t_seconds_count 4\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            prom.validate(bad)

    def test_validate_rejects_undeclared_samples(self):
        with pytest.raises(ValueError, match="without a TYPE"):
            prom.validate("mdz_orphan 1\n")

    def test_help_comments_pass_through(self):
        text = "# HELP mdz_x something\n# TYPE mdz_x counter\nmdz_x 1\n"
        assert prom.validate(text)["mdz_x"]["samples"] == [("mdz_x", {}, 1.0)]


class TestHistogramQuantile:
    def test_matches_bucket_containing_mass(self):
        families = prom.parse(prom.render(_snapshot()))
        entry = families["mdz_stream_flush_seconds"]
        p50 = prom.histogram_quantile(entry, 0.50)
        # Samples: 1e-4, 2e-4, 1e-3; the median lives near 2e-4's bucket.
        assert 1e-4 <= p50 <= 5e-4
        p99 = prom.histogram_quantile(entry, 0.99)
        assert p99 >= p50

    def test_empty_histogram_returns_none(self):
        entry = {"samples": [("x_bucket", {"le": "+Inf"}, 0.0)]}
        assert prom.histogram_quantile(entry, 0.5) is None

    def test_label_filtering(self):
        entry = {"samples": [
            ("t_bucket", {"session": "a", "le": "1"}, 4.0),
            ("t_bucket", {"session": "a", "le": "+Inf"}, 4.0),
            ("t_bucket", {"session": "b", "le": "1"}, 0.0),
            ("t_bucket", {"session": "b", "le": "+Inf"}, 8.0),
        ]}
        qa = prom.histogram_quantile(entry, 0.5, {"session": "a"})
        qb = prom.histogram_quantile(entry, 0.5, {"session": "b"})
        assert qa is not None and qa <= 1.0
        assert qb == 1.0  # all of b's mass is past the last finite edge


def test_roundtrip_value_formats():
    snap = {"gauges": {"inf": math.inf, "neg": -2.5, "int": 3.0}}
    families = prom.parse(prom.render(snap))
    values = {n: e["samples"][0][2] for n, e in families.items()
              if not n.endswith("_age_seconds")}
    assert values["mdz_inf"] == math.inf
    assert values["mdz_neg"] == -2.5
    assert values["mdz_int"] == 3
