"""Cross-cutting hypothesis property tests.

The library's central invariants, stressed with generated inputs:

* every lossy compressor honours the absolute error bound on arbitrary
  finite streams;
* every lossless compressor is bit-exact;
* the MDZ container round-trips arbitrary trajectories;
* the Gorilla and fpzip integer mappings are involutions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SessionMeta, create_compressor
from repro.baselines.fpzip_like import float_to_ordered, ordered_to_float
from repro.baselines.gorilla import gorilla_decode, gorilla_encode
from repro.core.config import MDZConfig
from repro.core.mdz import MDZ

#: Fast representatives of each compressor family for property testing.
LOSSY_SAMPLE = ("mdz", "sz2-2d", "tng", "mdb", "zfp")
LOSSLESS_SAMPLE = ("zstd", "fpzip")


def _stream(draw) -> np.ndarray:
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    t = draw(st.integers(1, 8))
    n = draw(st.integers(2, 40))
    kind = draw(st.sampled_from(["levels", "walk", "uniform", "constant"]))
    if kind == "levels":
        base = rng.integers(0, 6, n) * 2.0
        return base[None, :] + rng.normal(0, 0.05, (t, n))
    if kind == "walk":
        return np.cumsum(rng.normal(0, 0.3, (t, n)), axis=0)
    if kind == "uniform":
        return rng.uniform(-50, 50, (t, n))
    return np.full((t, n), float(draw(st.sampled_from([0.0, -3.25, 1e6]))))


class TestLossyBoundProperty:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_bound_holds(self, data):
        stream = _stream(data.draw)
        name = data.draw(st.sampled_from(LOSSY_SAMPLE))
        eb = data.draw(st.sampled_from([1e-3, 1e-2, 0.5]))
        value_range = float(stream.max() - stream.min())
        bound = eb * value_range if value_range else eb
        enc = create_compressor(name)
        dec = create_compressor(name)
        meta = SessionMeta(n_atoms=stream.shape[1])
        enc.begin(bound, meta)
        dec.begin(bound, meta)
        out = dec.decompress_batch(enc.compress_batch(stream))
        assert np.max(np.abs(np.asarray(out) - stream)) <= bound * (
            1 + 1e-9
        ) + 1e-12


class TestLosslessProperty:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_bit_exact(self, data):
        stream = _stream(data.draw).astype(np.float32)
        name = data.draw(st.sampled_from(LOSSLESS_SAMPLE))
        enc = create_compressor(name)
        dec = create_compressor(name)
        meta = SessionMeta(n_atoms=stream.shape[1])
        enc.begin(None, meta)
        dec.begin(None, meta)
        out = dec.decompress_batch(enc.compress_batch(stream))
        assert np.array_equal(np.asarray(out), stream)


class TestContainerProperty:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_container_round_trip(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        t = data.draw(st.integers(1, 12))
        n = data.draw(st.integers(2, 30))
        bs = data.draw(st.integers(1, 6))
        positions = rng.normal(0, 3, (t, n, 3))
        mdz = MDZ(MDZConfig(error_bound=1e-3, buffer_size=bs))
        out = mdz.decompress(mdz.compress(positions))
        for a in range(3):
            axis = positions[:, :, a]
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.max(np.abs(out[:, :, a] - axis)) <= bound * (1 + 1e-9)


class TestBitMappings:
    @given(
        st.lists(
            st.floats(allow_nan=False, width=64), min_size=1, max_size=64
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ordered_mapping_involution(self, values):
        arr = np.array(values, dtype=np.float64)
        mapped = float_to_ordered(arr)
        back = ordered_to_float(mapped)
        assert np.array_equal(back.view(np.uint64), arr.view(np.uint64))

    @given(
        st.lists(
            st.floats(allow_nan=False, width=32), min_size=1, max_size=64
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_ordered_mapping_monotone_32(self, values):
        arr = np.sort(np.unique(np.array(values, dtype=np.float32)))
        mapped = float_to_ordered(arr).astype(np.int64)
        assert (np.diff(mapped) > 0).all()

    @given(
        st.lists(st.floats(allow_nan=False), min_size=0, max_size=100),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_gorilla_round_trip(self, values, width):
        ftype = np.float64 if width == 8 else np.float32
        with np.errstate(over="ignore"):  # f64 -> f32 overflow is fine here
            arr = np.array(values, dtype=ftype)
        out = gorilla_decode(gorilla_encode(arr, width=width))
        assert np.array_equal(
            out.view(np.uint64 if width == 8 else np.uint32),
            arr.view(np.uint64 if width == 8 else np.uint32),
        )


class TestDeterminism:
    @pytest.mark.parametrize("name", ["mdz", "sz2", "tng", "lfzip"])
    def test_compression_is_deterministic(self, name, crystal_stream):
        blobs = []
        for _ in range(2):
            enc = create_compressor(name)
            enc.begin(0.01, SessionMeta(n_atoms=crystal_stream.shape[1]))
            blobs.append(enc.compress_batch(crystal_stream))
        assert blobs[0] == blobs[1]
