"""Tests for multi-field archives (positions + velocities + ...)."""

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.exceptions import CompressionError, ContainerFormatError
from repro.io.fields import compress_fields, decompress_fields


@pytest.fixture
def md_fields(rng):
    t, n = 12, 80
    positions = np.cumsum(rng.normal(0, 0.05, (t, n, 3)), axis=0) + rng.uniform(
        0, 20, (1, n, 3)
    )
    velocities = rng.normal(0, 1.5, (t, n, 3))
    energy = rng.normal(-5, 0.2, (t, n))  # scalar per atom
    return {"positions": positions, "velocities": velocities, "energy": energy}


class TestRoundTrip:
    def test_all_fields_restored_within_bounds(self, md_fields):
        bounds = {"positions": 1e-3, "velocities": 1e-2, "energy": 1e-3}
        archive = compress_fields(md_fields, bounds=bounds)
        out = decompress_fields(archive)
        assert set(out) == set(md_fields)
        for name, data in md_fields.items():
            restored = out[name]
            assert restored.shape == data.shape
            work = data.reshape(data.shape[0], data.shape[1], -1)
            back = restored.reshape(work.shape)
            for k in range(work.shape[2]):
                axis = work[:, :, k]
                bound = bounds[name] * (axis.max() - axis.min())
                assert np.abs(back[:, :, k] - axis).max() <= bound * (1 + 1e-9)

    def test_scalar_bound_for_all(self, md_fields):
        archive = compress_fields(md_fields, bounds=1e-3)
        out = decompress_fields(archive)
        assert out["energy"].shape == md_fields["energy"].shape

    def test_config_propagates(self, md_fields):
        archive = compress_fields(
            md_fields,
            bounds=1e-3,
            config=MDZConfig(buffer_size=4, method="vq"),
        )
        assert decompress_fields(archive)["positions"].shape == (12, 80, 3)

    def test_archive_smaller_than_raw(self, md_fields):
        raw = sum(np.asarray(v).astype(np.float32).nbytes for v in md_fields.values())
        archive = compress_fields(md_fields, bounds=1e-2)
        assert len(archive) < raw


class TestValidation:
    def test_empty_fields_rejected(self):
        with pytest.raises(CompressionError):
            compress_fields({})

    def test_shape_mismatch_rejected(self, md_fields):
        md_fields["velocities"] = md_fields["velocities"][:, :40]
        with pytest.raises(CompressionError, match="disagree"):
            compress_fields(md_fields)

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(CompressionError):
            compress_fields({"x": rng.normal(size=(5,))})

    def test_bad_magic_rejected(self, md_fields):
        archive = bytearray(compress_fields(md_fields, bounds=1e-2))
        archive[9] ^= 0xFF
        with pytest.raises(ContainerFormatError, match="magic"):
            decompress_fields(bytes(archive))
