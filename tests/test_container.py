"""Tests for the .mdz container format and the MDZ front end."""

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.core.mdz import MDZ
from repro.exceptions import CompressionError, ContainerFormatError
from repro.io.container import (
    read_container,
    read_container_batch,
    write_container,
)


class TestContainerRoundTrip:
    def test_full_round_trip(self, trajectory):
        config = MDZConfig(buffer_size=4)
        blob = write_container(trajectory, config)
        out = read_container(blob)
        assert out.shape == trajectory.shape
        for a in range(3):
            axis = trajectory[:, :, a]
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.max(np.abs(out[:, :, a] - axis)) <= bound * (1 + 1e-9)

    def test_partial_final_batch(self, trajectory):
        config = MDZConfig(buffer_size=5)  # 12 snapshots -> 5+5+2
        out = read_container(write_container(trajectory, config))
        assert out.shape == trajectory.shape

    @pytest.mark.parametrize("method", ["vq", "vqt", "mt", "adp"])
    def test_all_methods(self, trajectory, method):
        config = MDZConfig(buffer_size=4, method=method)
        out = read_container(write_container(trajectory, config))
        assert out.shape == trajectory.shape

    def test_float32_input(self, trajectory):
        blob = write_container(trajectory.astype(np.float32), MDZConfig())
        out = read_container(blob)
        assert out.shape == trajectory.shape

    def test_compresses(self, trajectory):
        blob = write_container(trajectory, MDZConfig(buffer_size=6))
        assert len(blob) < trajectory.astype(np.float32).nbytes


class TestRandomAccess:
    def test_batch_access_matches_full_decode(self, trajectory):
        config = MDZConfig(buffer_size=4)
        blob = write_container(trajectory, config)
        full = read_container(blob)
        for batch_index, t0 in enumerate(range(0, 12, 4)):
            piece = read_container_batch(blob, batch_index)
            assert np.array_equal(piece, full[t0 : t0 + 4])

    def test_vq_batches_without_head_decode(self, trajectory):
        config = MDZConfig(buffer_size=4, method="vq")
        blob = write_container(trajectory, config)
        piece = read_container_batch(blob, 2)
        full = read_container(blob)
        assert np.array_equal(piece, full[8:12])

    def test_out_of_range_batch_rejected(self, trajectory):
        blob = write_container(trajectory, MDZConfig(buffer_size=4))
        with pytest.raises(ContainerFormatError):
            read_container_batch(blob, 99)


class TestContainerErrors:
    def test_bad_magic_rejected(self, trajectory):
        blob = bytearray(write_container(trajectory, MDZConfig()))
        blob[9] ^= 0xFF  # first magic byte (after the frame header)
        with pytest.raises(ContainerFormatError, match="magic"):
            read_container(bytes(blob))

    def test_truncated_container_rejected(self, trajectory):
        blob = write_container(trajectory, MDZConfig(buffer_size=4))
        with pytest.raises(ContainerFormatError):
            read_container(blob[: len(blob) // 3])

    def test_short_garbage_rejected(self):
        with pytest.raises(ContainerFormatError):
            read_container(b"\x01\x02")

    def test_empty_trajectory_rejected(self):
        with pytest.raises(CompressionError):
            write_container(np.empty((0, 5, 3)), MDZConfig())

    def test_wrong_rank_rejected(self):
        with pytest.raises(CompressionError):
            write_container(np.zeros((4, 5)), MDZConfig())


class TestMDZFrontEnd:
    def test_compress_decompress(self, trajectory):
        mdz = MDZ(MDZConfig(buffer_size=6))
        out = mdz.decompress(mdz.compress(trajectory))
        for a in range(3):
            axis = trajectory[:, :, a]
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.max(np.abs(out[:, :, a] - axis)) <= bound * (1 + 1e-9)

    def test_2d_input_promoted(self, crystal_stream):
        mdz = MDZ(MDZConfig(buffer_size=10))
        out = mdz.decompress(mdz.compress(crystal_stream))
        assert out.shape == (*crystal_stream.shape, 1)

    def test_decompress_batch_api(self, trajectory):
        mdz = MDZ(MDZConfig(buffer_size=4))
        blob = mdz.compress(trajectory)
        piece = mdz.decompress_batch(blob, 1)
        assert np.array_equal(piece, mdz.decompress(blob)[4:8])

    def test_default_config(self):
        assert MDZ().config.method == "adp"


class TestIntegrity:
    def test_payload_crc_detects_bit_flips(self, trajectory):
        blob = bytearray(write_container(trajectory, MDZConfig(buffer_size=4)))
        blob[-10] ^= 0x01  # flip one bit deep inside the payload
        with pytest.raises(ContainerFormatError, match="checksum"):
            read_container(bytes(blob))

    def test_crc_verified_on_batch_access(self, trajectory):
        blob = bytearray(write_container(trajectory, MDZConfig(buffer_size=4)))
        blob[-10] ^= 0x01
        with pytest.raises(ContainerFormatError, match="checksum"):
            read_container_batch(bytes(blob), 0)
