"""Tests for the ``mdz`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.dump import DumpFrame, frames_to_array, read_dump, write_dump


@pytest.fixture
def npy_trajectory(tmp_path, rng):
    path = tmp_path / "traj.npy"
    data = (
        rng.integers(0, 6, (60, 3)) * 2.0
        + rng.normal(0, 0.03, (15, 60, 3))
    ).astype(np.float32)
    np.save(path, data)
    return path, data


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress", "a.npy", "b.mdz"])
        assert args.error_bound == 1e-3
        assert args.buffer_size == 10
        assert args.method == "adp"


class TestCompressDecompress:
    def test_round_trip(self, tmp_path, npy_trajectory, capsys):
        path, data = npy_trajectory
        container = tmp_path / "traj.mdz"
        restored = tmp_path / "restored.npy"
        assert main(["compress", str(path), str(container)]) == 0
        assert container.stat().st_size < data.nbytes
        assert main(["decompress", str(container), str(restored)]) == 0
        out = np.load(restored)
        for a in range(3):
            axis = data[:, :, a].astype(np.float64)
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.abs(out[:, :, a] - axis).max() <= bound * (1 + 1e-9)
        stdout = capsys.readouterr().out
        assert "CR" in stdout

    def test_fixed_method_and_absolute_bound(self, tmp_path, npy_trajectory):
        path, data = npy_trajectory
        container = tmp_path / "t.mdz"
        code = main(
            [
                "compress",
                str(path),
                str(container),
                "--method",
                "vq",
                "--bound-mode",
                "absolute",
                "--error-bound",
                "0.01",
            ]
        )
        assert code == 0
        restored = tmp_path / "r.npy"
        assert main(["decompress", str(container), str(restored)]) == 0
        out = np.load(restored)
        assert np.abs(out - data.astype(np.float64)).max() <= 0.01 * (1 + 1e-9)

    def test_dump_input(self, tmp_path, rng):
        frames = [
            DumpFrame(
                timestep=i,
                box=np.column_stack([np.zeros(3), np.full(3, 10.0)]),
                positions=rng.uniform(0, 10, (40, 3)),
            )
            for i in range(6)
        ]
        dump_path = tmp_path / "run.dump"
        write_dump(dump_path, frames)
        container = tmp_path / "run.mdz"
        assert main(["compress", str(dump_path), str(container)]) == 0

    def test_lammpstrj_round_trip(self, tmp_path, rng):
        frames = [
            DumpFrame(
                timestep=i,
                box=np.column_stack([np.zeros(3), np.full(3, 10.0)]),
                positions=(
                    rng.integers(0, 5, (40, 3)) * 2.0
                    + rng.normal(0, 0.02, (40, 3))
                ),
            )
            for i in range(8)
        ]
        dump_path = tmp_path / "run.lammpstrj"
        write_dump(dump_path, frames)
        container = tmp_path / "run.mdz"
        restored = tmp_path / "restored.npy"
        assert main(["compress", str(dump_path), str(container)]) == 0
        assert main(["decompress", str(container), str(restored)]) == 0
        data = frames_to_array(read_dump(dump_path))
        out = np.load(restored)
        assert out.shape == data.shape
        for a in range(3):
            axis = data[:, :, a]
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.abs(out[:, :, a] - axis).max() <= bound * (1 + 1e-9)

    def test_unknown_format_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "traj.xyz"
        bad.write_text("not a trajectory")
        assert main(["compress", str(bad), str(tmp_path / "o.mdz")]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["compress", str(tmp_path / "nope.npy"), str(tmp_path / "o.mdz")]
        )
        assert code == 1


class TestStream:
    def test_stream_round_trip(self, tmp_path, npy_trajectory, capsys):
        path, data = npy_trajectory
        container = tmp_path / "traj.mdz"
        restored = tmp_path / "restored.npy"
        code = main(
            ["stream", str(path), str(container), "--buffer-size", "5"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "streamed 15 snapshots" in stdout
        assert "3 buffers" in stdout
        assert main(["decompress", str(container), str(restored)]) == 0
        out = np.load(restored)
        assert out.shape == data.shape
        for a in range(3):
            axis = data[:, :, a].astype(np.float64)
            bound = 1e-3 * (axis.max() - axis.min())
            assert np.abs(out[:, :, a] - axis).max() <= bound * (1 + 1e-9)

    def test_stream_container_is_mdz2(self, tmp_path, npy_trajectory):
        from repro.io.container import container_version

        path, _ = npy_trajectory
        container = tmp_path / "t.mdz"
        assert main(["stream", str(path), str(container)]) == 0
        assert container_version(container.read_bytes()) == 2

    def test_stream_metrics_json_embeds_stream_stats(
        self, tmp_path, npy_trajectory
    ):
        """--metrics-json carries StreamStats.to_dict(), not ad-hoc keys."""
        import json

        from repro.stream.writer import StreamStats

        path, _ = npy_trajectory
        container = tmp_path / "t.mdz"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "stream", str(path), str(container),
                "--buffer-size", "5", "--metrics-json", str(metrics),
            ]
        )
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        stream = snapshot["stream"]
        assert set(stream) == set(StreamStats().to_dict())
        assert stream["snapshots"] == 15
        assert stream["bytes_written"] == container.stat().st_size
        assert stream["compression_ratio"] > 1.0

    def test_stream_info(self, tmp_path, npy_trajectory, capsys):
        path, _ = npy_trajectory
        container = tmp_path / "t.mdz"
        main(["stream", str(path), str(container), "--buffer-size", "5"])
        capsys.readouterr()
        assert main(["info", str(container)]) == 0
        out = capsys.readouterr().out
        assert "snapshots=15" in out
        assert "buffers=3" in out


class TestInfoAndBench:
    def test_info_reports_structure(self, tmp_path, npy_trajectory, capsys):
        path, data = npy_trajectory
        container = tmp_path / "t.mdz"
        main(["compress", str(path), str(container), "--buffer-size", "5"])
        capsys.readouterr()
        assert main(["info", str(container)]) == 0
        out = capsys.readouterr().out
        assert "snapshots=15" in out
        assert "buffers=3" in out
        assert "axis 0:" in out

    def test_bench_lists_compressors(self, tmp_path, npy_trajectory, capsys):
        path, _ = npy_trajectory
        code = main(
            ["bench", str(path), "--compressors", "mdz,tng,zstd"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("mdz", "tng", "zstd"):
            assert name in out

    def test_bench_unknown_compressor_fails_cleanly(
        self, tmp_path, npy_trajectory, capsys
    ):
        path, _ = npy_trajectory
        code = main(
            ["bench", str(path), "--compressors", "mdz,nonexistent"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown compressor(s): nonexistent" in err
        assert "registered:" in err
        assert "mdz" in err


class TestStatsAndTrace:
    def test_stats_reports_percentiles(self, npy_trajectory, capsys):
        path, _ = npy_trajectory
        assert main(["stats", str(path), "--buffer-size", "5"]) == 0
        out = capsys.readouterr().out
        assert "p50 ms" in out and "p95 ms" in out and "p99 ms" in out
        assert "mdz.compress_batch" in out

    def test_trace_writes_valid_trace_and_provenance(
        self, tmp_path, npy_trajectory, capsys
    ):
        import json

        from repro.telemetry import validate_chrome_trace

        path, _ = npy_trajectory
        trace_path = tmp_path / "trace.json"
        prov_path = tmp_path / "prov.jsonl"
        code = main(
            [
                "trace",
                str(path),
                "-o",
                str(trace_path),
                "--provenance",
                str(prov_path),
                "--buffer-size",
                "5",
            ]
        )
        assert code == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        records = [
            json.loads(line)
            for line in prov_path.read_text().splitlines()
        ]
        assert len(records) == 9  # 3 buffers x 3 axes
        assert all("method" in r for r in records)
        out = capsys.readouterr().out
        assert " spans -> " in out

    def test_stats_missing_input_fails_cleanly(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.npy")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_trace_missing_input_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["trace", str(tmp_path / "nope.npy"), "-o", str(tmp_path / "t.json")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert not (tmp_path / "t.json").exists()

    def test_stats_unreadable_input_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "garbage.npy"
        bad.write_bytes(b"this is not a numpy file")
        code = main(["stats", str(bad)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_trace_unreadable_input_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "garbage.npy"
        bad.write_bytes(b"\x93NUMPY but truncated")
        code = main(
            ["trace", str(bad), "-o", str(tmp_path / "t.json")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
