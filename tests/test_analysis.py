"""Tests for the analysis toolkit (metrics, RDF, similarity, RD-sweeps)."""

import numpy as np
import pytest

from repro.analysis import (
    bit_rate,
    calibrate_epsilon_for_cr,
    compression_ratio,
    max_error,
    nrmse,
    psnr,
    radial_distribution,
    similarity_profile,
    snapshot_similarity,
    spatial_profile,
)
from repro.analysis.rdf import rdf_deviation
from repro.analysis.ratedistortion import rate_distortion_sweep
from repro.md.lattice import fcc_lattice


class TestMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_bit_rate(self):
        assert bit_rate(125, 1000) == 1.0
        with pytest.raises(ValueError):
            bit_rate(10, 0)

    def test_max_error(self, rng):
        a = rng.normal(0, 1, 100)
        b = a.copy()
        b[17] += 0.125
        assert max_error(a, b) == pytest.approx(0.125)

    def test_nrmse_known_value(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 9.0])
        assert nrmse(a, b) == pytest.approx(0.1)

    def test_psnr_known_value(self):
        a = np.array([0.0, 10.0])
        b = np.array([0.1, 10.0])
        # MSE = 0.005, range 10 -> PSNR = 20 - 10*log10(0.005)
        assert psnr(a, b) == pytest.approx(20 - 10 * np.log10(0.005))

    def test_psnr_perfect_is_infinite(self):
        a = np.arange(5.0)
        assert psnr(a, a) == np.inf

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_error(np.zeros(3), np.zeros(4))

    def test_psnr_improves_with_smaller_error(self, rng):
        a = rng.normal(0, 1, 1000)
        assert psnr(a, a + 0.001) > psnr(a, a + 0.01)


class TestSimilarity:
    def test_identical_snapshots(self, rng):
        snap = rng.normal(5, 1, 200)
        assert snapshot_similarity(snap, snap, tau=1e-6) == 1.0

    def test_fully_changed(self, rng):
        snap = rng.normal(5, 0.1, 200)
        assert snapshot_similarity(snap * 2, snap, tau=1e-3) == 0.0

    def test_profile_starts_at_one(self, smooth_stream):
        norm, sims = similarity_profile(smooth_stream, tau=0.01)
        assert sims[0] == 1.0
        assert norm[0] == 0.0 and norm[-1] == pytest.approx(100.0)

    def test_smooth_stream_stays_similar(self, smooth_stream):
        _, sims = similarity_profile(smooth_stream, tau=0.05)
        assert sims.min() > 0.9


class TestRDF:
    def test_fcc_first_peak(self):
        lat = fcc_lattice((5, 5, 5), 3.615)
        r, g = radial_distribution(lat.positions, lat.box)
        first_peak_r = r[np.argmax(g)]
        assert first_peak_r == pytest.approx(3.615 / np.sqrt(2), abs=0.15)

    def test_ideal_gas_is_flat(self, rng):
        box = np.array([20.0, 20.0, 20.0])
        pos = rng.uniform(0, box, (3000, 3))
        r, g = radial_distribution(pos, box)
        # away from r=0 the RDF of uncorrelated points is ~1
        far = g[r > 2.0]
        assert far.mean() == pytest.approx(1.0, abs=0.05)

    def test_deviation_metric(self):
        g1 = np.ones(10)
        g2 = np.ones(10) * 2
        assert rdf_deviation(g1, g2) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            rdf_deviation(np.ones(5), np.ones(6))

    def test_needs_two_atoms(self):
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((1, 3)), np.ones(3))


class TestSpatialProfile:
    def test_levels_recognized(self, rng):
        snapshot = (rng.integers(0, 10, 500) * 2.0).astype(np.float64)
        profile = spatial_profile(snapshot)
        assert profile.level_fraction > 0.95

    def test_smooth_data_low_relative_delta(self, rng):
        snapshot = np.linspace(0, 1, 1000) + rng.normal(0, 1e-5, 1000)
        profile = spatial_profile(snapshot)
        assert profile.rel_neighbor_delta < 0.01


class TestRateDistortion:
    def test_sweep_monotone(self, crystal_stream):
        curve = rate_distortion_sweep(
            "mdz-vq",
            crystal_stream,
            buffer_size=10,
            epsilons=(1e-2, 1e-3, 1e-4),
        )
        rates = [p.bit_rate for p in curve.points]
        psnrs = [p.psnr for p in curve.points]
        assert rates[0] < rates[-1]  # looser bound -> fewer bits
        assert psnrs[0] < psnrs[-1]  # looser bound -> lower fidelity

    def test_calibration_hits_target(self, crystal_stream):
        eps, achieved = calibrate_epsilon_for_cr(
            "sz2", crystal_stream, target_cr=6.0, buffer_size=10
        )
        assert achieved == pytest.approx(6.0, rel=0.06)

    def test_unreachable_target_raises(self, random_stream):
        # MDB saturates far below CR 50 (the paper's Table VI exclusion).
        with pytest.raises(ValueError, match="cannot reach"):
            calibrate_epsilon_for_cr(
                "mdb", random_stream, target_cr=50.0, buffer_size=10
            )
