"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.analysis.metrics import max_error, psnr
from repro.analysis.rdf import radial_distribution, rdf_deviation
from repro.core.config import MDZConfig
from repro.core.mdz import MDZ
from repro.exceptions import DecompressionError
from repro.io.batch import run_stream, stream_error_bound
from repro.md import EinsteinCrystalModel, MDSimulation, fcc_lattice


@pytest.fixture(scope="module")
def crystal_trajectory():
    lattice = fcc_lattice((5, 5, 5), a=3.615)
    model = EinsteinCrystalModel(
        sites=lattice.positions, amplitude=0.05, correlation=0.4
    )
    positions = model.generate(24, np.random.default_rng(3)).astype(
        np.float32
    )
    return positions, lattice.box


class TestSimulationToContainer:
    def test_md_run_compress_analyze(self, crystal_trajectory):
        """Generate -> compress -> decompress -> physical check."""
        positions, box = crystal_trajectory
        mdz = MDZ(MDZConfig(error_bound=1e-3, buffer_size=8))
        blob = mdz.compress(positions)
        assert len(blob) < positions.nbytes / 3
        restored = mdz.decompress(blob)
        # Point-wise bound per axis.
        for a in range(3):
            axis = positions[:, :, a].astype(np.float64)
            bound = 1e-3 * (axis.max() - axis.min())
            assert max_error(axis, restored[:, :, a]) <= bound * (1 + 1e-9)
        # Physical fidelity: the RDF survives compression.
        _, g_ref = radial_distribution(
            positions[-1].astype(np.float64), box
        )
        _, g_out = radial_distribution(restored[-1], box)
        assert rdf_deviation(g_ref, g_out) < 0.12

    def test_real_md_trajectory_compresses(self):
        """A genuine velocity-Verlet LJ run through the full pipeline."""
        lattice = fcc_lattice((4, 4, 4), a=1.68)
        sim = MDSimulation(
            lattice.positions, lattice.box, temperature=1.0, seed=5
        )
        frames = []
        sim.run(
            30,
            dump_every=3,
            dump_callback=lambda s, p: frames.append(p) or 0.0,
        )
        positions = np.stack(frames).astype(np.float32)
        decoded = run_stream(
            "mdz", positions[:, :, 0], 1e-3, 5, decompress=True
        )
        bound = stream_error_bound(positions[:, :, 0], 1e-3)
        err = np.abs(
            decoded.reconstruction - positions[:, :, 0].astype(np.float64)
        ).max()
        assert err <= bound * (1 + 1e-9)
        assert decoded.result.compression_ratio > 2


class TestCrossBufferConsistency:
    def test_buffer_size_changes_size_not_correctness(self, crystal_trajectory):
        positions, _ = crystal_trajectory
        stream = positions[:, :, 0]
        bound = stream_error_bound(stream, 1e-3)
        for bs in (3, 8, 24):
            decoded = run_stream("mdz", stream, 1e-3, bs, decompress=True)
            err = np.abs(
                decoded.reconstruction - stream.astype(np.float64)
            ).max()
            assert err <= bound * (1 + 1e-9), bs

    def test_tighter_bound_higher_fidelity(self, crystal_trajectory):
        positions, _ = crystal_trajectory
        stream = positions[:, :, 0]
        psnrs = []
        for eps in (1e-2, 1e-3, 1e-4):
            decoded = run_stream("mdz", stream, eps, 8, decompress=True)
            psnrs.append(
                psnr(stream.astype(np.float64), decoded.reconstruction)
            )
        assert psnrs[0] < psnrs[1] < psnrs[2]


class TestFailureInjection:
    def test_truncated_container_detected(self, crystal_trajectory):
        positions, _ = crystal_trajectory
        mdz = MDZ(MDZConfig(buffer_size=8))
        blob = mdz.compress(positions)
        with pytest.raises(DecompressionError):
            mdz.decompress(blob[: len(blob) // 2])

    def test_corrupted_payload_detected(self, crystal_trajectory):
        positions, _ = crystal_trajectory
        mdz = MDZ(MDZConfig(buffer_size=8))
        blob = bytearray(mdz.compress(positions))
        # Flip bytes in the middle of the payload area.
        mid = len(blob) // 2
        for i in range(mid, mid + 16):
            blob[i] ^= 0xFF
        with pytest.raises(Exception) as exc_info:
            mdz.decompress(bytes(blob))
        # Never a silent wrong answer: the failure is a typed error.
        assert isinstance(
            exc_info.value, (DecompressionError, ValueError, KeyError)
        )

    def test_batch_order_violation_mt(self, smooth_stream):
        """Decoding MT buffers out of order must fail loudly."""
        from repro.baselines import SessionMeta, create_compressor

        enc = create_compressor("mdz-mt")
        enc.begin(0.01, SessionMeta(n_atoms=smooth_stream.shape[1]))
        first = enc.compress_batch(smooth_stream[:10])
        second = enc.compress_batch(smooth_stream[10:])
        dec = create_compressor("mdz-mt")
        dec.begin(0.01, SessionMeta(n_atoms=smooth_stream.shape[1]))
        with pytest.raises(DecompressionError, match="order|reference"):
            dec.decompress_batch(second)
