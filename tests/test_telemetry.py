"""Tests for the telemetry layer: recorders, instrumentation, CLI surface."""

import io
import json

import numpy as np
import pytest

from repro.core.config import MDZConfig
from repro.core.mdz import MDZ
from repro.stream import StreamingReader, stream_compress
from repro.telemetry import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    get_recorder,
    recording,
    set_recorder,
)


class TestRecorderPrimitives:
    def test_default_is_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        rec.count("x", 5)
        rec.gauge("y", 1.0)
        rec.event("z", "detail")
        with rec.timer("stage"):
            pass
        snap = rec.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}

    def test_counters_accumulate(self):
        rec = MetricsRecorder()
        rec.count("a")
        rec.count("a", 4)
        assert rec.counter("a") == 5
        assert rec.counter("never") == 0

    def test_gauge_keeps_latest(self):
        rec = MetricsRecorder()
        rec.gauge("depth", 3)
        rec.gauge("depth", 1)
        assert rec.snapshot()["gauges"]["depth"] == 1.0

    def test_timer_records_count_and_seconds(self):
        rec = MetricsRecorder()
        with rec.timer("stage"):
            pass
        with rec.timer("stage"):
            pass
        cell = rec.snapshot()["timers"]["stage"]
        assert cell["count"] == 2
        assert cell["seconds"] >= 0.0
        assert rec.stage_seconds("stage") == cell["seconds"]

    def test_observe_folds_external_interval(self):
        rec = MetricsRecorder()
        rec.observe("flush", 0.5)
        rec.observe("flush", 0.25)
        cell = rec.snapshot()["timers"]["flush"]
        assert cell["count"] == 2
        assert cell["seconds"] == pytest.approx(0.75)

    def test_events_are_counted_and_bounded(self):
        from repro.telemetry.recorder import MAX_EVENTS

        rec = MetricsRecorder()
        for i in range(MAX_EVENTS + 10):
            rec.event("overflow", str(i))
        snap = rec.snapshot()
        assert len(snap["events"]) == MAX_EVENTS
        assert snap["counters"]["events.overflow"] == MAX_EVENTS + 10
        # Oldest entries were dropped, newest survive.
        assert snap["events"][-1]["detail"] == str(MAX_EVENTS + 9)

    def test_snapshot_is_json_serializable(self):
        rec = MetricsRecorder()
        rec.count("a", 2)
        rec.gauge("g", 1.5)
        with rec.timer("t"):
            pass
        rec.event("e", "detail")
        json.dumps(rec.snapshot())

    def test_merge_adds_counters_and_timers(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        a.count("n", 1)
        b.count("n", 2)
        b.gauge("g", 7)
        b.observe("t", 0.5)
        b.event("e")
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 7.0
        cell = snap["timers"]["t"]
        assert cell["count"] == 1
        assert cell["seconds"] == 0.5
        assert cell["min"] == cell["max"] == 0.5
        assert snap["events"]

    def test_timer_percentiles_and_extrema(self):
        rec = MetricsRecorder()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 200):
            rec.observe("t", ms / 1e3)
        cell = rec.snapshot()["timers"]["t"]
        assert cell["min"] == pytest.approx(1e-3)
        assert cell["max"] == pytest.approx(0.2)
        # Histogram-estimated: p50 near the 1 ms mass, p99 near the
        # 200 ms outlier, both clamped inside [min, max].
        assert cell["min"] <= cell["p50"] <= 2e-3
        assert 0.1 <= cell["p99"] <= cell["max"]
        assert cell["p50"] <= cell["p95"] <= cell["p99"]

    def test_merged_histograms_add(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        a.observe("t", 0.001)
        b.observe("t", 0.001)
        b.observe("t", 4.0)
        a.merge(b.snapshot())
        cell = a.snapshot()["timers"]["t"]
        assert cell["count"] == 3
        assert cell["max"] == 4.0
        assert sum(cell["hist"].values()) == 3

    def test_event_detail_is_capped(self):
        from repro.telemetry.recorder import MAX_EVENT_DETAIL

        rec = MetricsRecorder()
        rec.event("boom", "x" * (MAX_EVENT_DETAIL * 4))
        detail = rec.snapshot()["events"][0]["detail"]
        assert len(detail) == MAX_EVENT_DETAIL
        assert detail.endswith("…")

    def test_reset_clears_everything(self):
        rec = MetricsRecorder()
        rec.count("a")
        rec.reset()
        snap = rec.snapshot()
        assert snap["counters"] == {} and snap["timers"] == {}

    def test_recording_restores_previous(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
        assert get_recorder() is before

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert get_recorder() is before

    def test_set_recorder_none_reinstalls_null(self):
        previous = set_recorder(MetricsRecorder())
        try:
            assert get_recorder().enabled
            set_recorder(None)
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(previous)

    def test_interleaved_recording_scopes_do_not_clobber(self):
        """Two concurrent tasks' recording() scopes stay isolated.

        The slot is a ContextVar: each asyncio task (tenant) sees its
        own recorder even while the scopes overlap in time — the
        regression the multi-tenant service depends on.
        """
        import asyncio

        async def tenant(name: str, results: dict) -> None:
            with recording() as rec:
                for _ in range(3):
                    get_recorder().count(f"tenant.{name}")
                    await asyncio.sleep(0)  # interleave with the other
            results[name] = rec.snapshot()["counters"]

        async def main() -> dict:
            results: dict = {}
            await asyncio.gather(tenant("a", results), tenant("b", results))
            return results

        results = asyncio.run(main())
        assert results["a"] == {"tenant.a": 3}
        assert results["b"] == {"tenant.b": 3}

    def test_recording_scope_propagates_into_to_thread(self):
        """asyncio.to_thread copies the context, recorder included."""
        import asyncio

        async def main() -> dict:
            with recording() as rec:
                await asyncio.to_thread(
                    lambda: get_recorder().count("from.thread")
                )
            return rec.snapshot()["counters"]

        assert asyncio.run(main()) == {"from.thread": 1}

    def test_context_local_scope_wins_over_global_slot(self):
        fallback = MetricsRecorder()
        previous = set_recorder(fallback)
        try:
            with recording() as scoped:
                get_recorder().count("scoped")
            get_recorder().count("global")
            assert scoped.snapshot()["counters"] == {"scoped": 1}
            assert fallback.snapshot()["counters"] == {"global": 1}
        finally:
            set_recorder(previous)


@pytest.fixture
def trajectory(rng) -> np.ndarray:
    levels = rng.integers(0, 8, 60) * 2.0
    return levels[None, :, None] + rng.normal(0, 0.03, (12, 60, 3))


class TestPipelineInstrumentation:
    def test_compress_records_stage_metrics(self, trajectory):
        with recording() as rec:
            blob = MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        snap = rec.snapshot()
        # 3 buffers x 3 axes.
        assert snap["counters"]["mdz.buffers"] == 9
        method_total = sum(
            v for k, v in snap["counters"].items() if k.startswith("mdz.method.")
        )
        assert method_total == 9
        assert snap["counters"]["mdz.compressed_bytes"] > 0
        assert snap["counters"]["sz.lossless.bytes_out"] > 0
        for stage in (
            "mdz.compress_batch",
            "sz.huffman.encode",
            "sz.lossless.compress",
        ):
            assert snap["timers"][stage]["seconds"] >= 0.0
        # The per-buffer blobs the recorder saw are exactly what landed in
        # the container payload (plus framing).
        assert snap["counters"]["mdz.compressed_bytes"] < len(blob)

    def test_adp_trials_recorded(self, trajectory):
        with recording() as rec:
            MDZ(MDZConfig(buffer_size=4, method="adp")).compress(trajectory)
        snap = rec.snapshot()
        # Trials at buffer 0 and the follow-up at buffer 1, per axis.
        assert snap["counters"]["adp.trials"] == 6
        winners = sum(
            v for k, v in snap["counters"].items() if k.startswith("adp.winner.")
        )
        assert winners == snap["counters"]["adp.trials"]
        assert snap["counters"]["adp.trial_bytes.vq"] > 0

    def test_fixed_method_has_no_adp_metrics(self, trajectory):
        with recording() as rec:
            MDZ(MDZConfig(buffer_size=4, method="vq")).compress(trajectory)
        snap = rec.snapshot()
        assert "adp.trials" not in snap["counters"]
        assert snap["counters"]["mdz.method.vq"] == 9

    def test_decompress_records_decode_stages(self, trajectory):
        blob = MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        with recording() as rec:
            MDZ().decompress(blob)
        snap = rec.snapshot()
        assert snap["timers"]["mdz.decompress_batch"]["count"] == 9
        assert snap["timers"]["sz.lossless.decompress"]["count"] >= 9
        assert snap["counters"]["sz.huffman.decode.symbols"] > 0

    def test_disabled_recorder_unchanged_by_compression(self, trajectory):
        MDZ(MDZConfig(buffer_size=4)).compress(trajectory)
        assert get_recorder().snapshot()["counters"] == {}


class TestStreamInstrumentation:
    def test_stream_records_chunks_and_queue(self, trajectory):
        sink = io.BytesIO()
        with recording() as rec:
            stats = stream_compress(
                trajectory, sink, MDZConfig(buffer_size=4)
            )
        snap = rec.snapshot()
        assert snap["counters"]["stream.chunks_written"] == stats.chunks == 9
        # In serial mode every chunk is either pushed (in-session) or
        # part of an inline batched flush job (one job per flush, one
        # chunk per axis).
        axes = trajectory.shape[2]
        handled = snap["counters"]["stream.executor.pushed"] + axes * snap[
            "counters"
        ].get("stream.executor.inline", 0)
        assert handled == stats.chunks
        assert snap["gauges"]["stream.queue_depth"] == 0.0
        assert snap["timers"]["stream.flush"]["count"] == stats.buffers
        # Chunk frames are the container minus magic/header/footer.
        assert 0 < snap["counters"]["stream.chunk_bytes"] < stats.bytes_written

    def test_stage_seconds_bounded_by_wall_clock(self, trajectory):
        import time

        sink = io.BytesIO()
        with recording() as rec:
            t0 = time.perf_counter()
            stream_compress(trajectory, sink, MDZConfig(buffer_size=4))
            wall = time.perf_counter() - t0
        snap = rec.snapshot()
        # Every serial stage ran inside the wall-clock interval; the flush
        # timer (which contains compress_batch, which contains huffman and
        # lossless) cannot exceed it.
        assert snap["timers"]["stream.flush"]["seconds"] <= wall
        assert (
            snap["timers"]["sz.huffman.encode"]["seconds"]
            <= snap["timers"]["mdz.compress_batch"]["seconds"]
            <= snap["timers"]["stream.flush"]["seconds"]
        )


class TestCLITelemetry:
    def test_stats_command_prints_stage_table(self, tmp_path, capsys, trajectory):
        from repro.cli import main

        npy = tmp_path / "traj.npy"
        np.save(npy, trajectory)
        assert main(["stats", str(npy), "--buffer-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "mdz.compress_batch" in out
        assert "sz.lossless.bytes_out" in out
        assert "% wall" in out

    def test_stats_metrics_json(self, tmp_path, trajectory):
        from repro.cli import main

        npy = tmp_path / "traj.npy"
        np.save(npy, trajectory)
        metrics = tmp_path / "metrics.json"
        out_mdz = tmp_path / "out.mdz"
        assert (
            main(
                [
                    "stats",
                    str(npy),
                    "--buffer-size",
                    "4",
                    "--output",
                    str(out_mdz),
                    "--metrics-json",
                    str(metrics),
                ]
            )
            == 0
        )
        snap = json.loads(metrics.read_text())
        assert snap["enabled"] is True
        assert snap["container_bytes"] == out_mdz.stat().st_size
        assert snap["wall_seconds"] > 0
        assert snap["counters"]["stream.chunks_written"] == 9
        # The kept container is a valid MDZ2 stream.
        assert StreamingReader(out_mdz.read_bytes()).snapshots == 12

    def test_compress_metrics_json(self, tmp_path, trajectory):
        from repro.cli import main

        npy = tmp_path / "traj.npy"
        np.save(npy, trajectory)
        metrics = tmp_path / "metrics.json"
        out = tmp_path / "out.mdz"
        assert (
            main(
                [
                    "compress",
                    str(npy),
                    str(out),
                    "--buffer-size",
                    "4",
                    "--metrics-json",
                    str(metrics),
                ]
            )
            == 0
        )
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["mdz.buffers"] == 9
        assert snap["container_bytes"] == out.stat().st_size

    def test_compress_without_flag_leaves_telemetry_off(
        self, tmp_path, trajectory
    ):
        from repro.cli import main

        npy = tmp_path / "traj.npy"
        np.save(npy, trajectory)
        assert main(["compress", str(npy), str(tmp_path / "o.mdz")]) == 0
        assert get_recorder() is NULL_RECORDER
