"""Figure 15: compression/decompression throughput of the lossy line-up.

The paper's claims: MDZ is consistently among the fastest lossy
compressors; LFZip is the slowest by a wide margin (its decoder replays
the NLMS recursion, plus intermediate disk I/O in the original); TNG and
HRTC are absent on the datasets they cannot handle.  Absolute MB/s values
are Python-substrate numbers — only the relative ordering is meaningful
(see EXPERIMENTS.md).
"""

import numpy as np

from conftest import LOSSY_LINEUP, dataset_stream, record, run_once
from repro.datasets import DATASET_SPECS
from repro.exceptions import UnsupportedDatasetError
from repro.io.batch import run_stream

DATASETS = ("copper-b", "helium-b", "pt", "lj")
EPSILON = 1e-3
BS = 10
#: Use long streams so session overheads (level fit, ADP trials)
#: amortize as they do in production runs.
SNAPSHOTS = 400


def run_experiment():
    rows = {}
    for name in DATASETS:
        stream = dataset_stream(name, snapshots=SNAPSHOTS)
        mb = stream.size * 4 / 1e6
        per_comp = {}
        for comp in LOSSY_LINEUP:
            try:
                decoded = run_stream(
                    comp,
                    stream,
                    EPSILON,
                    BS,
                    decompress=True,
                    original_atoms=DATASET_SPECS[name].paper_atoms,
                )
            except UnsupportedDatasetError:
                per_comp[comp] = None
                continue
            per_comp[comp] = (
                mb / decoded.result.compress_seconds,
                mb / decoded.result.decompress_seconds,
            )
        rows[name] = per_comp
    return rows


def test_fig15_throughput(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Figure 15 — throughput in MB/s (compress / decompress)",
        f"{'dataset':10s}"
        + "".join(f"{c:>16s}" for c in LOSSY_LINEUP),
    ]
    for name, per_comp in rows.items():
        cells = []
        for comp in LOSSY_LINEUP:
            value = per_comp[comp]
            cells.append(
                f"{value[0]:7.1f}/{value[1]:<8.1f}"
                if value
                else f"{'N/A':>16s}"
            )
        lines.append(f"{name:10s}" + "".join(cells))
    record(results_dir, "fig15_throughput", "\n".join(lines))
    for name, per_comp in rows.items():
        speeds = {
            c: v for c, v in per_comp.items() if v is not None
        }
        totals = {
            c: 1 / cs + 1 / ds for c, (cs, ds) in speeds.items()
        }
        # LFZip's disk staging keeps it in the slow tail: slower than the
        # SZ-family coders end to end (the paper shows it slowest overall;
        # the Python substrate compresses the ordering spread — see
        # EXPERIMENTS.md).
        assert totals["lfzip"] > totals["sz2"], name
        assert totals["lfzip"] > totals["tng"] if "tng" in totals else True
        # MDZ stays within 6x of the fastest *predictive* compressor on
        # every dataset — "always has high throughput on all datasets".
        # (MDB is excluded from the baseline: dumping raw segment
        # parameters is quick precisely because it barely compresses.
        # The vectorized H2 entropy stage accelerates every SZ-family
        # decoder equally, so the remaining gap is MDZ's compress side —
        # level fitting plus two Huffman streams per value — which the
        # Python substrate pays for disproportionately; see the
        # throughput note in EXPERIMENTS.md.)
        fastest = min(v for c, v in totals.items() if c != "mdb")
        assert totals["mdz"] <= 6.0 * fastest, (name, totals)
        # HRTC (when it runs) is never faster than MDZ end to end.
        if "hrtc" in totals:
            assert totals["hrtc"] >= totals["mdz"], name
