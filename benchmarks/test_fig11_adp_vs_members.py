"""Figure 11: ADP vs its member methods across datasets and buffer sizes.

The paper shows ADP matching the best of VQ/VQT/MT on all eight datasets
at BS in {10, 50, 100} — evidence the runtime selection picks the right
method.  ADP's first trial pays a cold-start wobble on very short streams,
so the assertion allows a small epsilon below the best member.
"""

from conftest import MD_ORDER, dataset_stream, record, run_once
from repro.datasets import DATASET_SPECS
from repro.io.batch import run_stream

METHODS = ("mdz-vq", "mdz-vqt", "mdz-mt", "mdz")
BUFFER_SIZES = (10, 50, 100)
EPSILON = 1e-3


def run_experiment():
    rows = {}
    for name in MD_ORDER:
        stream = dataset_stream(name)
        for bs in BUFFER_SIZES:
            crs = {}
            for method in METHODS:
                crs[method] = run_stream(
                    method,
                    stream,
                    EPSILON,
                    bs,
                    original_atoms=DATASET_SPECS[name].paper_atoms,
                ).result.compression_ratio
            rows[(name, bs)] = crs
    return rows


def test_fig11_adp_vs_members(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Figure 11 — ADP vs fixed methods (eps=1e-3)",
        f"{'dataset':10s} {'BS':>4s}"
        + "".join(f"{m:>10s}" for m in METHODS),
    ]
    for (name, bs), crs in rows.items():
        lines.append(
            f"{name:10s} {bs:4d}"
            + "".join(f"{crs[m]:10.2f}" for m in METHODS)
        )
    record(results_dir, "fig11_adp_vs_members", "\n".join(lines))
    for (name, bs), crs in rows.items():
        best_member = max(crs[m] for m in METHODS[:3])
        assert crs["mdz"] >= 0.93 * best_member, (name, bs, crs)
