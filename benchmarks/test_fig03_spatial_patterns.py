"""Figure 3: spatial correlations in atom position data.

The paper shows six datasets' first-snapshot coordinate traces: stable
zigzag (Copper-B, Helium-B), erratic zigzag (Helium-A, LJ-ish), stair-wise
(Pt), and random (ADK).  This benchmark regenerates the quantitative
fingerprint of each pattern: the relative adjacent-atom delta and the
level-structure fraction.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.analysis.characterization import spatial_profile
from repro.datasets.spec import DATASET_SPECS

DATASETS = ("copper-b", "adk", "helium-a", "helium-b", "pt", "lj")


def run_experiment():
    rows = []
    for name in DATASETS:
        axis = "z" if name == "pt" else "x"
        snap = dataset_stream(name, axis, snapshots=1)[0].astype(np.float64)
        profile = spatial_profile(snap)
        rows.append(
            (
                name,
                DATASET_SPECS[name].spatial_pattern,
                profile.rel_neighbor_delta,
                profile.level_fraction,
            )
        )
    return rows


def test_fig03_spatial_patterns(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Figure 3 — spatial patterns (first snapshot)",
        f"{'dataset':10s} {'pattern':15s} {'rel-delta':>10s} {'level-frac':>11s}",
    ]
    by_name = {}
    for name, pattern, rel_delta, level_frac in rows:
        lines.append(
            f"{name:10s} {pattern:15s} {rel_delta:10.4f} {level_frac:11.3f}"
        )
        by_name[name] = (pattern, rel_delta, level_frac)
    record(results_dir, "fig03_spatial_patterns", "\n".join(lines))
    # Crystalline datasets show strong level structure; random ones do not.
    assert by_name["copper-b"][2] > 0.8
    assert by_name["helium-b"][2] > 0.8
    assert by_name["pt"][2] > 0.8
    assert by_name["adk"][2] < 0.6
