"""Figure 10: ADP tracks the per-buffer best compressor over a long run.

The paper's claim: data patterns are stable in the short term but change
over a long simulation, so the best of VQ/VQT/MT flips at some point
(Figure 10 (a): around snapshot 400 on Copper-B) and ADP follows the flip.

On our Copper-B analog the z axis drifts after snapshot 400: before the
drift the VQ-anchored buffer head (VQT) wins; after it, the collective
offset makes the snapshot-0 reference prediction extremely cheap (a
near-constant code per atom) while the level model degrades, so MT
overtakes.  The winner's identity differs from the paper's panel (there MT
led first), but the reproduced *claim* is the same: a method crossover in
the long term, tracked by ADP within a few percent (see EXPERIMENTS.md).
"""

import numpy as np

from conftest import record, run_once
from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.datasets import load_dataset
from repro.io.batch import stream_error_bound

BS = 10
EPSILON = 1e-3
# Re-evaluate every 10 buffers so the 56-buffer stream sees several trials
# (the paper's interval of 50 operations serves runs of thousands).
ADAPT_INTERVAL = 10


def per_buffer_sizes(stream, method, interval=ADAPT_INTERVAL):
    bound = stream_error_bound(stream, EPSILON)
    config = MDZConfig(method=method, adaptation_interval=interval)
    session = MDZAxisCompressor(config)
    session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
    sizes = [
        len(session.compress_batch(stream[t : t + BS]))
        for t in range(0, stream.shape[0], BS)
    ]
    return np.array(sizes), session.selection_history


def run_experiment():
    stream = load_dataset("copper-b").axis("z").astype(np.float64)
    results = {}
    history = None
    for method in ("vq", "vqt", "mt", "adp"):
        sizes, hist = per_buffer_sizes(stream, method)
        results[method] = sizes
        if method == "adp":
            history = hist
    return results, history


def test_fig10_adaptive_tracking(benchmark, results_dir):
    results, history = run_once(benchmark, run_experiment)
    n_buffers = len(results["adp"])
    switch_buffer = 400 // BS
    before = slice(1, switch_buffer)
    after = slice(switch_buffer + 2, n_buffers)
    lines = ["Figure 10 — per-buffer compressed size (Copper-B, z axis)"]
    lines.append(
        f"{'phase':16s} {'vq':>9s} {'vqt':>9s} {'mt':>9s} {'adp':>9s}"
    )
    for label, sl in (("before switch", before), ("after switch", after)):
        lines.append(
            f"{label:16s} "
            + " ".join(
                f"{results[m][sl].mean():9.0f}"
                for m in ("vq", "vqt", "mt", "adp")
            )
        )
    lines.append(
        "ADP selections: "
        + ", ".join(f"buffer {r.buffer_index}->{r.chosen}" for r in history)
    )
    record(results_dir, "fig10_adaptive_tracking", "\n".join(lines))
    # The crossover: different fixed methods win before vs after the
    # regime change.
    best_before = min(("vq", "vqt", "mt"), key=lambda m: results[m][before].mean())
    best_after = min(("vq", "vqt", "mt"), key=lambda m: results[m][after].mean())
    assert best_before != best_after, "no method crossover materialized"
    # ADP stays within 10% of the best fixed method in both regimes (it
    # may even beat them: its session reference benefits from the winning
    # head of the first trial).
    for sl in (before, after):
        best = min(results[m][sl].mean() for m in ("vq", "vqt", "mt"))
        assert results["adp"][sl].mean() <= 1.10 * best
