"""Figure 8: snapshot similarity with snapshot 0 (Formula (2)).

Copper-A and Pt stay extremely similar to the initial snapshot throughout
the run — the motivation for MT's initial-time-based prediction — while
drifting datasets (ADK) lose similarity quickly.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.analysis.similarity import similarity_profile

TAU = 0.01
DATASETS = ("copper-a", "pt", "copper-b", "adk")


def run_experiment():
    profiles = {}
    for name in DATASETS:
        stream = dataset_stream(name).astype(np.float64)
        norm, sims = similarity_profile(stream, tau=TAU, max_points=21)
        profiles[name] = (norm, sims)
    return profiles


def test_fig08_similarity(benchmark, results_dir):
    profiles = run_once(benchmark, run_experiment)
    lines = [f"Figure 8 — similarity to snapshot 0 (tau={TAU})"]
    for name, (norm, sims) in profiles.items():
        series = " ".join(f"{s:.2f}" for s in sims[:: max(len(sims) // 10, 1)])
        lines.append(f"{name:10s} min={sims.min():.3f}  profile: {series}")
    record(results_dir, "fig08_similarity", "\n".join(lines))
    # Reference-stable solids stay close to snapshot 0 for the whole run
    # (the relative threshold punishes near-zero coordinates, so the floor
    # sits below 1.0 even for static crystals).
    assert profiles["copper-a"][1].min() > 0.6
    assert profiles["pt"][1].min() > 0.85
    # The protein decorrelates almost immediately.
    assert profiles["adk"][1][-1] < 0.3
