"""Table VI: MaxError and NRMSE of decompressed Copper-B at CR = 10.

Each compressor's error bound is calibrated (per axis) to reach a
compression ratio of 10; the paper then compares the resulting MaxError
and NRMSE.  MDZ achieves the lowest distortion on every axis — with the
per-axis ADP choice (VQ-family on the decorrelated x, MT on the smooth z).
MDB is excluded because it cannot reach CR 10 at any bound.
"""

import numpy as np
import pytest

from conftest import record, run_once
from repro.analysis.metrics import max_error, nrmse
from repro.analysis.ratedistortion import calibrate_epsilon_for_cr
from repro.datasets import load_dataset
from repro.io.batch import run_stream

COMPRESSORS = ("mdz", "sz2", "tng", "hrtc", "asn", "lfzip")
TARGET_CR = 10.0
BS = 10
AXES = ("x", "z")
SNAPSHOTS = 200  # calibration runs many compressions: bound the stream


def run_experiment():
    ds = load_dataset("copper-b", snapshots=SNAPSHOTS)
    rows = {}
    for axis in AXES:
        stream = ds.axis(axis)
        reference = stream.astype(np.float64)
        for comp in COMPRESSORS:
            eps, achieved = calibrate_epsilon_for_cr(
                comp, stream, TARGET_CR, buffer_size=BS
            )
            decoded = run_stream(comp, stream, eps, BS, decompress=True)
            rows[(axis, comp)] = (
                achieved,
                max_error(reference, decoded.reconstruction),
                nrmse(reference, decoded.reconstruction),
            )
    # MDB cannot reach CR 10 (the paper's exclusion).
    mdb_excluded = False
    try:
        calibrate_epsilon_for_cr("mdb", ds.axis("x"), TARGET_CR, buffer_size=BS)
    except ValueError:
        mdb_excluded = True
    return rows, mdb_excluded


def test_tab06_error_metrics(benchmark, results_dir):
    rows, mdb_excluded = run_once(benchmark, run_experiment)
    lines = [
        f"Table VI — MaxError and NRMSE at CR={TARGET_CR:.0f} (Copper-B, BS={BS})",
        f"{'axis':4s} {'compressor':10s} {'CR':>6s} {'MaxError':>10s} "
        f"{'NRMSE':>10s}",
    ]
    for (axis, comp), (cr, maxe, nr) in rows.items():
        lines.append(
            f"{axis:4s} {comp:10s} {cr:6.2f} {maxe:10.4f} {nr:10.2e}"
        )
    lines.append(f"MDB excluded (cannot reach CR 10): {mdb_excluded}")
    record(results_dir, "tab06_error_metrics", "\n".join(lines))
    assert mdb_excluded
    for axis in AXES:
        mdz_max = rows[(axis, "mdz")][1]
        mdz_nrmse = rows[(axis, "mdz")][2]
        for comp in COMPRESSORS[1:]:
            # MDZ has the lowest distortion at matched CR (small slack for
            # the +-5% CR calibration tolerance).
            assert mdz_max <= rows[(axis, comp)][1] * 1.10, (axis, comp)
            assert mdz_nrmse <= rows[(axis, comp)][2] * 1.10, (axis, comp)
    # And the margin over prediction-poor baselines is large (paper: the
    # second best has ~2-8x MDZ's MaxError).
    assert rows[("x", "hrtc")][1] > 2 * rows[("x", "mdz")][1]
