"""Load test for the compression service: concurrent session round trips.

Boots an in-process :class:`~repro.service.CompressionService` on an
ephemeral port and drives ``MDZ_SERVICE_CLIENTS`` concurrent tenants
(default 50) through the full session lifecycle — create, batched feeds,
close, archive download, server-side verify — each on its own keep-alive
connection.  Admission-control rejections (``429 over_capacity``) are
*expected* under this load and are retried with the server's
``Retry-After`` hint; anything else counting as an error fails the run.

The numbers land in ``benchmarks/results/BENCH_service.json`` (req/s,
p50/p90/p99 latency, error rate, retry count) so CI can gate on a
nonzero error rate or a p99 blow-up — see the ``service-smoke`` job.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from conftest import record, run_once
from repro import top
from repro.service import CompressionService, ServiceClient, ServiceConfig
from repro.telemetry import prom

#: Concurrent tenants (the issue's acceptance floor is 50).
N_CLIENTS = int(os.environ.get("MDZ_SERVICE_CLIENTS", "50"))
#: Snapshots each tenant streams, split into batched feeds.
N_SNAPSHOTS = int(os.environ.get("MDZ_SERVICE_SNAPSHOTS", "8"))
#: Snapshots per ``(T, N, axes)`` feed request.
BATCH = 4
ATOMS = 48
#: Per-request cap on 429 retries before it counts as a real error.
MAX_RETRIES = 500


def _trajectory(seed: int) -> np.ndarray:
    """Level-structured synthetic positions, distinct per tenant."""
    rng = np.random.default_rng(1000 + seed)
    levels = rng.integers(0, 8, (ATOMS, 3)) * 2.0
    drift = np.cumsum(rng.normal(0, 0.01, (N_SNAPSHOTS, 1, 3)), axis=0)
    noise = rng.normal(0, 0.03, (N_SNAPSHOTS, ATOMS, 3))
    return (levels[None] + drift + noise).astype(np.float32)


async def _timed(latencies, counters, fn, *args, **kwargs):
    """One request with 429-aware retries; returns the final response."""
    for _ in range(MAX_RETRIES):
        t0 = time.perf_counter()
        response = await fn(*args, **kwargs)
        latencies.append((time.perf_counter() - t0) * 1e3)
        counters["requests"] += 1
        if response.status != 429:
            if response.status >= 400:
                counters["errors"] += 1
                counters["failures"].append(
                    (response.status, response.body[:200].decode("latin-1"))
                )
            return response
        counters["retries"] += 1
        await asyncio.sleep(
            min(float(response.headers.get("retry-after", "0.05")), 0.05)
        )
    counters["errors"] += 1
    counters["failures"].append((429, "retry budget exhausted"))
    return response


async def _client_round_trip(port, seed, latencies, counters):
    """create -> batched feeds -> close -> archive -> verify for one tenant."""
    traj = _trajectory(seed)
    async with ServiceClient("127.0.0.1", port) as client:
        created = await _timed(
            latencies,
            counters,
            client.post_json,
            "/v1/sessions",
            {"error_bound": 1e-3, "buffer_size": BATCH},
        )
        if created.status != 201:
            return
        token = created.json()["token"]
        for start in range(0, N_SNAPSHOTS, BATCH):
            fed = await _timed(
                latencies,
                counters,
                client.post_array,
                f"/v1/sessions/{token}/feed",
                traj[start : start + BATCH],
            )
            if fed.status != 200:
                return
        closed = await _timed(
            latencies, counters, client.request,
            "POST", f"/v1/sessions/{token}/close",
        )
        if closed.status != 200:
            return
        stats = closed.json()
        if stats["snapshots"] != N_SNAPSHOTS:
            counters["errors"] += 1
            counters["failures"].append((200, f"lost snapshots: {stats}"))
            return
        archive = await _timed(
            latencies, counters, client.request,
            "GET", f"/v1/sessions/{token}/archive",
        )
        if archive.status != 200:
            return
        counters["archive_bytes"] += len(archive.body)
        counters["raw_bytes"] += traj.nbytes
        verified = await _timed(
            latencies, counters, client.request,
            "POST", "/v1/verify", {}, archive.body,
        )
        if verified.status == 200 and not verified.json().get("intact", False):
            counters["errors"] += 1
            counters["failures"].append((200, "archive failed verify"))


async def _scrape_metrics(port, stop, state):
    """Poll ``GET /metrics`` while the load runs, validating each scrape.

    Every exposition must survive :func:`repro.telemetry.prom.validate`
    (single TYPE per family, cumulative histograms, +Inf == _count) —
    a malformed frame under concurrent-session load fails the run.
    """
    async with ServiceClient("127.0.0.1", port) as client:
        while True:
            response = await client.request("GET", "/metrics")
            if response.status == 200:
                text = response.body.decode("utf-8")
                prom.validate(text)
                state["text"] = text
                state["scrapes"] += 1
            if stop.is_set():
                return
            try:
                await asyncio.wait_for(stop.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass


async def _run_load() -> dict:
    service = CompressionService(ServiceConfig(port=0, session_ttl=600.0))
    await service.start()
    latencies: list[float] = []
    counters = {
        "requests": 0,
        "retries": 0,
        "errors": 0,
        "archive_bytes": 0,
        "raw_bytes": 0,
        "failures": [],
    }
    scrape_state = {"text": "", "scrapes": 0}
    stop_scraping = asyncio.Event()
    scraper = asyncio.create_task(
        _scrape_metrics(service.port, stop_scraping, scrape_state)
    )
    t0 = time.perf_counter()
    scrape_error = None
    try:
        await asyncio.gather(
            *(
                _client_round_trip(service.port, seed, latencies, counters)
                for seed in range(N_CLIENTS)
            )
        )
        elapsed = time.perf_counter() - t0
    finally:
        stop_scraping.set()
        try:
            await scraper
        except Exception as exc:  # validated after shutdown
            scrape_error = exc
        await service.shutdown()
    if scrape_error is not None:
        raise scrape_error
    families = prom.parse(scrape_state["text"])
    totals = top.counter_totals(families)
    lat = np.asarray(latencies)
    return {
        "benchmark": "service_load",
        "clients": N_CLIENTS,
        "snapshots_per_client": N_SNAPSHOTS,
        "batch": BATCH,
        "atoms": ATOMS,
        "max_pending": service.config.max_pending,
        "requests": counters["requests"],
        "retries_429": counters["retries"],
        "errors": counters["errors"],
        "error_rate": counters["errors"] / max(counters["requests"], 1),
        "failures": counters["failures"][:10],
        "elapsed_s": elapsed,
        "req_per_s": counters["requests"] / elapsed,
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        },
        "compression_ratio": (
            counters["raw_bytes"] / counters["archive_bytes"]
            if counters["archive_bytes"]
            else None
        ),
        "metrics": {
            "scrapes": scrape_state["scrapes"],
            "families": len(families),
            "audits": totals.get("mdz_quality_audits_total", 0.0),
            "bound_violations": totals.get(
                "mdz_quality_bound_violations_total", 0.0
            ),
        },
        "_exposition": scrape_state["text"],
    }


def run_experiment() -> dict:
    return asyncio.run(_run_load())


def test_service_load(benchmark, results_dir):
    results = run_once(benchmark, run_experiment)
    exposition = results.pop("_exposition")
    (results_dir / "BENCH_service_metrics.prom").write_text(exposition)
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    lat = results["latency_ms"]
    record(
        results_dir,
        "service_load",
        "\n".join(
            [
                f"Service load — {results['clients']} concurrent tenants, "
                f"{results['snapshots_per_client']} snapshots each",
                f"{'requests':>12s}{'req/s':>10s}{'p50 ms':>10s}"
                f"{'p90 ms':>10s}{'p99 ms':>10s}{'429s':>8s}{'errors':>8s}",
                f"{results['requests']:12d}{results['req_per_s']:10.1f}"
                f"{lat['p50']:10.2f}{lat['p90']:10.2f}{lat['p99']:10.2f}"
                f"{results['retries_429']:8d}{results['errors']:8d}",
                f"compression ratio over the wire: "
                f"{results['compression_ratio']:.2f}",
            ]
        ),
    )
    assert results["clients"] >= 50 or "MDZ_SERVICE_CLIENTS" in os.environ
    assert results["errors"] == 0, results["failures"]
    metrics = results["metrics"]
    assert metrics["scrapes"] >= 1, "never scraped /metrics under load"
    assert metrics["bound_violations"] == 0, metrics
