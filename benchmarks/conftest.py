"""Shared infrastructure for the per-figure/per-table benchmarks.

Every benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round — these are minutes-scale experiments, not microbenchmarks),
prints the paper-style table, and appends it to
``benchmarks/results/<name>.txt`` so the regenerated numbers survive the
pytest output capture.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.io.batch import run_stream
from repro.exceptions import UnsupportedDatasetError

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper headline: ordering of the eight MD datasets in every figure.
MD_ORDER = (
    "copper-a",
    "copper-b",
    "helium-a",
    "helium-b",
    "adk",
    "ifabp",
    "pt",
    "lj",
)

#: The lossy compressor line-up of Figures 12/13/15.
LOSSY_LINEUP = ("mdz", "sz2", "tng", "hrtc", "asn", "mdb", "lfzip")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run a minutes-scale experiment exactly once under the bench timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def dataset_stream(
    name: str, axis: int | str = "x", snapshots: int | None = None
) -> np.ndarray:
    """One float32 coordinate-axis stream of a registry dataset."""
    return load_dataset(name, snapshots=snapshots).axis(axis)


def compression_ratios(
    stream: np.ndarray,
    compressors,
    epsilon: float,
    buffer_size: int,
    original_atoms: int | None = None,
) -> dict[str, float | None]:
    """CR of each compressor on one stream; None marks excluded cases."""
    out: dict[str, float | None] = {}
    for name in compressors:
        try:
            decoded = run_stream(
                name,
                stream,
                epsilon,
                buffer_size,
                original_atoms=original_atoms,
            )
            out[name] = decoded.result.compression_ratio
        except UnsupportedDatasetError:
            out[name] = None
    return out


def format_cr_table(
    title: str,
    rows: dict[str, dict[str, float | None]],
    columns,
) -> str:
    """Dataset-by-compressor CR table in the paper's layout."""
    header = f"{'dataset':12s}" + "".join(f"{c:>10s}" for c in columns)
    lines = [title, header]
    for dataset, crs in rows.items():
        cells = "".join(
            f"{crs[c]:10.2f}" if crs[c] is not None else f"{'N/A':>10s}"
            for c in columns
        )
        lines.append(f"{dataset:12s}" + cells)
    return "\n".join(lines)
