"""Table VII: runtime breakdown of the LJ benchmark with/without MDZ.

The paper runs the LAMMPS LJ benchmark at three scales and two dump
frequencies, with the dump path optionally compressing in situ.  The
reproduced claims: computation dominates the runtime, enabling MDZ leaves
the total duration essentially unchanged, and at high dump rates MDZ
*reduces* the output share (compressed writes beat raw writes).

Scales and step counts are reduced to single-core Python reality; the
PFS-bandwidth model preserves the paper's compression:I/O speed ratio
(see repro.lammps.driver).
"""

from conftest import record, run_once
from repro.lammps import format_breakdown_table, run_lj_benchmark

#: (cells, steps): 500 / 1372 / 2916 atoms.
SCALES = ((5, 240), (7, 240), (9, 160))
DUMP_FREQUENCIES = (8, 80)


def run_experiment():
    results = []
    for cells, steps in SCALES:
        for freq in DUMP_FREQUENCIES:
            for use_mdz in (False, True):
                results.append(
                    run_lj_benchmark(
                        cells=cells,
                        steps=steps,
                        dump_every=freq,
                        use_mdz=use_mdz,
                        buffer_size=10,
                        equilibration=30,
                    )
                )
    return results


def test_tab07_lammps(benchmark, results_dir):
    results = run_once(benchmark, run_experiment)
    record(results_dir, "tab07_lammps", format_breakdown_table(results))
    by_key = {
        (r.n_atoms, r.dump_every, r.use_mdz): r.row() for r in results
    }
    for (atoms, freq, mdz), row in by_key.items():
        if not mdz:
            continue
        raw = by_key[(atoms, freq, False)]
        # Total runtime stays comparable.  (Wall-clock on a shared single
        # core is noisy; the generous factor guards the claim, not the
        # noise.)
        assert row["duration_s"] <= 1.8 * raw["duration_s"], (atoms, freq)
        # At the high dump rate MDZ reduces the output share.
        if freq == min(DUMP_FREQUENCIES):
            assert row["output"] < raw["output"], (atoms, freq)
        # Computation dominates in every configuration.
        assert row["comp"] > 0.5, (atoms, freq)
        assert row["output_cr"] > 2.0, (atoms, freq)
