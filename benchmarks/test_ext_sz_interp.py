"""Extended experiment: the introduction's SZ-Interp claim.

Section II of the paper states that "even general lossy compressors for
scientific applications such as ZFP and SZ-Interp exhibit sub-optimal
results on MD datasets", because they target smooth (3D) meshes while MD
data is batched 2D particle data.  This benchmark measures that claim
directly against our SZ-Interp implementation.
"""

from conftest import dataset_stream, record, run_once
from repro.datasets import DATASET_SPECS
from repro.io.batch import run_stream

DATASETS = ("copper-b", "helium-b", "pt", "lj", "adk")
EPSILON = 1e-3
BS = 10


def run_experiment():
    rows = {}
    for name in DATASETS:
        stream = dataset_stream(name)
        crs = {}
        for comp in ("mdz", "sz-interp", "zfp", "sz2"):
            crs[comp] = run_stream(
                comp,
                stream,
                EPSILON,
                BS,
                original_atoms=DATASET_SPECS[name].paper_atoms,
            ).result.compression_ratio
        rows[name] = crs
    return rows


def test_ext_sz_interp(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Extended — SZ-Interp / ZFP vs MDZ on MD data (eps=1e-3, BS=10)",
        f"{'dataset':10s} {'mdz':>8s} {'sz-interp':>10s} {'zfp':>8s} "
        f"{'sz2':>8s}",
    ]
    for name, crs in rows.items():
        lines.append(
            f"{name:10s} {crs['mdz']:8.2f} {crs['sz-interp']:10.2f} "
            f"{crs['zfp']:8.2f} {crs['sz2']:8.2f}"
        )
    record(results_dir, "ext_sz_interp", "\n".join(lines))
    # The paper's Section II claim: both general scientific compressors
    # trail MDZ on every MD dataset.
    for name, crs in rows.items():
        assert crs["mdz"] > crs["sz-interp"], name
        assert crs["mdz"] > crs["zfp"], name
