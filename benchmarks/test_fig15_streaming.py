"""Figure 15 companion: streaming-pipeline throughput, serial vs parallel.

The streaming subsystem's contract is that fanning batched flush jobs
across a worker pool changes *nothing* about the output: the ``MDZ2``
container produced with ``workers=4`` is byte-identical to the serial
one.  This benchmark verifies that on a Copper-like dataset and records
the end-to-end throughput of both modes over the shared-memory transport
(payloads in ring slots, worker session caches keyed by state digest,
one IPC round trip per flush).  The speedup assertion only runs on hosts
with enough cores — on a single-core box the pool cannot physically win
— but byte identity is checked everywhere.

A third, telemetry-instrumented serial pass emits
``results/BENCH_fig15.json``: the per-stage second/byte breakdown of one
full streaming compression, the baseline future performance PRs have to
beat stage by stage.  A fifth instrumented parallel pass records the
transport counters (``stream.executor.shm_bytes``,
``state_cache.hit``/``miss``, ``dispatched``).  The timed
serial/parallel passes run with telemetry *disabled*, so the recorded
throughput is the production configuration.
"""

import io
import json
import os
import time

import numpy as np

from conftest import record, run_once
from repro.core.config import MDZConfig
from repro.datasets import load_dataset
from repro.stream import StreamingReader, stream_compress
from repro.telemetry import MetricsRecorder, TracingRecorder, recording

EPSILON = 1e-3
BS = 10
SNAPSHOTS = 160
WORKERS = 4


def _run(positions: np.ndarray, workers: int, audit_interval: int | None = None):
    config = (
        MDZConfig(error_bound=EPSILON, buffer_size=BS)
        if audit_interval is None
        else MDZConfig(
            error_bound=EPSILON, buffer_size=BS, audit_interval=audit_interval
        )
    )
    sink = io.BytesIO()
    t0 = time.perf_counter()
    stats = stream_compress(positions, sink, config, workers=workers)
    elapsed = time.perf_counter() - t0
    return sink.getvalue(), stats, elapsed


def run_experiment():
    # The dataset's native float32 — raw_bytes now reflects the true
    # source itemsize, so feeding the source dtype keeps the MB/s
    # denominator comparable with the committed baseline.
    positions = load_dataset("copper-b", snapshots=SNAPSHOTS).positions
    serial_blob, serial_stats, serial_s = _run(positions, workers=0)
    parallel_blob, parallel_stats, parallel_s = _run(
        positions, workers=WORKERS
    )
    # Audit-overhead pair: the default serial pass above runs with the
    # default sampled quality audit (interval 32); an audit-off pass
    # isolates its cost.  Best-of-two on each side keeps single-shot
    # timer jitter from dominating a sub-percent difference.
    _, _, serial_s2 = _run(positions, workers=0)
    audit_off_blob, _, audit_off_s = _run(positions, workers=0,
                                          audit_interval=0)
    _, _, audit_off_s2 = _run(positions, workers=0, audit_interval=0)
    audit_overhead_pct = (
        min(serial_s, serial_s2) / min(audit_off_s, audit_off_s2) - 1.0
    ) * 100.0
    with recording() as rec:
        t0 = time.perf_counter()
        _, profiled_stats, _ = _run(positions, workers=0)
        profiled_s = time.perf_counter() - t0
    # A fourth pass under full span tracing quantifies the *enabled* cost
    # of the observability layer (the timed passes above quantify the
    # disabled cost: they run with the no-op recorder installed).
    tracer = TracingRecorder()
    with recording(tracer):
        t0 = time.perf_counter()
        _run(positions, workers=0)
        traced_s = time.perf_counter() - t0
    # A fifth, metrics-only parallel pass records what the transport
    # actually did: bytes moved through shared memory, worker session
    # cache hits/misses, and batched dispatch counts.
    with recording(MetricsRecorder()) as transport_rec:
        _run(positions, workers=WORKERS)
    return {
        "positions": positions,
        "serial": (serial_blob, serial_stats, serial_s),
        "parallel": (parallel_blob, parallel_stats, parallel_s),
        "audit": (audit_off_blob, min(audit_off_s, audit_off_s2),
                  audit_overhead_pct),
        "profile": (rec.snapshot(), profiled_stats, profiled_s),
        "traced": (tracer.snapshot(), traced_s),
        "transport": transport_rec.snapshot(),
    }


def test_fig15_streaming(benchmark, results_dir):
    out = run_once(benchmark, run_experiment)
    positions = out["positions"]
    serial_blob, serial_stats, serial_s = out["serial"]
    parallel_blob, parallel_stats, parallel_s = out["parallel"]

    # The whole point of the frozen-state job design: parallel execution
    # is indistinguishable from serial at the byte level.
    assert parallel_blob == serial_blob

    # The quality audit reads finished bytes and never writes any:
    # switching it off must not change the container either.
    audit_off_blob, audit_off_s, audit_overhead_pct = out["audit"]
    assert audit_off_blob == serial_blob

    mb = serial_stats.raw_bytes / 1e6
    lines = [
        "Figure 15 companion — streaming pipeline throughput (copper-b, "
        f"{SNAPSHOTS} snapshots, BS={BS})",
        f"{'mode':12s}{'MB/s':>8s}{'CR':>8s}{'bytes':>12s}",
        f"{'serial':12s}{mb / serial_s:8.2f}"
        f"{serial_stats.compression_ratio:8.2f}{len(serial_blob):12d}",
        f"{f'{WORKERS} workers':12s}{mb / parallel_s:8.2f}"
        f"{parallel_stats.compression_ratio:8.2f}{len(parallel_blob):12d}",
        f"byte-identical: {parallel_blob == serial_blob}",
        f"audit overhead (interval {MDZConfig().audit_interval}): "
        f"{audit_overhead_pct:+.2f}%",
    ]
    record(results_dir, "fig15_streaming", "\n".join(lines))

    # Per-stage breakdown from the instrumented pass: the trajectory for
    # future perf PRs to beat.  Stage timers nest (flush ⊇ compress_batch
    # ⊇ huffman/lossless), so each is individually bounded by wall-clock.
    snapshot, profiled_stats, profiled_s = out["profile"]
    assert snapshot["timers"]["stream.flush"]["seconds"] <= profiled_s
    assert (
        0
        < snapshot["counters"]["stream.chunk_bytes"]
        < profiled_stats.bytes_written
    )
    # Timer cells carry streaming percentiles now; surface the latency
    # distribution of the hot stages at the top level so regressions in
    # tail latency (not just totals) are visible in the archived JSON.
    tail_stages = {
        name: {k: cell[k] for k in ("count", "p50", "p95", "p99")}
        for name, cell in snapshot["timers"].items()
        if "p99" in cell
    }
    assert "mdz.compress_batch" in tail_stages

    traced_snapshot, traced_s = out["traced"]
    assert len(traced_snapshot["spans"]) > 0
    transport_counters = {
        name: value
        for name, value in out["transport"]["counters"].items()
        if name.startswith("stream.executor.")
    }
    bench = {
        "benchmark": "fig15_streaming",
        "dataset": "copper-b",
        "snapshots": SNAPSHOTS,
        "buffer_size": BS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_mb_per_s": mb / serial_s,
        "parallel_mb_per_s": mb / parallel_s,
        "audit_interval": MDZConfig().audit_interval,
        "audit_off_mb_per_s": mb / audit_off_s,
        "audit_overhead_pct": audit_overhead_pct,
        "byte_identical": parallel_blob == serial_blob,
        "container_bytes": len(serial_blob),
        "compression_ratio": serial_stats.compression_ratio,
        "profiled_wall_seconds": profiled_s,
        "traced_mb_per_s": mb / traced_s,
        "traced_spans": len(traced_snapshot["spans"]),
        "stages": snapshot["timers"],
        "stage_tail_latency": tail_stages,
        "counters": snapshot["counters"],
        "transport": transport_counters,
    }
    (results_dir / "BENCH_fig15.json").write_text(json.dumps(bench, indent=2))

    # Round trip through the chunked container stays within the stored
    # per-axis absolute bounds.
    reader = StreamingReader(serial_blob)
    restored = reader.read_all()
    for a in range(3):
        err = np.abs(restored[:, :, a] - positions[:, :, a]).max()
        assert err <= reader.error_bounds[a] * (1 + 1e-9)

    # The shared-memory transport moved payload bytes out of the pickle
    # stream and workers reused cached sessions (in-process parallel
    # smoke of the transport counters, independent of core count).
    assert transport_counters.get("stream.executor.shm_bytes", 0) > 0
    assert transport_counters.get("stream.executor.state_cache.hit", 0) > 0

    if (os.cpu_count() or 1) >= WORKERS:
        # With real cores available the pool must pay for itself: the
        # zero-copy transport targets >= 2x serial locally; CI enforces
        # 1.5x (headroom for runner jitter) via the fig15-smoke gate.
        assert parallel_s < serial_s, (serial_s, parallel_s)
