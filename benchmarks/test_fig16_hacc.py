"""Figure 16: generalizability — compression ratios on HACC cosmology data.

Beyond MD, the paper evaluates two HACC particle datasets and finds MDZ
the best compressor on both, 30-56 % ahead of the second best.  TNG and
HRTC cannot run at HACC's original scale (13-16 M particles).
"""

from conftest import (
    LOSSY_LINEUP,
    compression_ratios,
    dataset_stream,
    format_cr_table,
    record,
    run_once,
)
from repro.datasets import DATASET_SPECS

EPSILON = 1e-3
BS = 10


def run_experiment():
    rows = {}
    for name in ("hacc-1", "hacc-2"):
        stream = dataset_stream(name)
        rows[name] = compression_ratios(
            stream,
            LOSSY_LINEUP,
            EPSILON,
            BS,
            original_atoms=DATASET_SPECS[name].paper_atoms,
        )
    return rows


def test_fig16_hacc(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    text = format_cr_table(
        f"Figure 16 — HACC compression ratios (eps={EPSILON}, BS={BS})",
        rows,
        LOSSY_LINEUP,
    )
    margins = []
    for name, crs in rows.items():
        second = max(v for k, v in crs.items() if k != "mdz" and v)
        margins.append(f"{name}: +{100 * (crs['mdz'] / second - 1):.0f}%")
    text += "\nmargins over second best: " + ", ".join(margins)
    record(results_dir, "fig16_hacc", text)
    for name, crs in rows.items():
        second = max(v for k, v in crs.items() if k != "mdz" and v)
        # MDZ leads by a clear margin (paper: +30-56 %).
        assert crs["mdz"] > 1.15 * second, (name, crs)
        # The excluded cases reproduce at HACC scale.
        assert crs["tng"] is None and crs["hrtc"] is None
