"""Figure 12: compression ratios of all lossy compressors, all datasets.

The paper's headline result: MDZ has the highest compression ratio on all
eight datasets at every buffer size, with margins over the second best of
+31 % (Copper-A), +114 % (Copper-B), +38 % (Helium-A), +84 % (Helium-B),
+6 % (ADK), +27 % (IFABP), +96 % (Pt) and +233 % (LJ) at BS=100.  HRTC and
TNG fail on the large datasets (runtime exceptions, Section VII-A5) and
MDB saturates at CR ~ 1-6.

The reproduced margins land close to the paper's on the solids and within
a factor of a few elsewhere; the LJ margin is attenuated by the box-size
scaling of the error bound (see EXPERIMENTS.md).
"""

from conftest import (
    LOSSY_LINEUP,
    MD_ORDER,
    compression_ratios,
    dataset_stream,
    format_cr_table,
    record,
    run_once,
)
from repro.datasets import DATASET_SPECS

EPSILON = 1e-3
BUFFER_SIZES = (10, 50, 100)


def run_experiment():
    tables = {}
    for bs in BUFFER_SIZES:
        rows = {}
        for name in MD_ORDER:
            stream = dataset_stream(name)
            rows[name] = compression_ratios(
                stream,
                LOSSY_LINEUP,
                EPSILON,
                bs,
                original_atoms=DATASET_SPECS[name].paper_atoms,
            )
        tables[bs] = rows
    return tables


def test_fig12_lossy_cr(benchmark, results_dir):
    tables = run_once(benchmark, run_experiment)
    blocks = []
    for bs, rows in tables.items():
        blocks.append(
            format_cr_table(
                f"Figure 12 — lossy compression ratios (eps=1e-3, BS={bs})",
                rows,
                LOSSY_LINEUP,
            )
        )
        margins = []
        for name, crs in rows.items():
            second = max(v for k, v in crs.items() if k != "mdz" and v)
            margins.append(
                f"{name}: +{100 * (crs['mdz'] / second - 1):.0f}%"
            )
        blocks.append("margins over second best: " + ", ".join(margins))
    record(results_dir, "fig12_lossy_cr", "\n\n".join(blocks))
    for bs, rows in tables.items():
        for name, crs in rows.items():
            second = max(v for k, v in crs.items() if k != "mdz" and v)
            # MDZ wins on every dataset at every buffer size.
            assert crs["mdz"] >= second * 0.995, (bs, name, crs)
            # MDB saturates (the paper: CR 1~6; allow its smooth-data tail).
            assert crs["mdb"] is not None and crs["mdb"] < 11, (name, crs)
        # The excluded cases reproduce exactly.
        assert rows["pt"]["tng"] is None and rows["lj"]["tng"] is None
        for big in ("copper-a", "helium-a", "pt", "lj"):
            assert rows[big]["hrtc"] is None
        for small in ("copper-b", "helium-b", "adk", "ifabp"):
            assert rows[small]["hrtc"] is not None
    # The biggest wins are on the temporally-smooth solids, as in the paper.
    bs100 = tables[100]
    margin = lambda n: bs100[n]["mdz"] / max(
        v for k, v in bs100[n].items() if k != "mdz" and v
    )
    assert margin("copper-b") > 1.5
    assert margin("pt") > 1.5
    assert margin("adk") < 1.25
