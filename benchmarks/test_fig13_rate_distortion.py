"""Figure 13: rate-distortion — MDZ needs fewer bits at equal PSNR.

The paper's rate-distortion curves show MDZ reaching ~20 dB higher PSNR at
a fixed bit rate (equivalently ~50 % lower bit rate at fixed PSNR) than
the other lossy compressors.  This benchmark sweeps the error bound on two
contrasting datasets and verifies MDZ's curve dominates.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.analysis.ratedistortion import rate_distortion_sweep
from repro.datasets import DATASET_SPECS

DATASETS = ("copper-b", "helium-b")
COMPRESSORS = ("mdz", "sz2", "tng", "asn", "lfzip")
EPSILONS = (1e-2, 3e-3, 1e-3, 3e-4)
BS = 10
SNAPSHOTS = 150  # decompression-heavy sweep: bound the stream length


def run_experiment():
    curves = {}
    for name in DATASETS:
        stream = dataset_stream(name, snapshots=SNAPSHOTS)
        for comp in COMPRESSORS:
            curves[(name, comp)] = rate_distortion_sweep(
                comp,
                stream,
                buffer_size=BS,
                epsilons=EPSILONS,
                original_atoms=DATASET_SPECS[name].paper_atoms,
            )
    return curves


def _psnr_at_rate(curve, rate: float) -> float:
    """Interpolate the curve's PSNR at a given bit rate."""
    rates = np.array([p.bit_rate for p in curve.points])
    psnrs = np.array([p.psnr for p in curve.points])
    order = np.argsort(rates)
    return float(np.interp(rate, rates[order], psnrs[order]))


def test_fig13_rate_distortion(benchmark, results_dir):
    curves = run_once(benchmark, run_experiment)
    lines = ["Figure 13 — rate distortion (bit rate vs PSNR)"]
    for (name, comp), curve in curves.items():
        pts = "  ".join(
            f"({p.bit_rate:.2f} bits, {p.psnr:.1f} dB)" for p in curve.points
        )
        lines.append(f"{name:10s} {comp:6s} {pts}")
    record(results_dir, "fig13_rate_distortion", "\n".join(lines))
    # At the mid-sweep bit rate, MDZ's PSNR beats every baseline's.
    for name in DATASETS:
        mdz_curve = curves[(name, "mdz")]
        probe_rate = float(
            np.median([p.bit_rate for p in mdz_curve.points])
        )
        mdz_psnr = _psnr_at_rate(mdz_curve, probe_rate)
        for comp in COMPRESSORS[1:]:
            other = _psnr_at_rate(curves[(name, comp)], probe_rate)
            assert mdz_psnr >= other - 0.5, (name, comp, mdz_psnr, other)
