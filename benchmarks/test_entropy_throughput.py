"""Entropy-stage throughput: legacy scalar decode vs the H2 engine.

Measures Huffman encode/decode on a 1M-symbol quantization-code workload
(the geometric-ish residual distribution the SZ stage produces at scale
1024) through both blob formats: the legacy single-stream path
(``streams=1``, scalar table walker) and the interleaved multi-stream
``H2`` path (auto fan-out, round-based vectorized decoder).  The numbers
land in ``benchmarks/results/BENCH_entropy.json`` so CI can gate on decode
throughput regressions — see the ``entropy-smoke`` job.

Throughput is reported in MB/s of *raw symbol bytes* (int64, 8 B/symbol)
plus Msym/s, which is substrate-independent.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import record, run_once
from repro.sz.huffman import HuffmanCodec, clear_codebook_caches
from repro.telemetry import recording

N_SYMBOLS = 1_000_000
#: Acceptance floor: the vectorized decoder must beat the scalar walker by
#: at least this factor on the 1M-symbol workload.
MIN_DECODE_SPEEDUP = 5.0
#: Timed repetitions; the best run is reported (minimum = least noise).
REPS = 3


def _workload() -> np.ndarray:
    """1M quantization-like codes: geometric residuals around mid-scale."""
    rng = np.random.default_rng(1234)
    signs = rng.integers(0, 2, N_SYMBOLS) * 2 - 1
    return (512 + signs * rng.geometric(0.08, N_SYMBOLS)).astype(np.int64)


def _best_seconds(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


#: Encode sub-stages timed by the codec (see ``HuffmanCodec.encode``).
ENCODE_STAGES = ("histogram", "table", "pack", "write")


def _encode_breakdown(data: np.ndarray, streams: int | None) -> dict:
    """Per-stage encode seconds (histogram / table build / pack / write).

    Runs one cold encode under a metrics recorder so a future encode
    regression is attributable to the stage that caused it.
    """
    clear_codebook_caches()
    with recording() as recorder:
        HuffmanCodec.encode(data, streams=streams)
    return {
        stage: recorder.stage_seconds(f"sz.huffman.encode.{stage}")
        for stage in ENCODE_STAGES
    }


def run_experiment() -> dict:
    data = _workload()
    raw_mb = data.size * data.itemsize / 1e6
    clear_codebook_caches()
    legacy_blob = HuffmanCodec.encode(data, streams=1)
    h2_blob = HuffmanCodec.encode(data)
    assert np.array_equal(HuffmanCodec.decode(legacy_blob), data)
    assert np.array_equal(HuffmanCodec.decode(h2_blob), data)
    results = {
        "benchmark": "entropy_throughput",
        "symbols": int(data.size),
        "raw_mb": raw_mb,
        "alphabet": int(np.unique(data).size),
        "paths": {},
    }
    for path, blob, streams in (
        ("legacy", legacy_blob, 1),
        ("h2", h2_blob, None),
    ):
        encode_s = _best_seconds(HuffmanCodec.encode, data, None, streams)
        decode_s = _best_seconds(HuffmanCodec.decode, blob)
        results["paths"][path] = {
            "blob_bytes": len(blob),
            "encode_s": encode_s,
            "decode_s": decode_s,
            "encode_mb_per_s": raw_mb / encode_s,
            "decode_mb_per_s": raw_mb / decode_s,
            "decode_msym_per_s": data.size / decode_s / 1e6,
            "encode_stages_s": _encode_breakdown(data, streams),
        }
    results["decode_speedup"] = (
        results["paths"]["legacy"]["decode_s"]
        / results["paths"]["h2"]["decode_s"]
    )
    return results


def test_entropy_throughput(benchmark, results_dir):
    results = run_once(benchmark, run_experiment)
    (results_dir / "BENCH_entropy.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    legacy = results["paths"]["legacy"]
    h2 = results["paths"]["h2"]
    record(
        results_dir,
        "entropy_throughput",
        "\n".join(
            [
                "Entropy stage — 1M-symbol Huffman throughput (MB/s of raw int64)",
                f"{'path':10s}{'encode':>10s}{'decode':>10s}{'Msym/s':>10s}"
                f"{'blob KB':>10s}",
                f"{'legacy':10s}{legacy['encode_mb_per_s']:10.1f}"
                f"{legacy['decode_mb_per_s']:10.1f}"
                f"{legacy['decode_msym_per_s']:10.2f}"
                f"{legacy['blob_bytes'] / 1e3:10.1f}",
                f"{'h2':10s}{h2['encode_mb_per_s']:10.1f}"
                f"{h2['decode_mb_per_s']:10.1f}"
                f"{h2['decode_msym_per_s']:10.2f}"
                f"{h2['blob_bytes'] / 1e3:10.1f}",
                f"decode speedup: {results['decode_speedup']:.1f}x",
            ]
        ),
    )
    assert results["decode_speedup"] >= MIN_DECODE_SPEEDUP, results
