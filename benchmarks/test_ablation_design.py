"""Ablations of MDZ's design choices (beyond the paper's own tables).

Two knobs the paper fixes by argument rather than by sweep:

* **Adaptation interval** (Section VI-D fixes 50): trialling every buffer
  maximizes tracking but pays ~3x compression work; trialling never risks
  staying on a stale method.  The sweep shows the interval trading trial
  overhead against compression ratio.
* **Level-model caching** (Section VI-A computes the k-means fit once per
  simulation): refitting per buffer multiplies compression time for no
  ratio gain, which is exactly why the paper caches it.
"""

import time

import numpy as np

from conftest import record, run_once
from repro.baselines.api import SessionMeta
from repro.cluster.level_detect import detect_levels
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.datasets import load_dataset
from repro.io.batch import stream_error_bound

BS = 10
EPSILON = 1e-3


def _compress_stream(stream, config):
    bound = stream_error_bound(stream, EPSILON)
    session = MDZAxisCompressor(config)
    session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
    t0 = time.perf_counter()
    total = sum(
        len(session.compress_batch(stream[t : t + BS]))
        for t in range(0, stream.shape[0], BS)
    )
    return total, time.perf_counter() - t0


def run_interval_ablation():
    stream = load_dataset("copper-b").axis("z").astype(np.float64)
    rows = {}
    for interval in (1, 5, 10, 50, 10_000):
        config = MDZConfig(method="adp", adaptation_interval=interval)
        size, seconds = _compress_stream(stream, config)
        rows[interval] = (stream.size * 4 / size, seconds)
    return rows


def run_caching_ablation():
    stream = load_dataset("copper-b", snapshots=200).axis("x").astype(
        np.float64
    )
    # Cached (production) path: the session fits once.
    cached_size, cached_seconds = _compress_stream(
        stream, MDZConfig(method="vq")
    )
    # Ablated path: force a fresh fit per buffer by reusing the session but
    # resetting its level model before every batch.
    bound = stream_error_bound(stream, EPSILON)
    session = MDZAxisCompressor(MDZConfig(method="vq"))
    session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
    t0 = time.perf_counter()
    refit_size = 0
    for t in range(0, stream.shape[0], BS):
        session._state.levels.reset()
        refit_size += len(session.compress_batch(stream[t : t + BS]))
    refit_seconds = time.perf_counter() - t0
    fit_seconds = _time_one_fit(stream[0])
    return {
        "cached": (stream.size * 4 / cached_size, cached_seconds),
        "refit": (stream.size * 4 / refit_size, refit_seconds),
        "single_fit_seconds": fit_seconds,
    }


def _time_one_fit(snapshot) -> float:
    t0 = time.perf_counter()
    detect_levels(snapshot, seed=0)
    return time.perf_counter() - t0


def test_ablation_adaptation_interval(benchmark, results_dir):
    rows = run_once(benchmark, run_interval_ablation)
    lines = [
        "Ablation — ADP adaptation interval (Copper-B z, eps=1e-3, BS=10)",
        f"{'interval':>9s} {'CR':>8s} {'seconds':>9s}",
    ]
    for interval, (cr, seconds) in rows.items():
        label = "never" if interval >= 10_000 else str(interval)
        lines.append(f"{label:>9s} {cr:8.2f} {seconds:9.2f}")
    record(results_dir, "ablation_adaptation_interval", "\n".join(lines))
    # Trialling every buffer costs real time over a sparse interval...
    assert rows[1][1] > 1.3 * rows[50][1]
    # ...and on regime-changing data, never re-trialling costs ratio
    # relative to some periodic re-evaluation.
    best_periodic_cr = max(rows[i][0] for i in (1, 5, 10, 50))
    assert rows[10_000][0] <= best_periodic_cr * 1.001


def test_ablation_level_model_caching(benchmark, results_dir):
    result = run_once(benchmark, run_caching_ablation)
    cached_cr, cached_s = result["cached"]
    refit_cr, refit_s = result["refit"]
    lines = [
        "Ablation — level-model caching (Copper-B x, VQ, eps=1e-3, BS=10)",
        f"{'variant':12s} {'CR':>8s} {'seconds':>9s}",
        f"{'cached':12s} {cached_cr:8.2f} {cached_s:9.2f}",
        f"{'refit/buffer':12s} {refit_cr:8.2f} {refit_s:9.2f}",
        f"one k-means fit: {result['single_fit_seconds'] * 1e3:.0f} ms",
    ]
    record(results_dir, "ablation_level_caching", "\n".join(lines))
    # Refitting per buffer costs materially more time...
    assert refit_s > 1.5 * cached_s
    # ...for essentially no compression-ratio gain (stable level pattern).
    assert refit_cr <= cached_cr * 1.02
