"""Table IV: compression ratios of SZ in 1D and 2D modes.

The paper shows SZ2's 2D mode (space x time Lorenzo) beating its 1D mode
by up to ~2x on Pt/LJ/Helium-A at BS=10, eps=1e-3 — which is why all other
experiments run SZ2 in 2D mode.
"""

from conftest import dataset_stream, record, run_once
from repro.io.batch import run_stream

DATASETS = ("pt", "lj", "helium-a")
EPSILON = 1e-3
BS = 10


def run_experiment():
    rows = {}
    for name in DATASETS:
        for axis in ("x", "y", "z"):
            stream = dataset_stream(name, axis)
            cr_1d = run_stream(
                "sz2-1d", stream, EPSILON, BS
            ).result.compression_ratio
            cr_2d = run_stream(
                "sz2-2d", stream, EPSILON, BS
            ).result.compression_ratio
            rows[(name, axis)] = (cr_1d, cr_2d)
    return rows


def test_tab04_sz_modes(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Table IV — SZ2 compression ratios in 1D and 2D modes "
        "(BS=10, eps=1e-3)",
        f"{'dataset':10s} {'axis':4s} {'1D':>8s} {'2D':>8s} {'gain':>7s}",
    ]
    for (name, axis), (cr_1d, cr_2d) in rows.items():
        lines.append(
            f"{name:10s} {axis:4s} {cr_1d:8.2f} {cr_2d:8.2f} "
            f"{100 * (cr_2d / cr_1d - 1):+6.0f}%"
        )
    record(results_dir, "tab04_sz_modes", "\n".join(lines))
    # 2D wins on every axis of every dataset (paper: up to +200 %).
    for key, (cr_1d, cr_2d) in rows.items():
        assert cr_2d > cr_1d, key
