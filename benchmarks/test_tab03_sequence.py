"""Table III: Seq-1 vs Seq-2 quantization-code ordering (Helium-B, MT).

The paper reports Seq-2 (particle-major) improving compression ratio by
~38 % over Seq-1 (snapshot-major) on Helium-B at BS=10 across three
value-range error bounds and all three axes.
"""

import numpy as np

from conftest import record, run_once
from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.datasets import load_dataset
from repro.io.batch import stream_error_bound

EPSILONS = (1e-1, 5e-2, 1e-2)
BS = 10


def compress_total(stream, epsilon, sequence_mode):
    bound = stream_error_bound(stream, epsilon)
    session = MDZAxisCompressor(
        MDZConfig(method="mt", sequence_mode=sequence_mode)
    )
    session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
    return sum(
        len(session.compress_batch(stream[t : t + BS]))
        for t in range(0, stream.shape[0], BS)
    )


def run_experiment():
    ds = load_dataset("helium-b")
    rows = {}
    for axis in ("x", "y", "z"):
        stream = ds.axis(axis).astype(np.float64)
        raw = stream.size * 4
        for eps in EPSILONS:
            seq1 = raw / compress_total(stream, eps, "seq1")
            seq2 = raw / compress_total(stream, eps, "seq2")
            rows[(axis, eps)] = (seq1, seq2)
    return rows


def test_tab03_sequence(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Table III — CR of Helium-B with different sequence settings "
        "(BS=10, method=MT)",
        f"{'axis':4s} {'eps':>8s} {'Seq-1':>8s} {'Seq-2':>8s} {'gain':>7s}",
    ]
    for (axis, eps), (seq1, seq2) in rows.items():
        lines.append(
            f"{axis:4s} {eps:8.0e} {seq1:8.1f} {seq2:8.1f} "
            f"{100 * (seq2 / seq1 - 1):+6.1f}%"
        )
    record(results_dir, "tab03_sequence", "\n".join(lines))
    # Seq-2 wins wherever the quantization codes carry structure (at the
    # coarsest bound nearly all codes are zero, so ordering is moot); the
    # magnitude is attenuated vs the paper's +38 % because DEFLATE's 32 KB
    # window already reaches across Helium-B's small snapshots — see
    # EXPERIMENTS.md.
    for (axis, eps), (seq1, seq2) in rows.items():
        if eps <= 5e-2:
            assert seq2 > seq1, (axis, eps)
