"""Table V: lossless compressors achieve only CR ~ 1-2 on MD data.

The paper evaluates Zstd/Zlib/Brotli (general dictionary coders) and
fpzip/FPC/ZFP (floating-point specialists) on four datasets: every ratio
lands between ~1.0 and ~1.5, because the random mantissa bits of
floating-point coordinates defeat lossless pattern matching.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.io.batch import run_stream

DATASETS = ("copper-a", "helium-b", "adk", "lj")
COMPRESSORS = ("zstd", "zlib", "brotli", "fpzip", "fpc", "zfp-lossless")
BS = 10
#: FPC codes sequentially in Python; cap the stream so Table V stays fast.
MAX_SNAPSHOTS = 60


def run_experiment():
    rows = {}
    for name in DATASETS:
        stream = dataset_stream(name, snapshots=MAX_SNAPSHOTS)
        crs = {}
        for comp in COMPRESSORS:
            crs[comp] = run_stream(
                comp, stream, None, BS
            ).result.compression_ratio
        rows[name] = crs
    return rows


def test_tab05_lossless(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Table V — lossless compression ratios",
        f"{'dataset':10s}" + "".join(f"{c:>10s}" for c in COMPRESSORS),
    ]
    for name, crs in rows.items():
        lines.append(
            f"{name:10s}" + "".join(f"{crs[c]:10.2f}" for c in COMPRESSORS)
        )
    record(results_dir, "tab05_lossless", "\n".join(lines))
    # Every lossless ratio sits in the paper's 1-2 band.
    for name, crs in rows.items():
        for comp, cr in crs.items():
            assert 0.9 <= cr <= 2.5, (name, comp, cr)
    # And far below what the lossy compressors reach at eps=1e-3.
    lossy = run_stream(
        "mdz", dataset_stream("copper-a", snapshots=MAX_SNAPSHOTS), 1e-3, BS
    ).result.compression_ratio
    assert lossy > 4 * max(rows["copper-a"].values())
