"""Figure 14: only MDZ preserves the radial distribution function at CR=10.

The paper decompresses Copper-B at a fixed compression ratio of 10 and
computes the RDF: MDZ's curve overlays the original while every baseline's
is visibly distorted (broadened peaks = corrupted local density).  This
benchmark reproduces the comparison via the RMS deviation between the
original and decompressed g(r).
"""

import numpy as np

from conftest import record, run_once
from repro.analysis.ratedistortion import calibrate_epsilon_for_cr
from repro.analysis.rdf import radial_distribution, rdf_deviation
from repro.datasets import load_dataset
from repro.io.batch import run_stream

COMPRESSORS = ("mdz", "sz2", "tng", "hrtc", "asn", "lfzip")
TARGET_CR = 10.0
BS = 10
SNAPSHOTS = 100


def run_experiment():
    ds = load_dataset("copper-b", snapshots=SNAPSHOTS)
    # Compress all three axes at a per-axis bound calibrated to CR 10.
    recon = np.empty((SNAPSHOTS, ds.atoms, 3))
    deviations = {}
    r_ref, g_ref = radial_distribution(
        ds.positions[-1].astype(np.float64), ds.box
    )
    for comp in COMPRESSORS:
        for a in range(3):
            stream = ds.axis(a)
            eps, _ = calibrate_epsilon_for_cr(
                comp, stream, TARGET_CR, buffer_size=BS
            )
            decoded = run_stream(comp, stream, eps, BS, decompress=True)
            recon[:, :, a] = decoded.reconstruction
        _, g_test = radial_distribution(recon[-1], ds.box)
        deviations[comp] = rdf_deviation(g_ref, g_test)
    return deviations, float(g_ref.max())


def test_fig14_rdf(benchmark, results_dir):
    deviations, g_peak = run_once(benchmark, run_experiment)
    lines = [
        f"Figure 14 — RDF deviation from the original at CR={TARGET_CR:.0f} "
        f"(Copper-B; g(r) peak = {g_peak:.1f})",
        f"{'compressor':10s} {'RMS dev of g(r)':>16s}",
    ]
    for comp, dev in deviations.items():
        lines.append(f"{comp:10s} {dev:16.4f}")
    record(results_dir, "fig14_rdf", "\n".join(lines))
    # MDZ's RDF is the closest to the original...
    best_other = min(v for k, v in deviations.items() if k != "mdz")
    assert deviations["mdz"] <= best_other
    # ...and several times closer than the prediction-poor baselines.
    assert deviations["mdz"] < 0.35 * deviations["hrtc"]
    assert deviations["mdz"] < 0.35 * deviations["sz2"]
