"""Figure 4: frequency distributions of atom position data.

The paper splits the datasets into multiple-peak-dominated distributions
(Figure 4 (a)(c)(d): Copper-B, Helium-A, Helium-B — the crystalline level
structure of Takeaway 2) and rather uniform ones ((b)(e)(f): ADK, Pt, LJ).
This benchmark counts the prominent histogram peaks per dataset.

Note on Pt: the paper's 2.37M-atom surface run smears the in-plane
histogram to near-uniform; at our scaled size the in-plane lattice is still
resolvable, so Pt is reported but only the unambiguous classes are
asserted.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.analysis.characterization import histogram_peaks

MULTI_PEAK = ("copper-b", "helium-a", "helium-b")
UNIFORM = ("adk", "lj")
REPORT_ONLY = ("pt",)


def run_experiment():
    counts = {}
    for name in MULTI_PEAK + UNIFORM + REPORT_ONLY:
        snap = dataset_stream(name, "x", snapshots=1)[0].astype(np.float64)
        counts[name] = histogram_peaks(snap)
    return counts


def test_fig04_histograms(benchmark, results_dir):
    counts = run_once(benchmark, run_experiment)
    lines = ["Figure 4 — histogram peak counts (x axis)",
             f"{'dataset':10s} {'peaks':>6s}"]
    for name, peaks in counts.items():
        lines.append(f"{name:10s} {peaks:6d}")
    record(results_dir, "fig04_histograms", "\n".join(lines))
    for name in MULTI_PEAK:
        assert counts[name] >= 5, f"{name} should be multi-peak"
    for name in UNIFORM:
        assert counts[name] <= 4, f"{name} should be near-uniform"
