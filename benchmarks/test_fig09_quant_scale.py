"""Figure 9: compressor performance vs quantization scale (Helium-B).

The paper sweeps the quantization scale from 64 to 65536 and shows the
compression speed of VQ/VQT/MT dropping severely at large scales (bigger
Huffman trees) while small scales hurt ratio (more out-of-scope points);
1024 is the adopted sweet spot.
"""

import time

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.io.batch import stream_error_bound

SCALES = (64, 256, 1024, 4096, 16384, 65536)
METHODS = ("vq", "vqt", "mt")
EPSILON = 1e-3
BS = 10


def run_experiment():
    stream = dataset_stream("helium-b", snapshots=300).astype(np.float64)
    bound = stream_error_bound(stream, EPSILON)
    mb = stream.size * 4 / 1e6
    rows = {}
    for scale in SCALES:
        per_method = {}
        for method in METHODS:
            session = MDZAxisCompressor(
                MDZConfig(method=method, quantization_scale=scale)
            )
            session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
            t0 = time.perf_counter()
            total = sum(
                len(session.compress_batch(stream[t : t + BS]))
                for t in range(0, stream.shape[0], BS)
            )
            elapsed = time.perf_counter() - t0
            per_method[method] = (mb / elapsed, stream.size * 4 / total)
        rows[scale] = per_method
    return rows


def test_fig09_quant_scale(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Figure 9 — speed (MB/s) and CR vs quantization scale "
        "(Helium-B, eps=1e-3, BS=10)",
        f"{'scale':>7s}"
        + "".join(f"{m + '-MB/s':>12s}{m + '-CR':>10s}" for m in METHODS),
    ]
    for scale, per_method in rows.items():
        cells = "".join(
            f"{per_method[m][0]:12.2f}{per_method[m][1]:10.2f}"
            for m in METHODS
        )
        lines.append(f"{scale:7d}" + cells)
    record(results_dir, "fig09_quant_scale", "\n".join(lines))
    # The paper's shape, at this substrate's attenuated magnitude (see
    # EXPERIMENTS.md): huge scales lose ratio and speed to the dense
    # codebook, and the adopted default (1024) stays near the optimum on
    # both axes.
    for method in METHODS:
        assert rows[1024][method][0] >= 0.9 * rows[65536][method][0], method
        assert rows[65536][method][1] < rows[1024][method][1], method
        best_cr = max(rows[s][method][1] for s in SCALES)
        assert rows[1024][method][1] > 0.9 * best_cr, method
