"""Figure 5: temporal correlations in atom position data.

The paper identifies two classes: datasets whose values change relatively
largely/frequently between saves (Copper-B, ADK, Helium-B) and datasets
with very slight changes (Helium-A, Pt, LJ — Takeaway 4).  This benchmark
computes the per-snapshot relative displacement for all six.
"""

import numpy as np

from conftest import dataset_stream, record, run_once
from repro.analysis.characterization import temporal_smoothness
from repro.datasets.spec import DATASET_SPECS

DATASETS = ("copper-b", "adk", "helium-a", "helium-b", "pt", "lj")


def run_experiment():
    rows = {}
    for name in DATASETS:
        stream = dataset_stream(name).astype(np.float64)
        rows[name] = temporal_smoothness(stream)
    return rows


def test_fig05_temporal(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Figure 5 — temporal correlation classes",
        f"{'dataset':10s} {'rel-step':>10s} {'class':>8s} {'paper':>8s}",
    ]
    for name, ts in rows.items():
        got = "smooth" if ts.smooth else "large"
        want = DATASET_SPECS[name].temporal_class
        lines.append(f"{name:10s} {ts.rel_step:10.2e} {got:>8s} {want:>8s}")
    record(results_dir, "fig05_temporal", "\n".join(lines))
    for name, ts in rows.items():
        expected = DATASET_SPECS[name].temporal_class == "smooth"
        assert ts.smooth == expected, name
