"""Table II: snapshot-0-based prediction vs the Lorenzo predictor.

The paper motivates MT with a table showing that predicting a snapshot
from the *initial* snapshot yields far lower prediction error than the
traditional spatial Lorenzo predictor on reference-stable datasets
(Copper-A, Pt).  This benchmark measures the mean absolute prediction
error of both predictors across the stream.
"""

import numpy as np

from conftest import dataset_stream, record, run_once

DATASETS = ("copper-a", "pt", "copper-b")


def run_experiment():
    rows = {}
    for name in DATASETS:
        stream = dataset_stream(name).astype(np.float64)
        reference_err = np.abs(stream[1:] - stream[0][None, :]).mean()
        lorenzo_err = np.abs(np.diff(stream, axis=1)).mean()
        rows[name] = (float(reference_err), float(lorenzo_err))
    return rows


def test_tab02_prediction_error(benchmark, results_dir):
    rows = run_once(benchmark, run_experiment)
    lines = [
        "Table II — mean |prediction error|: snapshot-0 vs Lorenzo",
        f"{'dataset':10s} {'snapshot-0':>12s} {'lorenzo':>12s} {'ratio':>8s}",
    ]
    for name, (ref, lor) in rows.items():
        lines.append(f"{name:10s} {ref:12.4f} {lor:12.4f} {lor / ref:8.1f}x")
    record(results_dir, "tab02_prediction_error", "\n".join(lines))
    # On the reference-stable solids, snapshot-0 prediction dominates.
    for name in ("copper-a", "pt"):
        ref, lor = rows[name]
        assert lor > 5 * ref, f"{name}: Lorenzo should be far worse"
