"""Prometheus text exposition (format v0.0.4) for recorder snapshots.

:func:`render` maps a :meth:`MetricsRecorder.snapshot
<repro.telemetry.recorder.MetricsRecorder.snapshot>` to the Prometheus
text format: counters become counters (``_total`` suffix), gauges become
gauges, and stage timers become native Prometheus histograms — the
recorder's fixed power-of-two buckets translate directly to cumulative
``_bucket{le="..."}`` series, plus ``_sum``/``_count``.  Every metric is
namespaced ``mdz_`` and dotted names flatten to underscores, so
``sz.huffman.encode`` scrapes as ``mdz_sz_huffman_encode_seconds``.

:func:`parse` is the matching miniature parser: enough of the format to
validate our own exposition in CI and to drive ``mdz top`` — it is not a
general Prometheus client.  :func:`validate` wraps it with structural
checks (TYPE declarations, cumulative histogram buckets, ``+Inf`` bucket
equal to ``_count``) and raises :class:`ValueError` on any violation.

No third-party dependency is involved on either side; both halves are
plain string processing over the documented line format.
"""

from __future__ import annotations

import math
import re

from .timeseries import TIMER_BUCKETS

#: Prefix applied to every exported metric family.
NAMESPACE = "mdz"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def metric_name(name: str, suffix: str = "") -> str:
    """Flatten a dotted recorder name into a Prometheus family name.

    Non-alphanumeric characters become underscores and the ``mdz``
    namespace is prepended; placeholder segments survive as plain
    underscores so derived names stay valid.
    """
    flat = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return f"{NAMESPACE}_{flat}{suffix}"


def _fmt(value: float) -> str:
    """Sample-value formatting: integral floats print as integers."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labelset(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _collect_families(
    snapshot: dict, labels: dict | None, families: dict[str, dict]
) -> None:
    """Fold one snapshot's samples into the family table."""

    def family(name: str, kind: str) -> list:
        entry = families.setdefault(name, {"type": kind, "lines": []})
        if entry["type"] != kind:
            raise ValueError(
                f"metric family {name!r} declared both as "
                f"{entry['type']} and {kind}"
            )
        return entry["lines"]

    tags = _labelset(labels)
    for name, value in snapshot.get("counters", {}).items():
        fam = metric_name(name, "_total")
        family(fam, "counter").append(f"{fam}{tags} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        fam = metric_name(name)
        family(fam, "gauge").append(f"{fam}{tags} {_fmt(value)}")
        age = snapshot.get("gauge_age_seconds", {}).get(name)
        if age is not None:
            stale = metric_name(name, "_age_seconds")
            family(stale, "gauge").append(f"{stale}{tags} {_fmt(age)}")
    for name, view in snapshot.get("timers", {}).items():
        fam = metric_name(name, "_seconds")
        lines = family(fam, "histogram")
        hist = {int(k): int(v) for k, v in view.get("hist", {}).items()}
        count = int(view.get("count", 0))
        cum = 0
        for index, edge in enumerate(TIMER_BUCKETS):
            cum += hist.get(index, 0)
            le = _labelset({**(labels or {}), "le": _fmt(edge)})
            lines.append(f"{fam}_bucket{le} {cum}")
        le = _labelset({**(labels or {}), "le": "+Inf"})
        lines.append(f"{fam}_bucket{le} {count}")
        lines.append(f"{fam}_sum{tags} {_fmt(view.get('seconds', 0.0))}")
        lines.append(f"{fam}_count{tags} {count}")


def render_many(parts: list[tuple[dict, dict | None]]) -> str:
    """Several labeled snapshots as one valid exposition.

    ``parts`` is a list of ``(snapshot, labels)`` pairs — e.g. the
    server-wide recorder unlabeled plus one part per live session
    labeled ``{"session": token}``.  Samples group under a single
    ``# TYPE`` declaration per family (the format forbids repeating
    one), which is why this cannot be done by concatenating
    :func:`render` outputs.
    """
    families: dict[str, dict] = {}
    for snapshot, labels in parts:
        _collect_families(snapshot, labels, families)
    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['type']}")
        lines.extend(entry["lines"])
    return "\n".join(lines) + "\n"


def render(snapshot: dict, labels: dict | None = None) -> str:
    """One recorder snapshot as Prometheus text-format families.

    ``labels`` are stamped on every sample (e.g. ``{"session": token}``
    for per-tenant series).  Families are emitted sorted by name, each
    preceded by its ``# TYPE`` declaration.
    """
    return render_many([(snapshot, labels)])


# -- parsing / validation -------------------------------------------------


def _parse_labels(raw: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label set: {raw!r}")
        value = match.group("value")
        value = (
            value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        )
        labels[match.group("key")] = value
        pos = match.end()
    return labels


def _parse_value(raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"malformed sample value: {raw!r}") from None


def parse(text: str) -> dict[str, dict]:
    """Parse Prometheus text format into families.

    Returns ``{family: {"type": str | None, "samples": [(name, labels,
    value), ...]}}`` where histogram child series (``_bucket``/``_sum``/
    ``_count``) group under their declared family name.  Raises
    :class:`ValueError` on lines that fit neither a comment, a sample,
    nor blank.
    """
    families: dict[str, dict] = {}
    declared: dict[str, str] = {}

    def family_for(sample: str) -> str:
        for base, kind in declared.items():
            if kind == "histogram" and sample in (
                f"{base}_bucket", f"{base}_sum", f"{base}_count"
            ):
                return base
        return sample

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
                name, kind = parts[2], parts[3].strip()
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if name in declared:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                declared[name] = kind
                families.setdefault(name, {"type": kind, "samples": []})
                families[name]["type"] = kind
            continue  # HELP and other comments pass through
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        name = match.group("name")
        if not _NAME_OK.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        family = family_for(name)
        entry = families.setdefault(family, {"type": None, "samples": []})
        entry["samples"].append((name, labels, value))
    return families


def validate(text: str) -> dict[str, dict]:
    """Parse and structurally validate an exposition; returns families.

    Beyond :func:`parse`, checks that every sample belongs to a declared
    family and that each histogram's buckets are cumulative with a
    ``+Inf`` bucket equal to its ``_count``.
    """
    families = parse(text)
    for family, entry in families.items():
        kind = entry["type"]
        if kind is None:
            raise ValueError(f"{family}: samples without a TYPE declaration")
        if kind != "histogram":
            continue
        # Group histogram children by their non-`le` label set.
        series: dict[tuple, dict] = {}
        for name, labels, value in entry["samples"]:
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            slot = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if name == f"{family}_bucket":
                if "le" not in labels:
                    raise ValueError(f"{family}: bucket sample without le label")
                slot["buckets"].append((float(labels["le"]), value))
            elif name == f"{family}_sum":
                slot["sum"] = value
            elif name == f"{family}_count":
                slot["count"] = value
            else:
                raise ValueError(f"{family}: unexpected child sample {name!r}")
        for key, slot in series.items():
            buckets = sorted(slot["buckets"])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ValueError(f"{family}{dict(key)}: histogram lacks +Inf bucket")
            counts = [n for _, n in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ValueError(f"{family}{dict(key)}: buckets not cumulative")
            if slot["count"] is None or slot["sum"] is None:
                raise ValueError(f"{family}{dict(key)}: missing _sum/_count")
            if counts[-1] != slot["count"]:
                raise ValueError(
                    f"{family}{dict(key)}: +Inf bucket != _count "
                    f"({counts[-1]} != {slot['count']})"
                )
    return families


def histogram_quantile(entry: dict, q: float, labels: dict | None = None) -> float | None:
    """Estimate the ``q``-quantile of one parsed histogram family.

    ``entry`` is one :func:`parse` family of type histogram; ``labels``
    filters child series (ignoring ``le``).  Returns ``None`` when the
    histogram is empty.  Mirrors PromQL's ``histogram_quantile``: linear
    position within the containing bucket's cumulative counts, reported
    at the bucket's upper edge (geometric detail is below scrape
    resolution anyway).
    """
    want = labels or {}
    buckets: list[tuple[float, float]] = []
    for name, lbls, value in entry.get("samples", []):
        if not name.endswith("_bucket") or "le" not in lbls:
            continue
        if any(lbls.get(k) != v for k, v in want.items()):
            continue
        buckets.append((float(lbls["le"]), value))
    buckets.sort()
    if not buckets or buckets[-1][1] <= 0:
        return None
    total = buckets[-1][1]
    target = q * total
    prev_edge = 0.0
    prev_cum = 0.0
    for edge, cum in buckets:
        if cum >= target:
            if math.isinf(edge):
                return prev_edge
            if cum == prev_cum:
                return edge
            frac = (target - prev_cum) / (cum - prev_cum)
            return prev_edge + frac * (edge - prev_edge)
        prev_edge, prev_cum = edge, cum
    return buckets[-1][0]
