"""Trace exporters: Chrome trace-event JSON (Perfetto) and provenance JSONL.

A :class:`~repro.telemetry.tracing.TracingRecorder` snapshot carries
``spans`` (wall-aligned, pid/tid-tagged, parent-linked intervals) and
``provenance`` (one record per compressed buffer).  This module turns
those into files other tools read:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the ``{"traceEvents": [...]}`` object form), using
  complete ``"X"`` events, loadable by Perfetto (https://ui.perfetto.dev)
  and ``chrome://tracing``.  Session and worker processes land on
  separate ``pid`` tracks, named via ``"M"`` metadata events; parent
  links ride in ``args`` so a span can always be traced back.
* :func:`provenance_lines` / :func:`write_provenance` — one JSON object
  per line per compressed buffer, the machine-readable answer to "which
  method coded chunk (buffer, axis) and what did it cost".
* :func:`validate_chrome_trace` — structural validation (required keys,
  ``ts`` monotonicity, non-negative durations, matched ``B``/``E``
  pairs) shared by the test suite and the CI ``trace-smoke`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Event phases the validator accepts.
_KNOWN_PHASES = {"X", "B", "E", "M", "i", "C"}


def to_chrome_trace(snapshot: dict) -> dict:
    """Convert one tracing snapshot to a Chrome trace-event object.

    Timestamps are rebased so the earliest span starts at ``ts=0`` (the
    absolute epoch is preserved in ``otherData``).  Spans become complete
    ``"X"`` events sorted by ``ts``; process tracks are named after their
    role (the session pid from ``snapshot["trace"]`` vs. merged worker
    pids).
    """
    spans = snapshot.get("spans", [])
    session_pid = snapshot.get("trace", {}).get("pid")
    base = min((s["start"] for s in spans), default=0.0)
    events = []
    pids: dict[int, str] = {}
    for span in sorted(spans, key=lambda s: s["start"]):
        pid = int(span.get("pid", 0))
        if pid not in pids:
            pids[pid] = (
                "mdz session" if pid == session_pid else f"mdz worker {pid}"
            )
        args = {
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
        }
        args.update(span.get("attrs", {}))
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round((span["start"] - base) * 1e6, 3),
                "dur": round(max(span["duration"], 0.0) * 1e6, 3),
                "pid": pid,
                "tid": int(span.get("tid", 0)) % 2**31,
                "args": args,
            }
        )
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(pids.items())
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "mdz trace",
            "epoch_unix_s": base,
            "spans": len(events),
        },
    }


def write_chrome_trace(path: str | Path, snapshot: dict) -> dict:
    """Write the Chrome trace for ``snapshot`` to ``path``; returns it."""
    trace = to_chrome_trace(snapshot)
    Path(path).write_text(json.dumps(trace))
    return trace


def provenance_lines(snapshot: dict):
    """Yield one compact JSON line per provenance record."""
    for record in snapshot.get("provenance", ()):
        yield json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_provenance(path: str | Path, snapshot: dict) -> int:
    """Write the provenance JSONL dump; returns the record count."""
    lines = list(provenance_lines(snapshot))
    text = "\n".join(lines)
    Path(path).write_text(text + "\n" if text else "")
    return len(lines)


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` when ``trace`` is not a well-formed trace.

    Checks the invariants the export relies on: the ``traceEvents`` list
    exists, every event carries the required keys with a known phase,
    non-``M`` event timestamps are monotonically non-decreasing in list
    order, ``X`` events have non-negative durations, and ``B``/``E``
    pairs match per ``(pid, tid)``.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    last_ts = None
    open_stacks: dict[tuple, list] = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = ev["ph"]
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if ph == "M":
            continue
        if "ts" not in ev or "tid" not in ev:
            raise ValueError(f"event {i} ({ph}) missing ts/tid")
        ts = float(ev["ts"])
        if ts < 0:
            raise ValueError(f"event {i} has negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i} breaks ts monotonicity ({ts} < {last_ts})"
            )
        last_ts = ts
        key = (ev["pid"], ev["tid"])
        if ph == "X":
            if float(ev.get("dur", -1.0)) < 0:
                raise ValueError(f"event {i} (X) has negative/missing dur")
        elif ph == "B":
            open_stacks.setdefault(key, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(key)
            if not stack:
                raise ValueError(f"event {i} (E) without a matching B")
            stack.pop()
    dangling = {k: v for k, v in open_stacks.items() if v}
    if dangling:
        raise ValueError(f"unmatched B events: {dangling}")
