"""Rolling time windows over recorder activity.

Cumulative counters answer "how much since boot", which is the wrong
question for a long-running ``mdz serve``: an operator wants *rates* —
requests per second over the last minute, the p99 of the last five
minutes — not totals that average a week of idle time into every number.

:class:`RollingWindows` keeps a fixed ring of per-interval buckets
(default: 72 buckets of 5 s, i.e. six minutes of history).  Each bucket
holds plain counter deltas and timer histograms over one interval, so a
trailing window of any length up to the ring span is the sum of whole
buckets — O(ring size) to aggregate, O(1) memory forever.  Buckets are
recycled in place: writing into the slot of an expired epoch resets it,
so an idle recorder carries stale buckets but never reports them (reads
filter by epoch).

The histograms reuse the recorder's fixed power-of-two bucketing
(:data:`TIMER_BUCKETS`), which this module canonically defines so that
:mod:`.recorder`, :mod:`.prom`, and the windows all agree on bucket
edges; merging across processes stays plain addition.

Thread safety: :class:`RollingWindows` does **not** lock.  It is always
owned by a :class:`~repro.telemetry.recorder.MetricsRecorder`, which
calls it under its own lock.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right

#: Fixed histogram bucket upper bounds for stage timers: powers of two
#: from 1 µs to ~67 s.  Fixed (not adaptive) so histograms merge across
#: worker processes by plain addition.
TIMER_BUCKETS = tuple(1e-6 * 2.0**i for i in range(27))

#: Default width of one ring bucket, in seconds.
DEFAULT_BUCKET_SECONDS = 5.0

#: Default ring length: 72 x 5 s = 360 s, enough to serve a 5 m window.
DEFAULT_BUCKET_COUNT = 72

#: The trailing windows reported by :meth:`RollingWindows.snapshot`.
WINDOWS = (("1m", 60.0), ("5m", 300.0))


def bucket_index(seconds: float) -> int:
    """Histogram bucket index for one duration."""
    return bisect_right(TIMER_BUCKETS, seconds)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``(lower, upper)`` bounds of one histogram bucket in seconds.

    Bucket 0 spans ``(0, TIMER_BUCKETS[0]]``; the overflow bucket's upper
    bound is reported as 2x the last edge (its true bound is +inf).
    """
    if index <= 0:
        return 0.0, TIMER_BUCKETS[0]
    if index >= len(TIMER_BUCKETS):
        return TIMER_BUCKETS[-1], TIMER_BUCKETS[-1] * 2.0
    return TIMER_BUCKETS[index - 1], TIMER_BUCKETS[index]


def bucket_value(index: int) -> float:
    """Representative duration for one bucket (geometric midpoint)."""
    if index <= 0:
        return TIMER_BUCKETS[0] / 2.0
    if index >= len(TIMER_BUCKETS):
        return TIMER_BUCKETS[-1] * 1.5
    return math.sqrt(TIMER_BUCKETS[index - 1] * TIMER_BUCKETS[index])


def percentile(hist: dict[int, int], total: int, q: float) -> float:
    """Histogram-estimated ``q``-quantile (0 < q < 1) of a timer."""
    target = q * total
    cum = 0
    for index in sorted(hist):
        cum += hist[index]
        if cum >= target:
            return bucket_value(index)
    return bucket_value(max(hist) if hist else 0)


def percentile_bucket(hist: dict[int, int], total: int, q: float) -> int:
    """Index of the bucket containing the ``q``-quantile."""
    target = q * total
    cum = 0
    for index in sorted(hist):
        cum += hist[index]
        if cum >= target:
            return index
    return max(hist) if hist else 0


class _Bucket:
    """One interval's worth of activity."""

    __slots__ = ("epoch", "counters", "timers")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.counters: dict[str, int] = {}
        #: name -> [count, total seconds, {histogram bucket: count}]
        self.timers: dict[str, list] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.counters.clear()
        self.timers.clear()


class RollingWindows:
    """Fixed ring of per-interval buckets feeding trailing-window views.

    Parameters
    ----------
    bucket_seconds:
        Width of one ring bucket.
    buckets:
        Ring length; the longest servable window is
        ``bucket_seconds * buckets``.
    clock:
        Monotonic time source (injectable for tests).
    """

    __slots__ = ("bucket_seconds", "_ring", "_clock", "_born")

    def __init__(
        self,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        buckets: int = DEFAULT_BUCKET_COUNT,
        clock=time.monotonic,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if buckets < 2:
            raise ValueError("the ring needs at least two buckets")
        self.bucket_seconds = float(bucket_seconds)
        self._ring: list[_Bucket | None] = [None] * int(buckets)
        self._clock = clock
        self._born = clock()

    # -- writing ---------------------------------------------------------

    def _bucket(self) -> _Bucket:
        epoch = int(self._clock() / self.bucket_seconds)
        slot = epoch % len(self._ring)
        bucket = self._ring[slot]
        if bucket is None:
            bucket = self._ring[slot] = _Bucket(epoch)
        elif bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def note_count(self, name: str, n: int = 1) -> None:
        """Fold ``n`` into the current bucket's counter ``name``."""
        counters = self._bucket().counters
        counters[name] = counters.get(name, 0) + int(n)

    def note_observe(self, name: str, seconds: float, index: int) -> None:
        """Fold one timed interval (pre-bucketed at ``index``)."""
        self.note_timer(name, 1, seconds, {index: 1})

    def note_timer(
        self, name: str, count: int, seconds: float, hist: dict
    ) -> None:
        """Fold an aggregated timer cell (e.g. a merged worker snapshot).

        Worker-side activity arrives as whole snapshots at merge time, so
        it lands in the bucket of the *merge*, not of the original calls
        — at most one flush late, which is within a bucket's resolution.
        """
        timers = self._bucket().timers
        cell = timers.get(name)
        if cell is None:
            cell = timers[name] = [0, 0.0, {}]
        cell[0] += int(count)
        cell[1] += float(seconds)
        h = cell[2]
        for index, n in hist.items():
            index = int(index)
            h[index] = h.get(index, 0) + int(n)

    # -- reading ---------------------------------------------------------

    def window(self, seconds: float) -> dict:
        """Aggregate view of the trailing ``seconds`` (whole buckets).

        Returns ``{"seconds", "counters", "rates", "timers"}`` where
        ``seconds`` is the *effective* span — clamped to the recorder's
        uptime so a 10-second-old process reports honest per-second
        rates instead of diluting 10 s of traffic over a 60 s window.
        """
        now = self._clock()
        now_epoch = int(now / self.bucket_seconds)
        span = max(1, math.ceil(seconds / self.bucket_seconds))
        span = min(span, len(self._ring))
        oldest = now_epoch - span + 1
        counters: dict[str, int] = {}
        timers: dict[str, list] = {}
        for bucket in self._ring:
            if bucket is None or not oldest <= bucket.epoch <= now_epoch:
                continue
            for name, n in bucket.counters.items():
                counters[name] = counters.get(name, 0) + n
            for name, cell in bucket.timers.items():
                mine = timers.get(name)
                if mine is None:
                    mine = timers[name] = [0, 0.0, {}]
                mine[0] += cell[0]
                mine[1] += cell[1]
                for index, n in cell[2].items():
                    mine[2][index] = mine[2].get(index, 0) + n
        # Effective span: the window cannot predate the ring's birth, and
        # the current bucket is only partially elapsed.
        elapsed = max(now - self._born, self.bucket_seconds * 1e-3)
        effective = min(
            (span - 1) * self.bucket_seconds
            + (now - now_epoch * self.bucket_seconds),
            elapsed,
        )
        rates = {
            name: n / effective for name, n in sorted(counters.items())
        }
        timer_views = {}
        for name, (count, total, hist) in sorted(timers.items()):
            view = {"count": count, "seconds": total}
            if count:
                for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    view[label] = percentile(hist, count, q)
            timer_views[name] = view
        return {
            "seconds": effective,
            "counters": dict(sorted(counters.items())),
            "rates": rates,
            "timers": timer_views,
        }

    def snapshot(self) -> dict:
        """All standard trailing windows, JSON-serializable."""
        return {
            "bucket_seconds": self.bucket_seconds,
            **{label: self.window(seconds) for label, seconds in WINDOWS},
        }
