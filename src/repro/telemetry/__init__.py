"""Zero-dependency metrics/tracing layer for the compression pipeline.

The paper's Section III pipeline — prediction, quantization, Huffman,
trailing dictionary coder — is modular, and after the streaming subsystem
made it parallel, the only way to tune it is to *see* it: where the bytes
of a container come from and where the wall-clock goes, stage by stage.
This package provides that visibility without adding a dependency or a
cost when disabled:

* :class:`Recorder` — the protocol: ``count`` (monotonic counters),
  ``gauge`` (latest-value gauges), ``timer`` (monotonic-clock stage
  timers as context managers), ``event`` (bounded log of noteworthy
  occurrences), ``snapshot`` (a JSON-serializable dict of everything);
* :class:`NullRecorder` — the default no-op implementation; the hot path
  pays one attribute lookup and an empty call, nothing else;
* :class:`MetricsRecorder` — the collecting implementation (timers carry
  min/max and fixed-bucket histograms, so snapshots report
  p50/p95/p99 per stage and merge by addition);
* :class:`TracingRecorder` — a ``MetricsRecorder`` that additionally
  collects hierarchical spans (``span``/``annotate``/``export_token``,
  see :mod:`repro.telemetry.tracing`) and one provenance record per
  compressed buffer; :mod:`repro.telemetry.export` turns its snapshots
  into Chrome trace-event JSON (Perfetto-loadable) and provenance JSONL;
* :func:`get_recorder` / :func:`set_recorder` / :func:`recording` — the
  module-global active-recorder slot, so instrumentation points fetch
  the recorder at call time instead of threading it through every
  constructor.

Metric names are dotted paths grouped by subsystem:

========================  =====================================================
prefix                    meaning
========================  =====================================================
``sz.huffman.*``          entropy-coding stage (symbols, bytes, encode/decode)
``sz.oos.*``              out-of-scope side channel (points, varint bytes)
``sz.lossless.*``         trailing dictionary coder (bytes in/out, timings)
``mdz.*``                 per-buffer front end (method choice, buffer count)
``adp.*``                 adaptive selection (trials, winners, trial sizes)
``stream.*``              streaming writer (flushes, chunks, queue depth)
``stream.executor.*``     worker pool (dispatch/inline/fallback, teardown)
========================  =====================================================

Typical use::

    from repro import MDZ, MDZConfig
    from repro.telemetry import recording

    with recording() as rec:
        blob = MDZ(MDZConfig()).compress(positions)
    print(rec.snapshot()["timers"])

The CLI exposes the same data as ``mdz stats`` / ``--metrics-json``,
and the span/provenance layer as ``mdz trace``.
"""

from .export import (
    provenance_lines,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_provenance,
)
from .logging import (
    JsonLogFormatter,
    configure_json_logging,
    get_logger,
)
from .quality import DEFAULT_AUDIT_INTERVAL, QualityAuditor, QualityReport
from .recorder import (
    MetricsRecorder,
    NullRecorder,
    NULL_RECORDER,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from .timeseries import TIMER_BUCKETS, RollingWindows
from .tracing import TracingRecorder, current_span_id

__all__ = [
    "DEFAULT_AUDIT_INTERVAL",
    "JsonLogFormatter",
    "MetricsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "QualityAuditor",
    "QualityReport",
    "Recorder",
    "RollingWindows",
    "TIMER_BUCKETS",
    "TracingRecorder",
    "configure_json_logging",
    "current_span_id",
    "get_logger",
    "get_recorder",
    "provenance_lines",
    "recording",
    "set_recorder",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_provenance",
]
