"""Structured JSON logging stamped with trace context.

The recorder stack answers *how much* and *how long*; logs answer *what
happened* for the events that matter individually — a bound violation, a
worker-pool teardown failure, a session expiring with unsynced data.
This module keeps those on the stdlib :mod:`logging` tree (so operators
compose handlers/levels the usual way) while making every record
machine-parseable and correlated with the rest of the observability
plane:

* :class:`JsonLogFormatter` renders one JSON object per line with the
  active span id from :mod:`repro.telemetry.tracing` (when a
  :class:`~repro.telemetry.tracing.TracingRecorder` span is open on this
  context) and, for records carrying an exception, the structured
  error-contract code shared by the HTTP service and the CLI;
* :func:`get_logger` hands out loggers under the shared ``mdz.`` tree;
* :func:`configure_json_logging` installs the formatter on that tree —
  this is what ``mdz serve --log-json`` calls.

Without :func:`configure_json_logging`, ``mdz.*`` loggers inherit the
process default (warnings and errors to stderr in plain text), so
library use never silently swallows a violation record.

Log-record schema (absent keys are omitted, extras pass through)::

    {"ts": <unix seconds>, "level": "warning", "logger": "mdz.quality",
     "message": "...", "span": "1a2b-7", "error": {"code": "...",
     "type": "DecompressionError", "detail": "..."}, ...extras}
"""

from __future__ import annotations

import json
import logging
import sys

from .tracing import current_span_id

#: Root of the package's logger tree.
LOGGER_NAME = "mdz"

#: LogRecord attributes that are not user extras.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


def _error_code(exc: BaseException) -> str:
    """The service error-contract code for ``exc``.

    Imported lazily: telemetry must stay importable without the service
    package (and vice versa).
    """
    try:
        from ..service.errors import error_code

        return error_code(exc)
    except Exception:
        return "internal"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record; see the module docstring for schema."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = current_span_id()
        if span is not None:
            entry["span"] = span
        if record.exc_info and record.exc_info[1] is not None:
            exc = record.exc_info[1]
            entry["error"] = {
                "code": _error_code(exc),
                "type": type(exc).__name__,
                "detail": str(exc),
            }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in entry:
                continue
            entry[key] = value
        return json.dumps(entry, sort_keys=True, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the shared ``mdz.`` tree (``mdz`` itself for '')."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def configure_json_logging(
    stream=None, level: int = logging.INFO
) -> logging.Handler:
    """Install the JSON formatter on the ``mdz`` logger tree.

    Returns the installed handler (callers owning a scope, e.g. tests,
    can ``removeHandler`` it afterwards).  The tree stops propagating to
    the root logger so records are not double-printed.
    """
    root = get_logger()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler
