"""Hierarchical span tracing on top of the metrics recorder.

The flat :class:`~repro.telemetry.recorder.MetricsRecorder` answers
"where did the seconds go in aggregate"; this module answers "what
happened, in order, inside *this* buffer" — the paper's per-stage
attribution (Figs. 14–15) at the granularity of a single compressed
buffer.  Three pieces:

* :class:`TracingRecorder` — a :class:`MetricsRecorder` that additionally
  collects **spans** (named, timed, parent/child-nested intervals) and
  **provenance records** (one structured record per compressed buffer:
  which method coded it, what ADP measured, how the entropy stage fanned
  out, raw vs. compressed bytes).  It installs into the same module-global
  recorder slot, so instrumentation points stay `get_recorder().span(...)`
  and the disabled cost stays one attribute lookup: the base
  :class:`~repro.telemetry.recorder.Recorder` (and plain
  ``MetricsRecorder``) return a shared no-op span handle.
* a context-local span stack (:mod:`contextvars`), so nesting works per
  thread and the writer's producer thread cannot corrupt another
  thread's ancestry.
* **cross-process propagation**: :meth:`TracingRecorder.export_token`
  captures the current span context as a picklable token; a worker
  process opens its root span with that token as parent
  (``span(..., parent=token)``) and ships its whole snapshot back, where
  :meth:`MetricsRecorder.merge` folds it in.  Worker spans therefore
  re-parent under the session span that dispatched them, even though the
  two processes never share a clock epoch (spans carry wall-aligned
  timestamps; see :data:`Span start time` below).

Span start times are ``epoch_wall + (perf_counter() - epoch_perf)``:
monotonic *within* a process (perf_counter never goes backwards) and
aligned *across* processes to within wall-clock skew, which is what the
Chrome trace-event export needs to lay session and worker tracks side by
side.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time

from .recorder import MetricsRecorder

#: Cap on retained finished spans (excess increments ``trace.spans_dropped``).
MAX_SPANS = 100_000
#: Cap on retained provenance records.
MAX_PROVENANCE = 100_000
#: Cap on attribute keys per span (excess keys are dropped, counted).
MAX_ATTRS = 24
#: Cap on one stringified attribute value.
MAX_ATTR_CHARS = 256

#: Context-local stack of *open* :class:`_SpanHandle` objects, innermost
#: last.  Module-level on purpose: contextvars must not be created per
#: instance, and a handle knows which tracer owns it.
_SPAN_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "mdz_span_stack", default=()
)

#: Process-wide span id sequence, shared by every recorder instance.  Ids
#: are ``{pid:x}-{n}``: the pid disambiguates across processes (a forked
#: worker inherits the counter position but not the pid), the shared
#: counter disambiguates across recorder *instances* in one process — the
#: executor's inline-fallback path builds a fresh worker recorder in the
#: session process, and per-instance counters would make its span ids
#: collide with the session's after the sideband merge.
_ID_COUNTER = itertools.count(1)


def _clean_attr(value):
    """Coerce one attribute value to a bounded, JSON-serializable form.

    Scalars pass through; strings are truncated; shallow dicts (ADP trial
    sizes and the like) are cleaned one level deep; everything else is
    truncated ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, str):
        if len(value) > MAX_ATTR_CHARS:
            return value[: MAX_ATTR_CHARS - 1] + "…"
        return value
    if isinstance(value, dict):
        return {
            str(k): v if isinstance(v, (bool, int, float, type(None))) else str(v)[:MAX_ATTR_CHARS]
            for k, v in itertools.islice(value.items(), MAX_ATTRS)
        }
    text = repr(value)
    if len(text) > MAX_ATTR_CHARS:
        text = text[: MAX_ATTR_CHARS - 1] + "…"
    return text


def _bounded_update(attrs: dict, extra: dict) -> None:
    """Merge ``extra`` into ``attrs`` respecting the attribute cap."""
    for key, value in extra.items():
        if len(attrs) >= MAX_ATTRS and key not in attrs:
            continue
        attrs[key] = _clean_attr(value)


class _SpanHandle:
    """One *open* span: a context manager pushed on the context stack.

    ``provenance=True`` marks this span as a provenance root: it opens a
    draft record seeded with its ancestors' attributes, collects
    :meth:`TracingRecorder.annotate` contributions from any layer below,
    and emits the finished record when it closes.  ``absorb=True`` makes
    the span swallow annotations instead (used around ADP trial encodes,
    whose losers must not pollute the buffer's provenance).
    """

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "provenance",
        "absorb",
        "draft",
        "_start_perf",
        "start",
        "_stack_token",
        "tid",
    )

    def __init__(self, tracer, name, parent_id, provenance, absorb, attrs):
        self.tracer = tracer
        self.name = name
        self.attrs = {}
        _bounded_update(self.attrs, attrs)
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.provenance = provenance
        self.absorb = absorb
        self.draft = None

    def __enter__(self) -> "_SpanHandle":
        stack = _SPAN_STACK.get()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        if self.provenance:
            # Seed the draft with inherited context (dataset, axis, buffer
            # ids set by enclosing spans), outermost first so inner values
            # win, then this span's own attributes.
            draft = {}
            for handle in stack:
                _bounded_update(draft, handle.attrs)
            _bounded_update(draft, self.attrs)
            self.draft = draft
        self._stack_token = _SPAN_STACK.set(stack + (self,))
        self.tid = threading.get_ident()
        tracer = self.tracer
        self._start_perf = time.perf_counter()
        self.start = tracer._epoch_wall + (self._start_perf - tracer._epoch_perf)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start_perf
        _SPAN_STACK.reset(self._stack_token)
        if exc_type is not None:
            _bounded_update(self.attrs, {"error": repr(exc)})
        self.tracer._finish(self, duration)
        return None

    def annotate(self, **attrs) -> None:
        """Merge attributes into this span (and its provenance draft)."""
        _bounded_update(self.attrs, attrs)
        if self.draft is not None:
            _bounded_update(self.draft, attrs)


class TracingRecorder(MetricsRecorder):
    """Metrics recorder that additionally collects spans and provenance.

    Drop-in for :class:`MetricsRecorder` everywhere (``mdz stats`` could
    run on it unchanged); the extra surface is:

    * :meth:`span` — open a nested, timed span (context manager);
    * :meth:`annotate` — attach attributes to the innermost provenance
      span from any layer below it (the Huffman stage reporting its
      fan-out, the quantizer its out-of-scope count, ...);
    * :meth:`export_token` — capture the current span context for a
      worker process;
    * ``snapshot()["spans"] / ["provenance"]`` — the collected data,
      JSON-serializable, mergeable across processes.
    """

    #: Instrumentation may check this instead of isinstance.
    tracing = True

    def __init__(
        self,
        max_spans: int = MAX_SPANS,
        max_provenance: int = MAX_PROVENANCE,
    ) -> None:
        super().__init__()
        self._spans: list[dict] = []
        self._provenance: list[dict] = []
        self._max_spans = int(max_spans)
        self._max_provenance = int(max_provenance)
        self._pid = os.getpid()
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    # -- span API -------------------------------------------------------

    def span(
        self,
        name: str,
        parent: str | None = None,
        provenance: bool = False,
        absorb: bool = False,
        **attrs,
    ) -> _SpanHandle:
        """Open a span named ``name`` nested under the current one.

        ``parent`` overrides the implicit parent (the innermost open span
        in this context) with an explicit span id — the cross-process
        re-parenting hook.  See :class:`_SpanHandle` for ``provenance``
        and ``absorb``.
        """
        return _SpanHandle(self, name, parent, provenance, absorb, attrs)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost provenance (or any) span.

        Walks the context stack inside-out: an ``absorb`` span swallows
        the annotation (trial encodes), otherwise the innermost
        provenance-rooted span receives it; with no provenance span open
        the innermost span takes it; with no span open it is dropped.
        """
        stack = _SPAN_STACK.get()
        for handle in reversed(stack):
            if handle.absorb:
                _bounded_update(handle.attrs, attrs)
                return
            if handle.provenance:
                handle.annotate(**attrs)
                return
        if stack:
            stack[-1].annotate(**attrs)

    def export_token(self, **attrs) -> tuple[str | None, dict]:
        """Picklable span context for a worker: ``(parent_id, attrs)``.

        ``attrs`` extends the inherited context (all open spans' attrs,
        outermost first) — the writer adds the axis/buffer ids here so
        worker-side provenance still knows which chunk it describes.
        """
        stack = _SPAN_STACK.get()
        merged: dict = {}
        for handle in stack:
            _bounded_update(merged, handle.attrs)
        _bounded_update(merged, attrs)
        parent = stack[-1].span_id if stack else None
        return (parent, merged)

    def add_provenance(self, record: dict) -> None:
        """Append one finished provenance record (bounded)."""
        with self._lock:
            self._add_provenance_locked(dict(record))

    # -- internals ------------------------------------------------------

    def _next_span_id(self) -> str:
        return f"{self._pid:x}-{next(_ID_COUNTER)}"

    def _finish(self, handle: _SpanHandle, duration: float) -> None:
        span = {
            "name": handle.name,
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "start": handle.start,
            "duration": duration,
            "pid": self._pid,
            "tid": handle.tid,
            "attrs": handle.attrs,
        }
        with self._lock:
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self._counters["trace.spans_dropped"] = (
                    self._counters.get("trace.spans_dropped", 0) + 1
                )
            if handle.draft is not None:
                record = dict(handle.draft)
                record.update(
                    span_id=handle.span_id,
                    parent_id=handle.parent_id,
                    name=handle.name,
                    ts=handle.start,
                    duration=duration,
                    pid=self._pid,
                )
                self._add_provenance_locked(record)

    def _add_provenance_locked(self, record: dict) -> None:
        if len(self._provenance) < self._max_provenance:
            self._provenance.append(record)
        else:
            self._counters["trace.provenance_dropped"] = (
                self._counters.get("trace.provenance_dropped", 0) + 1
            )

    # -- snapshot / merge ----------------------------------------------

    def _snapshot_locked(self) -> dict:
        snap = super()._snapshot_locked()
        snap["spans"] = list(self._spans)
        snap["provenance"] = list(self._provenance)
        snap["trace"] = {"pid": self._pid, "epoch": self._epoch_wall}
        return snap

    def _merge_extra_locked(self, other: dict) -> None:
        for span in other.get("spans", ()):
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self._counters["trace.spans_dropped"] = (
                    self._counters.get("trace.spans_dropped", 0) + 1
                )
        for record in other.get("provenance", ()):
            self._add_provenance_locked(record)

    def _reset_extra_locked(self) -> None:
        self._spans.clear()
        self._provenance.clear()


def current_span_id() -> str | None:
    """Span id of the innermost open span in this context (or ``None``)."""
    stack = _SPAN_STACK.get()
    return stack[-1].span_id if stack else None
