"""Recorder implementations: the no-op default and the metrics collector.

Two recorders implement the same small surface (see the package docstring
for the metric taxonomy):

* :class:`NullRecorder` — every method is a no-op and ``timer`` returns a
  shared do-nothing context manager, so an instrumented hot path costs one
  attribute lookup and one call when telemetry is off (the default);
* :class:`MetricsRecorder` — accumulates counters, gauges, stage timers,
  and a bounded event log under a lock, and serializes the whole state
  with :meth:`MetricsRecorder.snapshot`.

The active recorder is a module-level slot manipulated with
:func:`set_recorder` / :func:`recording`; instrumented code fetches it per
operation via :func:`get_recorder`, so enabling telemetry never requires
re-plumbing constructor arguments through the pipeline layers.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque

from .timeseries import (
    TIMER_BUCKETS,
    RollingWindows,
    bucket_bounds,
    bucket_index as _bucket_index,
    bucket_value as _bucket_value,
    percentile as _percentile,
    percentile_bucket as _percentile_bucket,
)

#: Cap on the retained event log (oldest entries are dropped beyond it).
MAX_EVENTS = 256

#: Cap on one event's detail string.  Executor failure paths record
#: ``repr(exc)``, which can embed a full array repr; truncating at the
#: recorder keeps the bounded event log (and ``--metrics-json`` output)
#: bounded in *bytes*, not just entries.
MAX_EVENT_DETAIL = 512

__all__ = [
    "MAX_EVENTS",
    "MAX_EVENT_DETAIL",
    "TIMER_BUCKETS",
    "MetricsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Recorder",
    "get_recorder",
    "recording",
    "set_recorder",
]


class _NullTimer:
    """Reusable do-nothing context manager for the disabled hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _NullSpan:
    """Do-nothing span handle: the disabled tracing hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """The recorder protocol: counters, gauges, timers, events.

    The base class *is* the no-op implementation — subclasses override
    whatever they collect.  Metric names are dotted paths grouped by
    subsystem (``sz.huffman.encode``, ``stream.executor.dispatched``);
    the convention keeps :meth:`snapshot` output self-organizing.
    """

    #: True when this recorder actually stores anything.  Instrumented
    #: code may use it to skip building expensive metric inputs.
    enabled: bool = False

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (monotonic within a run)."""

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest observed ``value``."""

    def timer(self, name: str):
        """Context manager timing one stage run under ``name``."""
        return _NULL_TIMER

    def observe(self, name: str, seconds: float) -> None:
        """Fold one externally measured interval into timer ``name``."""

    def event(self, name: str, detail: str = "") -> None:
        """Record a discrete noteworthy occurrence (error, fallback)."""

    # -- tracing surface (collected only by TracingRecorder) ------------

    def span(self, name: str, **kwargs):
        """Context manager opening a nested trace span under ``name``."""
        return _NULL_SPAN

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost provenance span, if any."""

    def export_token(self, **attrs):
        """Picklable span context for a worker process (``None`` = off)."""
        return None

    def snapshot(self) -> dict:
        """Serializable view of everything recorded so far."""
        return {"enabled": False, "counters": {}, "gauges": {}, "timers": {}, "events": []}


class NullRecorder(Recorder):
    """The default recorder: records nothing, costs (almost) nothing."""


#: Shared no-op instance installed by default.
NULL_RECORDER = NullRecorder()


class _StageTimer:
    """Context manager feeding one monotonic-clock interval to a recorder."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "MetricsRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder.observe(
            self._name, time.perf_counter() - self._start
        )
        return None


class MetricsRecorder(Recorder):
    """In-memory metrics collector with a dict :meth:`snapshot`.

    Thread-safe: the streaming writer's producer thread and any analysis
    thread reading :meth:`snapshot` mid-run see consistent totals.  All
    storage is plain dicts, so a snapshot is JSON-serializable as-is.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> monotonic time of the gauge's last update, so a stale
        #: gauge (last value before all sessions closed, say) is
        #: distinguishable from a live one.
        self._gauge_updated: dict[str, float] = {}
        #: name -> [call count, total seconds, min, max, {bucket: count}]
        self._timers: dict[str, list] = {}
        self._events: deque[dict] = deque(maxlen=MAX_EVENTS)
        self._windows = RollingWindows()

    # -- recording ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)
            self._windows.note_count(name, n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)
            self._gauge_updated[name] = time.monotonic()

    def timer(self, name: str) -> _StageTimer:
        return _StageTimer(self, name)

    def observe(self, name: str, seconds: float) -> None:
        """Fold one timed interval into the stage timer ``name``."""
        seconds = float(seconds)
        with self._lock:
            cell = self._timers.get(name)
            if cell is None:
                cell = self._timers[name] = [
                    0, 0.0, float("inf"), float("-inf"), {},
                ]
            cell[0] += 1
            cell[1] += seconds
            if seconds < cell[2]:
                cell[2] = seconds
            if seconds > cell[3]:
                cell[3] = seconds
            bucket = _bucket_index(seconds)
            cell[4][bucket] = cell[4].get(bucket, 0) + 1
            self._windows.note_observe(name, seconds, bucket)

    def event(self, name: str, detail: str = "") -> None:
        detail = str(detail)
        if len(detail) > MAX_EVENT_DETAIL:
            detail = detail[: MAX_EVENT_DETAIL - 1] + "…"
        with self._lock:
            self._events.append({"name": name, "detail": detail})
            self._counters[f"events.{name}"] = (
                self._counters.get(f"events.{name}", 0) + 1
            )
            self._windows.note_count(f"events.{name}")

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def stage_seconds(self, name: str) -> float:
        """Total seconds accumulated under one stage timer."""
        with self._lock:
            cell = self._timers.get(name)
            return 0.0 if cell is None else cell[1]

    @staticmethod
    def _timer_view(cell: list) -> dict:
        """Serializable view of one timer cell, percentiles included.

        Percentiles are estimates quantized by the power-of-two
        histogram: each reported quantile is the geometric midpoint of
        its containing bucket, so ``bucket_widths`` carries the width of
        that bucket — the honest resolution of the estimate (roughly
        ±41 % of the reported value).
        """
        count, total, lo, hi, hist = cell
        view = {"count": count, "seconds": total}
        if count:
            view["min"] = lo
            view["max"] = hi
            widths = {}
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                view[label] = min(max(_percentile(hist, count, q), lo), hi)
                b_lo, b_hi = bucket_bounds(_percentile_bucket(hist, count, q))
                widths[label] = b_hi - b_lo
            view["bucket_widths"] = widths
            view["hist"] = {str(k): v for k, v in sorted(hist.items())}
        return view

    def snapshot(self) -> dict:
        """Everything recorded so far, as a JSON-serializable dict."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        now = time.monotonic()
        return {
            "enabled": True,
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "gauge_age_seconds": {
                name: max(0.0, now - self._gauge_updated.get(name, now))
                for name in sorted(self._gauges)
            },
            "timers": {
                name: self._timer_view(cell)
                for name, cell in sorted(self._timers.items())
            },
            "events": list(self._events),
            "windows": self._windows.snapshot(),
        }

    def merge(self, other: dict) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Counters and timers add; gauges take the other side's value
        (it is newer); events append.  Used to aggregate worker-side
        snapshots into the session recorder.  The whole fold happens
        under one lock acquisition, so a concurrent :meth:`snapshot`
        sees either none or all of the other recorder's aggregates —
        never a torn state with counters folded but timers pending.
        """
        now = time.monotonic()
        ages = other.get("gauge_age_seconds", {})
        with self._lock:
            for name, n in other.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(n)
                self._windows.note_count(name, n)
            for name, value in other.get("gauges", {}).items():
                self._gauges[name] = float(value)
                self._gauge_updated[name] = now - float(ages.get(name, 0.0))
            for name, cell in other.get("timers", {}).items():
                mine = self._timers.get(name)
                if mine is None:
                    mine = self._timers[name] = [
                        0, 0.0, float("inf"), float("-inf"), {},
                    ]
                mine[0] += int(cell["count"])
                mine[1] += float(cell["seconds"])
                mine[2] = min(mine[2], float(cell.get("min", mine[2])))
                mine[3] = max(mine[3], float(cell.get("max", mine[3])))
                for bucket, n in cell.get("hist", {}).items():
                    bucket = int(bucket)
                    mine[4][bucket] = mine[4].get(bucket, 0) + int(n)
                self._windows.note_timer(
                    name,
                    int(cell["count"]),
                    float(cell["seconds"]),
                    cell.get("hist", {}),
                )
            self._events.extend(other.get("events", ()))
            self._merge_extra_locked(other)

    def _merge_extra_locked(self, other: dict) -> None:
        """Hook for subclasses folding extra snapshot sections (called
        under the merge lock)."""

    def reset(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._gauge_updated.clear()
            self._timers.clear()
            self._events.clear()
            self._windows = RollingWindows()
            self._reset_extra_locked()

    def _reset_extra_locked(self) -> None:
        """Hook for subclasses clearing extra state (under the lock)."""


# -- the active recorder slot -------------------------------------------
#
# Two layers: a context-local slot (a ContextVar, so concurrent asyncio
# tasks — e.g. two tenants of the HTTP service — each see their own
# recorder without clobbering each other) over a process-global fallback
# slot (what worker processes and plain scripts use).  ``recording()``
# scopes install into the context-local layer; ``set_recorder`` writes
# the global fallback.  Synchronous single-threaded code cannot tell the
# difference: within one context the ContextVar behaves like a global.

_active: Recorder = NULL_RECORDER
_active_lock = threading.Lock()

_active_var: contextvars.ContextVar[Recorder | None] = contextvars.ContextVar(
    "repro_active_recorder", default=None
)


def get_recorder() -> Recorder:
    """The currently active recorder (the no-op one by default).

    Resolution order: the context-local slot set by :func:`recording`,
    then the process-global slot set by :func:`set_recorder`.
    """
    recorder = _active_var.get()
    return recorder if recorder is not None else _active


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` (``None`` = disable); returns the previous one.

    Writes the process-global fallback slot; a context-local recorder
    installed by :func:`recording` still wins inside its scope.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = recorder if recorder is not None else NULL_RECORDER
    return previous


def recording(recorder: MetricsRecorder | None = None):
    """Context manager: install a recorder for the enclosed block.

    The recorder is installed in the *context-local* slot, so two
    concurrent asyncio tasks (or ``contextvars``-propagating threads,
    e.g. ``asyncio.to_thread``) can each hold their own scope without
    seeing each other's metrics.

    >>> from repro.telemetry import recording
    >>> with recording() as rec:
    ...     ...  # compress something
    >>> rec.snapshot()["counters"]  # doctest: +SKIP
    """
    return _Recording(recorder)


class _Recording:
    __slots__ = ("_recorder", "_token")

    def __init__(self, recorder: MetricsRecorder | None) -> None:
        self._recorder = recorder if recorder is not None else MetricsRecorder()

    def __enter__(self) -> MetricsRecorder:
        self._token = _active_var.set(self._recorder)
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        _active_var.reset(self._token)
        return None
