"""Sampled error-bound auditing of freshly encoded buffers.

MDZ's whole contract is the error bound, yet nothing in a running
pipeline ever re-checks it: the encoder trusts its own reconstruction
and the decoder is usually on another machine, weeks later.  The
:class:`QualityAuditor` closes that loop in production at a sampled
cost: for a deterministic subset of buffers it round-trips the encoded
blob through a fresh reader-equivalent decode session
(:meth:`MDZAxisCompressor.audit_decoder
<repro.core.mdz.MDZAxisCompressor.audit_decoder>`) and compares the
reconstruction against the original values.

Sampling is by *global buffer index* (``buffer_index % interval == 0``,
default every 32nd buffer), never by randomness or wall clock, so a
serial run and a ``--workers N`` run audit exactly the same buffers —
the same determinism discipline as the byte-identical encode guarantee.
The audit never touches the encode path: archives are byte-identical
with auditing on, off, or at any interval.

Per audited buffer the auditor records (metric definitions match
:mod:`repro.analysis.metrics`, the paper's Section VII-C):

* gauges ``quality.max_abs_error``, ``quality.psnr``, ``quality.ratio``,
  ``quality.bound_margin`` (max error / bound: 1.0 = at the bound);
* distributions ``quality.bound_margin`` and ``quality.ratio`` via the
  recorder's histogram machinery (power-of-two buckets — plenty for a
  0..1 margin; ratios beyond ~67 land in the overflow bucket);
* counters ``quality.audits`` / ``quality.audited_values``; the timer
  ``quality.audit`` bounds the overhead.

A reconstruction outside the bound — or a blob that fails to decode at
all, an even stronger violation of the contract — increments the hard
``quality.bound_violations`` counter, records a ``quality.bound_violation``
event, and emits a structured error log record
(:mod:`repro.telemetry.logging`), so the signal survives even when no
metrics recorder is installed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from .logging import get_logger
from .recorder import get_recorder

#: Default sampling interval: audit every 32nd buffer (per axis).
DEFAULT_AUDIT_INTERVAL = 32

#: Relative tolerance when comparing the measured max error against the
#: bound: both sides of the comparison went through the same float64
#: quantizer arithmetic, so anything beyond a few ulps is a real breach.
BOUND_RTOL = 1e-9

_log = get_logger("quality")


@dataclass(frozen=True)
class QualityReport:
    """Outcome of one buffer audit (JSON-serializable via ``to_dict``)."""

    buffer_index: int
    axis: int
    rows: int
    values: int
    error_bound: float
    compressed_bytes: int
    #: Largest absolute point-wise error; +inf when decode failed.
    max_abs_error: float
    psnr: float
    ratio: float
    within_bound: bool
    decode_error: str | None = None

    def to_dict(self) -> dict:
        return {
            "buffer_index": self.buffer_index,
            "axis": self.axis,
            "rows": self.rows,
            "values": self.values,
            "error_bound": self.error_bound,
            "compressed_bytes": self.compressed_bytes,
            "max_abs_error": self.max_abs_error,
            "psnr": self.psnr,
            "ratio": self.ratio,
            "within_bound": self.within_bound,
            "decode_error": self.decode_error,
        }


def _psnr(original: np.ndarray, recon: np.ndarray) -> float:
    """PSNR in dB — same definition as :func:`repro.analysis.metrics.psnr`."""
    value_range = float(original.max() - original.min())
    mse = float(np.mean((original - recon) ** 2))
    if mse == 0.0:
        return math.inf
    if value_range == 0.0:
        return -math.inf
    return 20.0 * math.log10(value_range) - 10.0 * math.log10(mse)


class QualityAuditor:
    """Deterministically sampled round-trip auditing for one stream.

    The owner (streaming writer or container assembler) drives three
    steps, all keyed by the global buffer index so the parallel path —
    where encode results return out of order — audits the same buffers
    as serial:

    1. :meth:`want` — should this buffer be audited?
    2. :meth:`stash` — retain a copy of the original values at flush
       time (the only moment they are still in hand);
    3. :meth:`audit` — once the encoded blob exists, round-trip and
       record.

    ``interval <= 0`` disables the auditor; every method is then a cheap
    no-op so call sites need no guards.
    """

    def __init__(self, interval: int = DEFAULT_AUDIT_INTERVAL) -> None:
        self.interval = int(interval)
        self.violations = 0
        #: Recently audited ``(buffer_index, axis)`` pairs (bounded so a
        #: weeks-long stream does not accumulate an unbounded trail).
        self.audited: deque[tuple[int, int]] = deque(maxlen=4096)
        self._stash: dict[tuple[int, int], np.ndarray] = {}

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def want(self, buffer_index: int) -> bool:
        """True when ``buffer_index`` is in the audit sample."""
        return self.interval > 0 and buffer_index % self.interval == 0

    def stash(self, buffer_index: int, axis: int, original: np.ndarray) -> None:
        """Retain a copy of one sampled buffer's original values."""
        if not self.want(buffer_index):
            return
        self._stash[(buffer_index, axis)] = np.array(
            original, dtype=np.float64, copy=True
        )

    def pop(self, buffer_index: int, axis: int) -> np.ndarray | None:
        """The stashed original for one chunk, if it was sampled."""
        return self._stash.pop((buffer_index, axis), None)

    def clear(self) -> None:
        """Drop retained originals (abort paths)."""
        self._stash.clear()

    def audit(
        self,
        session,
        blob: bytes,
        original: np.ndarray,
        *,
        buffer_index: int,
        axis: int,
    ) -> QualityReport:
        """Round-trip ``blob`` and record quality metrics.

        ``session`` is the *encode* session the blob came from; decoding
        happens in a fresh reader-equivalent session derived from it, so
        the audit exercises the real decode path.
        """
        recorder = get_recorder()
        original = np.asarray(original, dtype=np.float64)
        bound = float(session.error_bound)
        decode_error: str | None = None
        with recorder.timer("quality.audit"):
            try:
                recon = np.asarray(
                    session.audit_decoder().decompress_batch(blob),
                    dtype=np.float64,
                )
                if recon.shape != original.shape:
                    raise ValueError(
                        f"decoded shape {recon.shape} != original "
                        f"{original.shape}"
                    )
            except Exception as exc:  # decode failure = hard violation
                decode_error = f"{type(exc).__name__}: {exc}"
                recon = None
            if recon is None:
                max_err = math.inf
                psnr = -math.inf
            else:
                max_err = float(np.max(np.abs(original - recon)))
                psnr = _psnr(original, recon)
        ratio = original.size * 4 / max(len(blob), 1)  # float32 convention
        within = decode_error is None and max_err <= bound * (1.0 + BOUND_RTOL)
        report = QualityReport(
            buffer_index=int(buffer_index),
            axis=int(axis),
            rows=int(original.shape[0]),
            values=int(original.size),
            error_bound=bound,
            compressed_bytes=len(blob),
            max_abs_error=max_err,
            psnr=psnr,
            ratio=ratio,
            within_bound=within,
            decode_error=decode_error,
        )
        self.audited.append((int(buffer_index), int(axis)))
        if recorder.enabled:
            recorder.count("quality.audits")
            recorder.count("quality.audited_values", original.size)
            recorder.gauge("quality.max_abs_error", max_err)
            recorder.gauge("quality.psnr", psnr)
            recorder.gauge("quality.ratio", ratio)
            margin = max_err / bound if bound > 0 else math.inf
            recorder.gauge("quality.bound_margin", margin)
            if math.isfinite(margin):
                recorder.observe("quality.bound_margin", margin)
            recorder.observe("quality.ratio", ratio)
        if not within:
            self.violations += 1
            detail = (
                f"buffer {buffer_index} axis {axis}: "
                + (
                    f"decode failed: {decode_error}"
                    if decode_error
                    else f"max error {max_err:.3e} > bound {bound:.3e}"
                )
            )
            recorder.count("quality.bound_violations")
            recorder.event("quality.bound_violation", detail)
            _log.error(
                "error-bound violation: %s",
                detail,
                extra={"quality": report.to_dict()},
            )
        return report
