"""Time integration: velocity Verlet and a Langevin thermostat.

Velocity Verlet is the standard symplectic integrator of Figure 1's loop
(predict positions -> compute forces -> correct velocities).  The Langevin
thermostat adds friction plus matched thermal noise (the BAOAB-lite
splitting), giving canonical-ensemble sampling — the paper's Copper run is
NVT at 800 K, ADK at 300 K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SimulationError


@dataclass
class VelocityVerlet:
    """Plain NVE velocity-Verlet stepping.

    The half-kick/drift/half-kick structure requires the forces at the new
    positions; :class:`~repro.md.simulation.MDSimulation` orchestrates the
    force evaluation between :meth:`first_half` and :meth:`second_half`.
    """

    dt: float = 0.005

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise SimulationError(f"timestep must be positive: {self.dt}")

    def first_half(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        masses: np.ndarray,
    ) -> None:
        """Half kick + full drift (in place)."""
        velocities += 0.5 * self.dt * forces / masses[:, None]
        positions += self.dt * velocities

    def second_half(
        self,
        velocities: np.ndarray,
        forces: np.ndarray,
        masses: np.ndarray,
    ) -> None:
        """Second half kick with the recomputed forces (in place)."""
        velocities += 0.5 * self.dt * forces / masses[:, None]


@dataclass
class LangevinThermostat:
    """Ornstein-Uhlenbeck velocity kick targeting ``temperature``.

    Applied once per step after the Verlet update: ``v -> c1 v + c2 xi``
    with ``c1 = exp(-gamma dt)`` and ``c2`` fixing the stationary kinetic
    temperature (Boltzmann constant folded into reduced units).
    """

    temperature: float
    friction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise SimulationError(
                f"temperature must be non-negative: {self.temperature}"
            )
        if self.friction <= 0:
            raise SimulationError(f"friction must be positive: {self.friction}")
        self._rng = np.random.default_rng(self.seed)

    def apply(
        self, velocities: np.ndarray, masses: np.ndarray, dt: float
    ) -> None:
        """One OU relaxation step (in place)."""
        c1 = np.exp(-self.friction * dt)
        sigma = np.sqrt(self.temperature * (1.0 - c1 * c1) / masses)
        velocities *= c1
        velocities += sigma[:, None] * self._rng.standard_normal(
            velocities.shape
        )


def maxwell_boltzmann_velocities(
    n_atoms: int,
    temperature: float,
    masses: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Thermal velocities at ``temperature`` with zero net momentum."""
    sigma = np.sqrt(np.maximum(temperature, 0.0) / masses)
    velocities = sigma[:, None] * rng.standard_normal((n_atoms, 3))
    velocities -= velocities.mean(axis=0, keepdims=True)
    return velocities
