"""Pair potentials — Lennard-Jones, the workhorse of the paper's benchmarks.

The LJ dataset (and the Table VII driver) uses the classic 12-6 potential

    U(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ]

truncated at ``cutoff`` (LAMMPS's ``lj/cut``, shifted so U(cutoff) = 0).
Forces are computed over a :class:`~repro.md.neighbors.CellList` pair list,
fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SimulationError
from .neighbors import CellList


@dataclass
class LennardJones:
    """Truncated-and-shifted 12-6 Lennard-Jones potential.

    Parameters use LJ reduced units by default (sigma = eps = 1,
    cutoff = 2.5 sigma — the LAMMPS ``bench/in.lj`` settings).
    """

    sigma: float = 1.0
    epsilon: float = 1.0
    cutoff: float = 2.5

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.epsilon <= 0 or self.cutoff <= 0:
            raise SimulationError(
                "LJ parameters must be positive: "
                f"sigma={self.sigma}, eps={self.epsilon}, cutoff={self.cutoff}"
            )
        sr6 = (self.sigma / self.cutoff) ** 6
        self._shift = 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def forces_energy(
        self, positions: np.ndarray, cell_list: CellList
    ) -> tuple[np.ndarray, float]:
        """Forces (N, 3) and total potential energy for one configuration."""
        i, j, rij = cell_list.pairs(positions)
        return self.forces_energy_from_pairs(i, j, rij, positions.shape[0])

    def forces_energy_from_pairs(
        self, i: np.ndarray, j: np.ndarray, rij: np.ndarray, n: int
    ) -> tuple[np.ndarray, float]:
        """Forces and energy from a precomputed pair list.

        Splitting the pair construction (the "communication" phase of a
        parallel MD code) from the force kernel (the "computation" phase)
        lets the simulation driver account them separately, as Table VII
        does.
        """
        forces = np.zeros((n, 3))
        if i.size == 0:
            return forces, 0.0
        dist_sq = np.einsum("ij,ij->i", rij, rij)
        # The pair list may carry a Verlet skin: drop pairs beyond the
        # actual cutoff before evaluating the kernel.
        within = dist_sq <= self.cutoff * self.cutoff
        if not within.all():
            i, j, rij, dist_sq = i[within], j[within], rij[within], dist_sq[within]
        # Pairs at zero distance would produce infinite forces - a sign the
        # dynamics exploded upstream.
        if (dist_sq < 1e-12).any():
            raise SimulationError("overlapping atoms: the dynamics diverged")
        inv2 = (self.sigma * self.sigma) / dist_sq
        inv6 = inv2 * inv2 * inv2
        inv12 = inv6 * inv6
        # dU/dr / r, so force on i is -grad_i U = -coef * rij
        coef = 24.0 * self.epsilon * (2.0 * inv12 - inv6) / dist_sq
        fij = coef[:, None] * rij
        np.add.at(forces, i, -fij)
        np.add.at(forces, j, fij)
        energy = float(
            np.sum(4.0 * self.epsilon * (inv12 - inv6) - self._shift)
        )
        return forces, energy
