"""The MD run loop — a miniature LAMMPS (Figure 1).

:class:`MDSimulation` wires the substrate together: cell-list force
evaluation, velocity-Verlet stepping, optional Langevin thermostat, and the
dump hook that hands snapshots to a consumer (file writer or in-situ
compressor).  The per-phase wall-clock accounting (computation /
communication / output) feeds the Table VII reproduction: the neighbor
rebuild plays the role of LAMMPS's halo communication — on a real parallel
run that phase is dominated by ghost-atom exchange, and in both cases it is
"the time not spent on forces or output".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import SimulationError
from .integrators import (
    LangevinThermostat,
    VelocityVerlet,
    maxwell_boltzmann_velocities,
)
from .neighbors import CellList
from .potentials import LennardJones


@dataclass
class SimulationReport:
    """Wall-clock breakdown of one run (the Table VII columns)."""

    steps: int = 0
    compute_seconds: float = 0.0  # forces + integration ("Comp")
    comm_seconds: float = 0.0  # neighbor/cell rebuilds ("Comm")
    output_seconds: float = 0.0  # dump serialization + compression + I/O
    dumped_snapshots: int = 0
    dumped_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        """Total accounted wall-clock time."""
        return self.compute_seconds + self.comm_seconds + self.output_seconds

    def fractions(self) -> dict[str, float]:
        """Comp/Comm/Output as fractions of the total (Table VII rows)."""
        total = max(self.total_seconds, 1e-12)
        return {
            "comp": self.compute_seconds / total,
            "comm": self.comm_seconds / total,
            "output": self.output_seconds / total,
        }


class MDSimulation:
    """Lennard-Jones MD in a periodic box with dump hooks.

    Parameters
    ----------
    positions:
        Initial configuration (N, 3).
    box:
        Periodic box lengths (3,).
    potential:
        The pair potential (default: reduced-units LJ).
    dt:
        Verlet timestep.
    temperature:
        If not ``None``, a Langevin thermostat targets this temperature and
        the initial velocities are Maxwell-Boltzmann at it.
    seed:
        RNG seed for velocities and thermostat noise.
    """

    def __init__(
        self,
        positions: np.ndarray,
        box: np.ndarray,
        potential: LennardJones | None = None,
        dt: float = 0.005,
        temperature: float | None = None,
        friction: float = 1.0,
        masses: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        self.positions = np.array(positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise SimulationError(
                f"positions must be (N, 3), got {self.positions.shape}"
            )
        self.box = np.asarray(box, dtype=np.float64)
        self.potential = potential if potential is not None else LennardJones()
        self.integrator = VelocityVerlet(dt=dt)
        n = self.positions.shape[0]
        self.masses = (
            np.ones(n) if masses is None else np.asarray(masses, dtype=np.float64)
        )
        rng = np.random.default_rng(seed)
        if temperature is not None:
            self.thermostat: LangevinThermostat | None = LangevinThermostat(
                temperature=temperature, friction=friction, seed=seed + 1
            )
            self.velocities = maxwell_boltzmann_velocities(
                n, temperature, self.masses, rng
            )
        else:
            self.thermostat = None
            self.velocities = np.zeros((n, 3))
        #: Verlet skin: pair lists are built at cutoff + skin and reused
        #: until any atom has moved half the skin (standard MD practice;
        #: keeps the neighbour phase a few percent like a real code).
        self.skin = 0.4 * self.potential.cutoff
        self.cell_list = CellList(self.box, self.potential.cutoff + self.skin)
        self._pair_i, self._pair_j, _ = self.cell_list.pairs(self.positions)
        self._positions_at_build = self.positions.copy()
        self.forces, self.potential_energy = (
            self.potential.forces_energy_from_pairs(
                *self._current_pairs(), self.positions.shape[0]
            )
        )
        self.step_index = 0

    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return int(self.positions.shape[0])

    @property
    def kinetic_energy(self) -> float:
        """Total kinetic energy."""
        return float(
            0.5 * np.sum(self.masses[:, None] * self.velocities**2)
        )

    @property
    def temperature(self) -> float:
        """Instantaneous kinetic temperature (reduced units)."""
        dof = max(3 * self.n_atoms - 3, 1)
        return 2.0 * self.kinetic_energy / dof

    def run(
        self,
        n_steps: int,
        dump_every: int = 0,
        dump_callback: Callable[[int, np.ndarray], float] | None = None,
        report: SimulationReport | None = None,
    ) -> SimulationReport:
        """Advance ``n_steps``; optionally dump every ``dump_every`` steps.

        ``dump_callback(step, wrapped_positions)`` receives each dumped
        snapshot and returns the *extra* output seconds to account (e.g. a
        modelled file-system write); its own execution time is also counted
        as output.  A fresh :class:`SimulationReport` is returned (or the
        provided one extended).
        """
        if report is None:
            report = SimulationReport()
        for _ in range(n_steps):
            t0 = time.perf_counter()
            self.integrator.first_half(
                self.positions, self.velocities, self.forces, self.masses
            )
            t1 = time.perf_counter()
            # Neighbor maintenance = the "communication" phase of a real
            # run (ghost-atom exchange + pair list construction in LAMMPS).
            # The skinned pair list is rebuilt only when an atom has moved
            # half the skin since the last build.
            self.positions %= self.box
            if self._needs_rebuild():
                self._pair_i, self._pair_j, _ = self.cell_list.pairs(
                    self.positions
                )
                self._positions_at_build = self.positions.copy()
            t2 = time.perf_counter()
            self.forces, self.potential_energy = (
                self.potential.forces_energy_from_pairs(
                    *self._current_pairs(), self.n_atoms
                )
            )
            self.integrator.second_half(
                self.velocities, self.forces, self.masses
            )
            if self.thermostat is not None:
                self.thermostat.apply(
                    self.velocities, self.masses, self.integrator.dt
                )
            t3 = time.perf_counter()
            report.compute_seconds += (t1 - t0) + (t3 - t2)
            report.comm_seconds += t2 - t1
            self.step_index += 1
            report.steps += 1
            if (
                dump_every
                and dump_callback is not None
                and self.step_index % dump_every == 0
            ):
                t4 = time.perf_counter()
                extra = dump_callback(self.step_index, self.positions.copy())
                t5 = time.perf_counter()
                report.output_seconds += (t5 - t4) + float(extra or 0.0)
                report.dumped_snapshots += 1
            if not np.isfinite(self.positions).all():
                raise SimulationError(
                    f"non-finite coordinates at step {self.step_index}"
                )
        return report

    def _needs_rebuild(self) -> bool:
        """True when any atom moved half the skin since the last build."""
        delta = self.positions - self._positions_at_build
        delta -= self.box * np.rint(delta / self.box)
        max_sq = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        return max_sq > (0.5 * self.skin) ** 2

    def _current_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Minimum-image displacements for the cached pair list."""
        rij = self.positions[self._pair_j] - self.positions[self._pair_i]
        rij -= self.box * np.rint(rij / self.box)
        return self._pair_i, self._pair_j, rij
