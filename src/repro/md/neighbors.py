"""Linked-cell neighbor search under periodic boundary conditions.

The standard O(N) neighbor machinery of every MD code: the box is divided
into cells at least as large as the interaction cutoff; each atom interacts
only with atoms in its own and the 26 surrounding cells.  The pair list is
built fully vectorized — the half-stencil of 13 cell shifts plus the
in-cell pairs — with ragged cell-by-cell cartesian products expanded by
``repeat``/``cumsum`` arithmetic instead of Python loops.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SimulationError

#: The 13 lexicographically-positive cell shifts (half stencil).
_HALF_SHIFTS = np.array(
    [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if dx * 9 + dy * 3 + dz > 0
    ],
    dtype=np.int64,
)


def _ragged_products(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Cartesian products of ragged index ranges, fully vectorized.

    For every group ``g`` this yields all (a, b) index pairs with
    ``a in [starts_a[g], starts_a[g]+counts_a[g])`` and similarly for b.
    Returns flat (a_idx, b_idx) arrays.
    """
    m = counts_a * counts_b
    keep = m > 0
    if not keep.any():
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    sa, ca = starts_a[keep], counts_a[keep]
    sb, cb = starts_b[keep], counts_b[keep]
    sizes = ca * cb
    total = int(sizes.sum())
    group_of = np.repeat(np.arange(sizes.size), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    k = np.arange(total) - offsets[group_of]
    a_idx = sa[group_of] + k // cb[group_of]
    b_idx = sb[group_of] + k % cb[group_of]
    return a_idx, b_idx


class CellList:
    """Cell decomposition of a periodic orthorhombic box.

    Parameters
    ----------
    box:
        Box lengths (3,); the box spans [0, box) in each axis.
    cutoff:
        Interaction cutoff; cells are at least this wide.
    """

    def __init__(self, box: np.ndarray, cutoff: float) -> None:
        self.box = np.asarray(box, dtype=np.float64)
        if (self.box <= 0).any():
            raise SimulationError(f"box lengths must be positive: {self.box}")
        if cutoff <= 0:
            raise SimulationError(f"cutoff must be positive: {cutoff}")
        self.cutoff = float(cutoff)
        dims = (self.box / self.cutoff).astype(np.int64)
        # Fewer than 3 cells along an axis would make the stencil visit a
        # cell twice; collapse such axes to a single cell (all pairs there).
        self.dims = np.where(dims < 3, 1, dims)
        self.cell_size = self.box / self.dims
        self.n_cells = int(np.prod(self.dims))

    def pairs(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All interacting pairs within the cutoff.

        Returns ``(i, j, rij)``: pair indices (each pair once) and the
        minimum-image displacement ``r_j - r_i``.
        """
        pos = np.mod(positions, self.box)
        cell_idx = np.minimum(
            (pos / self.cell_size).astype(np.int64), self.dims - 1
        )
        flat = (
            cell_idx[:, 0] * self.dims[1] + cell_idx[:, 1]
        ) * self.dims[2] + cell_idx[:, 2]
        order = np.argsort(flat, kind="stable").astype(np.int64)
        sorted_flat = flat[order]
        cells = np.arange(self.n_cells)
        starts = np.searchsorted(sorted_flat, cells).astype(np.int64)
        ends = np.searchsorted(sorted_flat, cells, side="right").astype(np.int64)
        counts = ends - starts
        cx, rem = np.divmod(cells, self.dims[1] * self.dims[2])
        cy, cz = np.divmod(rem, self.dims[2])
        coords = np.column_stack([cx, cy, cz])
        chunks_i: list[np.ndarray] = []
        chunks_j: list[np.ndarray] = []
        # Collect distinct unordered cell pairs across the half stencil.
        # Collapsed axes (dims == 1) alias several shifts onto the same
        # neighbour — or onto the cell itself — so normalize and dedupe.
        pair_keys: list[np.ndarray] = []
        for shift in _HALF_SHIFTS:
            neigh = np.mod(coords + shift, self.dims)
            neigh_flat = (
                neigh[:, 0] * self.dims[1] + neigh[:, 1]
            ) * self.dims[2] + neigh[:, 2]
            valid = neigh_flat != cells
            lo = np.minimum(cells[valid], neigh_flat[valid])
            hi = np.maximum(cells[valid], neigh_flat[valid])
            pair_keys.append(lo * self.n_cells + hi)
        if pair_keys:
            keys = np.unique(np.concatenate(pair_keys))
            cell_a, cell_b = np.divmod(keys, self.n_cells)
            a_idx, b_idx = _ragged_products(
                starts[cell_a],
                counts[cell_a],
                starts[cell_b],
                counts[cell_b],
            )
            if a_idx.size:
                chunks_i.append(order[a_idx])
                chunks_j.append(order[b_idx])
        # In-cell pairs: full product filtered to the strict upper triangle
        # of the *sorted* order, so each pair appears once.
        a_idx, b_idx = _ragged_products(starts, counts, starts, counts)
        tri = a_idx < b_idx
        if tri.any():
            chunks_i.append(order[a_idx[tri]])
            chunks_j.append(order[b_idx[tri]])
        if not chunks_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty((0, 3))
        i = np.concatenate(chunks_i)
        j = np.concatenate(chunks_j)
        rij = pos[j] - pos[i]
        rij -= self.box * np.rint(rij / self.box)
        dist_sq = np.einsum("ij,ij->i", rij, rij)
        keep = dist_sq <= self.cutoff * self.cutoff
        return i[keep], j[keep], rij[keep]
