"""Surrogate dynamics models — cheap, statistically faithful data sources.

Full MD integration in Python is reserved for the LJ liquid (where the
actual dynamics matter).  The other datasets are produced by reduced models
that generate *exactly* the statistical structure the paper characterizes
and MDZ exploits:

* :class:`EinsteinCrystalModel` — independent Ornstein-Uhlenbeck vibration
  of each atom around its lattice site (the textbook Einstein model of a
  crystal), with optional slow collective drift and rare site hopping.
  Produces the discrete-level clustering of Takeaways 2/3 and both
  temporal-smoothness classes of Figure 5, tunable per axis.
* :class:`DefectHoppingModel` — an Einstein crystal hosting a small set of
  mobile defect atoms that hop between interstitial sites (the
  vacancy/helium clusters of Helium-B).
* :class:`RouseChainModel` — the Rouse normal-mode model of a polymer:
  bead positions are superpositions of OU-evolving modes.  Produces the
  unclustered, spatially random but temporally correlated structure of the
  protein datasets (ADK/IFABP, Figures 3 (b) / 4 (b)).

All models are driven by an explicit ``numpy.random.Generator`` so dataset
generation is deterministic given the registry seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError


def _ou_series(
    rng: np.random.Generator,
    n_steps: int,
    shape: tuple[int, ...],
    sigma: np.ndarray,
    rho: float,
    init: np.ndarray | None = None,
) -> np.ndarray:
    """Stationary Ornstein-Uhlenbeck samples along axis 0.

    ``x_t = rho * x_{t-1} + sqrt(1 - rho^2) * sigma * xi_t`` with the
    stationary start ``x_0 ~ N(0, sigma^2)`` (or ``init``).
    """
    if not 0.0 <= rho < 1.0 + 1e-12:
        raise SimulationError(f"OU correlation must be in [0, 1), got {rho}")
    out = np.empty((n_steps, *shape))
    if init is None:
        out[0] = sigma * rng.standard_normal(shape)
    else:
        out[0] = init
    kick = np.sqrt(max(1.0 - rho * rho, 0.0)) * sigma
    for t in range(1, n_steps):
        out[t] = rho * out[t - 1] + kick * rng.standard_normal(shape)
    return out


@dataclass
class EinsteinCrystalModel:
    """OU vibration around fixed lattice sites, with drift and hopping.

    Parameters
    ----------
    sites:
        Equilibrium positions (N, 3).
    amplitude:
        Per-axis RMS vibration amplitude (3,) — anisotropy lets one axis be
        temporally smoother than the others (the Copper-B x/y vs z split of
        Table VI).
    correlation:
        Per-axis OU correlation between *saved* snapshots (3,); near 0 =
        snapshots decorrelate between saves (Figure 5 class 1), near 1 =
        very smooth in time (class 2).
    drift_sigma:
        Per-axis per-snapshot random-walk drift of the whole crystal.
    hop_rate:
        Expected fraction of atoms hopping to a neighbouring site per
        snapshot (level hopping, Takeaway 3).
    hop_distance:
        Site spacing used for hops (defaults to the median nearest-site
        spacing estimate — pass explicitly for slabs).
    """

    sites: np.ndarray
    amplitude: np.ndarray | float = 0.1
    correlation: np.ndarray | float = 0.2
    drift_sigma: np.ndarray | float = 0.0
    hop_rate: float = 0.0
    hop_distance: float | None = None

    def generate(
        self, n_snapshots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce (T, N, 3) positions."""
        sites = np.asarray(self.sites, dtype=np.float64)
        n = sites.shape[0]
        amp = np.broadcast_to(np.asarray(self.amplitude, float), (3,))
        corr = np.broadcast_to(np.asarray(self.correlation, float), (3,))
        drift = np.broadcast_to(np.asarray(self.drift_sigma, float), (3,))
        frames = np.empty((n_snapshots, n, 3))
        site_t = np.tile(sites, (1, 1))
        hop_d = self.hop_distance
        if hop_d is None:
            spread = sites.max(axis=0) - sites.min(axis=0)
            positive = spread[spread > 0]
            hop_d = (
                float(np.min(positive) / max(n ** (1 / 3), 1))
                if positive.size
                else 1.0
            )
        # Vibrations: one OU series per axis (different rho per axis).
        vib = np.empty((n_snapshots, n, 3))
        for a in range(3):
            vib[:, :, a] = _ou_series(
                rng, n_snapshots, (n,), np.full(n, amp[a]), float(corr[a])
            )
        walk = np.cumsum(
            drift[None, :] * rng.standard_normal((n_snapshots, 3)), axis=0
        )
        current_sites = site_t.copy()
        for t in range(n_snapshots):
            if self.hop_rate > 0 and t > 0:
                n_hops = rng.poisson(self.hop_rate * n)
                if n_hops:
                    movers = rng.choice(n, size=min(n_hops, n), replace=False)
                    axes = rng.integers(0, 3, movers.size)
                    signs = rng.choice([-1.0, 1.0], movers.size)
                    current_sites[movers, axes] += signs * hop_d
            frames[t] = current_sites + vib[t] + walk[t][None, :]
        return frames


@dataclass
class DefectHoppingModel:
    """Einstein crystal hosting a few mobile defect atoms (Helium-B).

    The host matrix vibrates; ``n_defects`` atoms additionally perform a
    lattice random walk with ``defect_hop_rate`` hops per snapshot,
    producing trajectories that jump between discrete levels while the
    bulk stays put.
    """

    sites: np.ndarray
    amplitude: float = 0.08
    correlation: float = 0.6
    n_defects: int = 8
    defect_hop_rate: float = 0.3
    hop_distance: float = 1.58

    def generate(
        self, n_snapshots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce (T, N, 3) positions."""
        base = EinsteinCrystalModel(
            sites=self.sites,
            amplitude=self.amplitude,
            correlation=self.correlation,
        ).generate(n_snapshots, rng)
        n = self.sites.shape[0]
        defects = rng.choice(n, size=min(self.n_defects, n), replace=False)
        offset = np.zeros((defects.size, 3))
        for t in range(1, n_snapshots):
            hops = rng.random(defects.size) < self.defect_hop_rate
            if hops.any():
                axes = rng.integers(0, 3, int(hops.sum()))
                signs = rng.choice([-1.0, 1.0], int(hops.sum()))
                steps = np.zeros((int(hops.sum()), 3))
                steps[np.arange(int(hops.sum())), axes] = signs * self.hop_distance
                offset[hops] += steps
            base[t, defects] += offset
        return base


@dataclass
class RouseChainModel:
    """Rouse normal-mode polymer — the protein-dataset surrogate.

    Bead ``i`` of a chain of ``n_beads``:

        r_i(t) = sum_p X_p(t) * cos(pi p (i + 1/2) / N)

    with the mode amplitudes ``X_p`` independent OU processes whose
    stationary variance scales as 1/p^2 (the Rouse spectrum) and whose
    relaxation slows as 1/p^2.  Several chains plus explicit "water"
    (diffusing random-walk atoms) fill out the atom count, mimicking an
    explicit-solvent protein box.
    """

    n_beads: int
    n_chains: int = 1
    n_solvent: int = 0
    radius: float = 20.0
    mode_count: int = 24
    base_correlation: float = 0.5
    #: RMS amplitude of the slowest Rouse mode (the *dynamic* scale,
    #: independent of the static fold extent ``radius``).
    mode_sigma: float = 3.0
    box: float = 56.0
    solvent_step: float = 0.5
    #: Frozen per-atom structural offset (side-chain geometry): constant in
    #: time, so it costs time-based predictors nothing but defeats spatial
    #: neighbour prediction — the "random" spatial pattern of Figure 3 (b).
    frozen_sigma: float = 2.0
    #: Local (side-chain/thermal) vibration on top of the Rouse modes.
    local_sigma: float = 1.1
    local_correlation: float = 0.3

    def generate(
        self, n_snapshots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce (T, n_chains*n_beads + n_solvent, 3) positions."""
        frames = []
        for _ in range(self.n_chains):
            frames.append(self._one_chain(n_snapshots, rng))
        if self.n_solvent:
            frames.append(self._solvent(n_snapshots, rng))
        return np.concatenate(frames, axis=1)

    def _solvent(
        self, n_snapshots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Diffusing water: per-atom random walk reflected into the box.

        The per-snapshot step size encodes the saving cadence: ~0.2 A for
        1 ps saves (IFABP), several A for 240 ps saves (ADK).
        """
        start = rng.uniform(0.0, self.box, size=(1, self.n_solvent, 3))
        steps = rng.normal(
            0.0, self.solvent_step, size=(n_snapshots, self.n_solvent, 3)
        )
        steps[0] = 0.0
        walk = start + np.cumsum(steps, axis=0)
        # Reflect into [0, box] (mirror-fold the unbounded walk).
        walk = np.abs(walk)
        return self.box - np.abs(self.box - (walk % (2.0 * self.box)))

    def _one_chain(
        self, n_snapshots: int, rng: np.random.Generator
    ) -> np.ndarray:
        n = self.n_beads
        p_max = min(self.mode_count, n - 1) if n > 1 else 1
        modes = np.arange(1, p_max + 1)
        # Rouse spectrum: amplitude ~ 1/p, relaxation time ~ 1/p^2.
        sigma_p = self.mode_sigma / modes
        rho_p = self.base_correlation ** np.minimum(modes**2, 50)
        basis = np.cos(
            np.pi
            * modes[None, :]
            * (np.arange(n)[:, None] + 0.5)
            / max(n, 1)
        )
        center = rng.uniform(0.35 * self.box, 0.65 * self.box, size=3)
        # Static fold geometry: a smooth backbone path of extent ``radius``
        # plus per-atom side-chain offsets (``frozen_sigma``), both constant
        # in time.
        backbone = np.cumsum(rng.normal(0.0, 1.5, size=(n, 3)), axis=0)
        backbone -= backbone.mean(axis=0, keepdims=True)
        extent = np.abs(backbone).max()
        if extent > 0:
            backbone *= self.radius / extent
        frozen = backbone + rng.normal(0.0, self.frozen_sigma, size=(n, 3))
        coords = np.empty((n_snapshots, n, 3))
        for a in range(3):
            amps = np.empty((n_snapshots, p_max))
            for p in range(p_max):
                amps[:, p] = _ou_series(
                    rng,
                    n_snapshots,
                    (1,),
                    np.array([sigma_p[p]]),
                    float(rho_p[p]),
                )[:, 0]
            local = _ou_series(
                rng,
                n_snapshots,
                (n,),
                np.full(n, self.local_sigma),
                self.local_correlation,
            )
            coords[:, :, a] = amps @ basis.T + center[a] + frozen[:, a] + local
        return coords
