"""Crystal lattice builders.

The solid-state datasets of the paper (Copper: FCC; tungsten/helium: BCC;
platinum surface: FCC slab) all start from perfect lattices.  These
builders return positions in absolute coordinates plus the periodic box,
and are the origin of the *discrete equal-distant levels* that the VQ
predictor exploits (Takeaway 2): every lattice plane is one level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Lattice:
    """A block of crystal: positions (N, 3) and the periodic box (3,)."""

    positions: np.ndarray
    box: np.ndarray

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the block."""
        return int(self.positions.shape[0])


#: Fractional basis of the conventional FCC cell (4 atoms).
_FCC_BASIS = np.array(
    [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
)

#: Fractional basis of the conventional BCC cell (2 atoms).
_BCC_BASIS = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])


def _build(cells: tuple[int, int, int], a: float, basis: np.ndarray) -> Lattice:
    nx, ny, nz = cells
    if min(cells) < 1:
        raise ValueError(f"cell counts must be positive, got {cells}")
    grid = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    positions = (grid[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a
    box = np.array([nx, ny, nz], dtype=np.float64) * a
    return Lattice(positions=positions, box=box)


def fcc_lattice(cells: tuple[int, int, int], a: float) -> Lattice:
    """FCC crystal of ``cells`` conventional cells with lattice constant ``a``.

    Copper: a = 3.615 Angstrom; platinum: a = 3.924 Angstrom.
    """
    return _build(cells, a, _FCC_BASIS)


def bcc_lattice(cells: tuple[int, int, int], a: float) -> Lattice:
    """BCC crystal (tungsten: a = 3.165 Angstrom)."""
    return _build(cells, a, _BCC_BASIS)


def surface_slab(
    cells: tuple[int, int, int],
    a: float,
    vacuum_layers: int = 4,
    n_adatoms: int = 0,
    rng: np.random.Generator | None = None,
) -> Lattice:
    """An FCC slab with vacuum above and optional adatoms on the surface.

    This is the Pt-dataset geometry: a crystal occupying the lower part of
    the box in z, free surface on top, with ``n_adatoms`` atoms scattered
    on the surface where they diffuse and cluster.  The stacked z-layers
    produce the *stair-wise* spatial pattern of Figure 3 (e).
    """
    bulk = fcc_lattice(cells, a)
    box = bulk.box.copy()
    box[2] += vacuum_layers * a
    positions = bulk.positions
    if n_adatoms:
        if rng is None:
            rng = np.random.default_rng(0)
        top = positions[:, 2].max()
        xy = rng.uniform(0.0, [box[0], box[1]], size=(n_adatoms, 2))
        # adatoms sit roughly one interlayer spacing above the top layer
        z = np.full(n_adatoms, top + a / 2.0)
        adatoms = np.column_stack([xy, z])
        positions = np.vstack([positions, adatoms])
    return Lattice(positions=positions, box=box)
