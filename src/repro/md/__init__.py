"""Molecular-dynamics simulation substrate (the data source of Figure 1).

The paper's datasets come from LAMMPS/CHARMM/EXAALT runs on LANL and ANL
supercomputers; this package is the laptop-scale substitute that produces
statistically equivalent particle trajectories:

* :mod:`repro.md.lattice` — FCC/BCC crystal builders and surface slabs;
* :mod:`repro.md.neighbors` — linked-cell neighbor search under periodic
  boundary conditions;
* :mod:`repro.md.potentials` — Lennard-Jones forces/energies on cell lists;
* :mod:`repro.md.integrators` — velocity Verlet and a Langevin thermostat;
* :mod:`repro.md.simulation` — the run loop with dump hooks (a miniature
  LAMMPS used for the LJ dataset and the Table VII driver);
* :mod:`repro.md.models` — cheap surrogate dynamics (Einstein crystal,
  defect hopping, Rouse chains) for the datasets where full MD would be
  wasteful; they reproduce exactly the statistical features MDZ exploits.
"""

from .lattice import bcc_lattice, fcc_lattice, surface_slab
from .neighbors import CellList
from .potentials import LennardJones
from .integrators import LangevinThermostat, VelocityVerlet
from .simulation import MDSimulation, SimulationReport
from .models import (
    DefectHoppingModel,
    EinsteinCrystalModel,
    RouseChainModel,
)

__all__ = [
    "CellList",
    "DefectHoppingModel",
    "EinsteinCrystalModel",
    "LangevinThermostat",
    "LennardJones",
    "MDSimulation",
    "RouseChainModel",
    "SimulationReport",
    "VelocityVerlet",
    "bcc_lattice",
    "fcc_lattice",
    "surface_slab",
]
