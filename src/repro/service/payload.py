"""Binary numpy payload framing for the HTTP surface.

Arrays cross the wire as raw C-order bytes plus two headers:

* ``X-MDZ-Dtype`` — a numpy dtype string (``float32``, ``<f8``, ...);
* ``X-MDZ-Shape`` — comma-separated dimensions (``100,3`` for one
  snapshot, ``20,100,3`` for a batched feed or a whole trajectory).

No pickling, no JSON-encoding of megabytes of floats: the body is
exactly ``prod(shape) * itemsize`` bytes, verified before any numpy
call.  Responses use the same two headers, so a round trip needs no
content negotiation.  Malformed framing maps to structured 400s
(:mod:`repro.service.errors`); object dtypes are rejected outright (a
deserialization gadget has no business in a compression payload).
"""

from __future__ import annotations

import numpy as np

from .errors import bad_request

#: Dtype kinds accepted on the wire: floats, ints, uints.
_ALLOWED_KINDS = frozenset("fiu")


def parse_dtype(text: str) -> np.dtype:
    """Parse and vet the ``X-MDZ-Dtype`` header."""
    try:
        dtype = np.dtype(str(text))
    except TypeError as exc:
        raise bad_request(
            f"unparseable dtype {text!r}", str(exc), code="bad_dtype"
        ) from exc
    if dtype.kind not in _ALLOWED_KINDS or dtype.hasobject:
        raise bad_request(
            f"dtype {text!r} is not a numeric wire type",
            "only float/int/uint dtypes are accepted",
            code="bad_dtype",
        )
    return dtype


def parse_shape(text: str) -> tuple[int, ...]:
    """Parse and vet the ``X-MDZ-Shape`` header."""
    try:
        shape = tuple(int(part) for part in str(text).split(","))
    except ValueError as exc:
        raise bad_request(
            f"unparseable shape {text!r}", str(exc), code="bad_shape"
        ) from exc
    if not shape or any(dim <= 0 for dim in shape):
        raise bad_request(
            f"shape {text!r} must be positive dimensions",
            code="bad_shape",
        )
    return shape


def decode_array(headers: dict, body: bytes) -> np.ndarray:
    """Decode one framed array from request headers + raw body bytes."""
    dtype_text = headers.get("x-mdz-dtype")
    shape_text = headers.get("x-mdz-shape")
    if dtype_text is None or shape_text is None:
        raise bad_request(
            "binary array payloads require X-MDZ-Dtype and X-MDZ-Shape "
            "headers",
            code="missing_header",
        )
    dtype = parse_dtype(dtype_text)
    shape = parse_shape(shape_text)
    expected = int(np.prod(shape)) * dtype.itemsize
    if len(body) != expected:
        raise bad_request(
            f"body is {len(body)} bytes but shape {shape} x {dtype} "
            f"needs {expected}",
            code="payload_size_mismatch",
        )
    return np.frombuffer(body, dtype=dtype).reshape(shape)


def encode_array(arr: np.ndarray) -> tuple[dict, bytes]:
    """Frame one array for a response: ``(headers, body)``."""
    arr = np.ascontiguousarray(arr)
    headers = {
        "Content-Type": "application/octet-stream",
        "X-MDZ-Dtype": arr.dtype.name,
        "X-MDZ-Shape": ",".join(str(dim) for dim in arr.shape),
    }
    return headers, arr.tobytes()
