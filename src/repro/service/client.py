"""A tiny asyncio HTTP client for the service: tests and load harness.

Deliberately minimal — one connection per :class:`ServiceClient`, HTTP/1.1
keep-alive, ``Content-Length`` bodies only — because its job is to talk
to :mod:`repro.service.http`, not the open web.  It exists so the test
suite and ``benchmarks/test_service_load.py`` need no third-party HTTP
dependency, and it doubles as executable documentation of the wire
protocol (see the session round trip in :meth:`ServiceClient.request`
call sites).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .payload import encode_array


class ClientResponse:
    """Status, headers, body of one exchange, with lazy JSON decoding."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body)


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self,
        method: str,
        path: str,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> ClientResponse:
        """One request/response exchange on the persistent connection."""
        if self._writer is None:
            await self.connect()
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}"]
        merged = {"Content-Length": str(len(body))}
        if headers:
            merged.update(headers)
        head.extend(f"{k}: {v}" for k, v in merged.items())
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        self._writer.write(body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> ClientResponse:
        raw = await self._reader.readuntil(b"\r\n\r\n")
        lines = raw.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        resp_headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status, resp_headers, body)

    # -- convenience wrappers over the JSON/binary surfaces -------------

    async def get_json(self, path: str) -> ClientResponse:
        return await self.request("GET", path)

    async def post_json(self, path: str, payload: dict) -> ClientResponse:
        return await self.request(
            "POST",
            path,
            {"Content-Type": "application/json"},
            json.dumps(payload).encode(),
        )

    async def post_array(self, path: str, arr: np.ndarray) -> ClientResponse:
        headers, body = encode_array(arr)
        return await self.request("POST", path, headers, body)
