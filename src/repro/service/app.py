"""The compression service: routing, admission control, lifecycle.

:class:`CompressionService` glues the pieces together:

* **endpoints** — one-shot ``compress``/``decompress``/``verify`` plus
  the session API (``POST /v1/sessions``, ``.../feed``, ``.../close``,
  ``.../archive``, ``.../stats``, ``.../trace``) and server-wide
  ``healthz``/``stats``/``trace`` plus the Prometheus scrape endpoint
  ``GET /metrics``; see ``docs/service.md`` for the wire reference;
* **backpressure** — the executor's bounded-queue discipline applied at
  the network edge: at most ``max_pending`` CPU-bound requests are
  admitted at once.  Where the in-process executor *blocks* its
  producer, an HTTP server must not (a blocked accept loop is unbounded
  memory in the kernel instead of the heap), so over-capacity requests
  are rejected immediately with ``429 + Retry-After`` and a structured
  ``over_capacity`` body.  Request *batching* rides the same discipline:
  a ``(T, N, axes)``-shaped feed carries T snapshots through one
  admission slot, so clients amortize both the HTTP and the queue cost;
* **multi-tenancy** — per-session recorders (context-local, see
  :mod:`repro.telemetry.recorder`) keep tenants' telemetry and traces
  isolated; a server-wide :class:`TracingRecorder` aggregates the
  service-level counters (``service.requests``/``errors``/``rejected``)
  and per-endpoint latency timers surfaced by ``GET /v1/stats``;
* **graceful shutdown** — stop accepting, drain in-flight requests,
  then walk every live session through ``StreamingWriter.close()`` so
  each archive is sealed behind its commit fence; no tenant ever
  receives a torn file for a request the server acknowledged.

CPU-bound work runs on worker threads (``asyncio.to_thread``) so the
event loop stays responsive to health checks and admission decisions
while numpy crunches.
"""

from __future__ import annotations

import asyncio
import contextlib
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.mdz import MDZ
from ..exceptions import ReproError
from ..io.container import verify_container
from ..telemetry import recording, to_chrome_trace
from ..telemetry import prom
from ..telemetry.logging import configure_json_logging, get_logger
from ..telemetry.tracing import TracingRecorder
from . import http
from .errors import (
    ServiceError,
    bad_request,
    conflict,
    method_not_allowed,
    not_found,
    over_capacity,
    shutting_down,
)
from .payload import decode_array, encode_array
from .sessions import CLOSED, OPEN, SessionManager, config_from_request

_log = get_logger("service")


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: Spool directory for session archives; ``None`` = a fresh tempdir.
    spool_dir: str | None = None
    #: Admission cap: CPU-bound requests in flight at once.  Mirrors the
    #: executor's ``max_pending = 4 * workers`` queue discipline.
    max_pending: int = 16
    #: Request body cap, bytes.
    max_body: int = 64 * 1024 * 1024
    #: Idle seconds before an open session is expired.
    session_ttl: float = 300.0
    #: Seconds between idle-session sweeps.
    sweep_interval: float = 5.0
    #: Seconds to wait for in-flight requests during shutdown.
    drain_timeout: float = 10.0
    #: Emit structured JSON logs on the ``mdz`` logger tree
    #: (``mdz serve --log-json``); see :mod:`repro.telemetry.logging`.
    log_json: bool = False


class CompressionService:
    """One asyncio HTTP compression service instance."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.spool_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="mdz-service-")
            spool = Path(self._tempdir.name)
        else:
            self._tempdir = None
            spool = Path(self.config.spool_dir)
            spool.mkdir(parents=True, exist_ok=True)
        self.spool_dir = spool
        self.recorder = TracingRecorder()
        self.sessions = SessionManager(
            spool,
            ttl=self.config.session_ttl,
            on_retire=self._fold_session_quality,
        )
        self.port: int | None = None  # actual bound port after start()
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._started = time.monotonic()
        self._shutting_down = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` is the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        self._sweeper = asyncio.create_task(self._sweep_idle_sessions())
        _log.info(
            "service listening",
            extra={"host": self.config.host, "port": self.port},
        )

    async def shutdown(self) -> dict:
        """Graceful stop: drain requests, finalize every live session."""
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout
            )
        report = await self.sessions.shutdown()
        self.recorder.count("service.shutdowns")
        _log.info("service shut down", extra={"report": report})
        return report

    async def serve_forever(self) -> None:
        """Start and serve until cancelled; shuts down gracefully."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    def _fold_session_quality(self, session) -> None:
        """Keep quality counters durable as a session leaves the live set.

        Per-session series vanish from ``GET /metrics`` at retirement;
        folding ``quality.*`` counters into the server recorder keeps
        ``mdz_quality_bound_violations_total`` monotonic across session
        lifecycles — the property the alerting recipe in
        ``docs/service.md`` relies on.
        """
        counters = session.recorder.snapshot().get("counters", {})
        for name, value in counters.items():
            if name.startswith("quality.") and value:
                self.recorder.count(name, value)

    async def _sweep_idle_sessions(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval)
            expired = await self.sessions.expire_idle()
            if expired:
                self.recorder.count("service.sessions_expired", len(expired))
                _log.warning(
                    "expired %d idle session(s)",
                    len(expired),
                    extra={"tokens": expired},
                )

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, self.config.max_body
                    )
                except http.ProtocolError as exc:
                    await http.write_response(
                        writer,
                        http.error_response(
                            bad_request(str(exc), code="protocol_error")
                        ),
                        keep_alive=False,
                    )
                    return
                except ServiceError as exc:  # payload_too_large
                    await http.write_response(
                        writer, http.error_response(exc), keep_alive=False
                    )
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._shutting_down
                await http.write_response(writer, response, keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-exchange; sessions survive it
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: http.Request) -> http.Response:
        self.recorder.count("service.requests")
        start = time.perf_counter()
        try:
            response = await self._route(request)
        except ServiceError as exc:
            if exc.code == "over_capacity":
                self.recorder.count("service.rejected")
            else:
                self.recorder.count("service.errors")
            response = http.error_response(exc)
        except (ReproError, OSError) as exc:
            self.recorder.count("service.errors")
            response = http.error_response(exc)
        except Exception as exc:  # noqa: BLE001 — a bug must not kill the server
            self.recorder.count("service.errors")
            self.recorder.event("service.internal_error", repr(exc))
            _log.error(
                "unhandled error serving %s %s",
                request.method,
                request.path,
                exc_info=exc,
            )
            response = http.error_response(exc, status=500)
        self.recorder.observe(
            f"service.request.{request.method} {_route_label(request.path)}",
            time.perf_counter() - start,
        )
        return response

    # -- admission control ----------------------------------------------

    @contextlib.asynccontextmanager
    async def _admit(self):
        """One bounded admission slot for a CPU-bound request.

        The same discipline as the executor's ``max_pending`` queue,
        surfaced as 429/503 instead of producer blocking.
        """
        if self._shutting_down:
            raise shutting_down()
        if self._inflight >= self.config.max_pending:
            raise over_capacity(self._inflight, self.config.max_pending)
        self._inflight += 1
        self._idle.clear()
        self.recorder.gauge("service.inflight", self._inflight)
        try:
            yield
        finally:
            self._inflight -= 1
            self.recorder.gauge("service.inflight", self._inflight)
            if self._inflight == 0:
                self._idle.set()

    # -- routing --------------------------------------------------------

    async def _route(self, request: http.Request) -> http.Response:
        parts = [p for p in request.path.split("/") if p]
        method = request.method
        if parts == ["v1", "healthz"]:
            _require(method, "GET")
            return self._healthz()
        if parts == ["v1", "stats"]:
            _require(method, "GET")
            return self._stats()
        if parts == ["metrics"]:
            _require(method, "GET")
            return self._metrics()
        if parts == ["v1", "trace"]:
            _require(method, "GET")
            return http.json_response(to_chrome_trace(self.recorder.snapshot()))
        if parts == ["v1", "compress"]:
            _require(method, "POST")
            return await self._compress(request)
        if parts == ["v1", "decompress"]:
            _require(method, "POST")
            return await self._decompress(request)
        if parts == ["v1", "verify"]:
            _require(method, "POST")
            return await self._verify(request)
        if parts == ["v1", "sessions"]:
            _require(method, "POST")
            return self._session_create(request)
        if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
            token = parts[2]
            if method == "DELETE":
                return await self._session_delete(token)
            raise method_not_allowed(f"{method} not supported on a session")
        if len(parts) == 4 and parts[:2] == ["v1", "sessions"]:
            token, verb = parts[2], parts[3]
            if verb == "feed":
                _require(method, "POST")
                return await self._session_feed(token, request)
            if verb == "close":
                _require(method, "POST")
                return await self._session_close(token)
            if verb == "archive":
                _require(method, "GET")
                return self._session_archive(token)
            if verb == "stats":
                _require(method, "GET")
                return self._session_stats(token)
            if verb == "trace":
                _require(method, "GET")
                return self._session_trace(token)
        raise not_found(f"no route {method} {request.path}")

    # -- one-shot endpoints ---------------------------------------------

    def _healthz(self) -> http.Response:
        return http.json_response(
            {
                "status": "draining" if self._shutting_down else "ok",
                "version": __version__,
                "uptime_seconds": time.monotonic() - self._started,
                "sessions": self.sessions.counts(),
                "inflight": self._inflight,
            }
        )

    def _stats(self) -> http.Response:
        snapshot = self.recorder.snapshot()
        return http.json_response(
            {
                "sessions": self.sessions.counts(),
                "inflight": self._inflight,
                "max_pending": self.config.max_pending,
                # Rolling 1m/5m rates and windowed percentiles, lifted to
                # the top level so dashboards need not dig into telemetry.
                "windows": snapshot.get("windows", {}),
                "telemetry": snapshot,
            }
        )

    def _metrics(self) -> http.Response:
        """Prometheus exposition: server-wide plus per-tenant series.

        The server recorder renders unlabeled; each live session
        contributes its counters and gauges labeled
        ``{session="<token>"}``.  Session timers are left out of the
        per-tenant parts — the server-wide histograms already aggregate
        them and per-tenant bucket series would multiply cardinality by
        the session count.
        """
        parts: list[tuple[dict, dict | None]] = [
            (self.recorder.snapshot(), None)
        ]
        for session in self.sessions.live():
            snap = session.recorder.snapshot()
            parts.append(
                (
                    {
                        "counters": snap.get("counters", {}),
                        "gauges": snap.get("gauges", {}),
                        "gauge_age_seconds": snap.get("gauge_age_seconds", {}),
                    },
                    {"session": session.token},
                )
            )
        return http.text_response(
            prom.render_many(parts),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _compress(self, request: http.Request) -> http.Response:
        data = decode_array(request.headers, request.body)
        if data.ndim == 2:
            data = data[:, :, None]
        if data.ndim != 3:
            raise bad_request(
                f"compress expects (snapshots, atoms[, axes]) data, "
                f"got shape {data.shape}",
                code="bad_shape",
            )
        config = config_from_request(
            {k: v for k, v in request.query.items()}
        )
        async with self._admit():
            blob = await asyncio.to_thread(self._compress_sync, config, data)
        return http.binary_response(
            {"X-MDZ-Raw-Bytes": str(data.astype(np.float32).nbytes)}, blob
        )

    def _compress_sync(self, config, data) -> bytes:
        with recording(self.recorder):
            return MDZ(config).compress(np.asarray(data, dtype=np.float64))

    async def _decompress(self, request: http.Request) -> http.Response:
        if not request.body:
            raise bad_request("decompress needs a container body")
        async with self._admit():
            data = await asyncio.to_thread(
                self._decompress_sync, request.body
            )
        headers, body = encode_array(data)
        return http.binary_response(headers, body)

    def _decompress_sync(self, blob: bytes) -> np.ndarray:
        with recording(self.recorder):
            return MDZ().decompress(blob)

    async def _verify(self, request: http.Request) -> http.Response:
        if not request.body:
            raise bad_request("verify needs a container body")
        async with self._admit():
            report = await asyncio.to_thread(verify_container, request.body)
        return http.json_response(report)

    # -- session endpoints ----------------------------------------------

    def _session_create(self, request: http.Request) -> http.Response:
        if self._shutting_down:
            raise shutting_down()
        config = config_from_request(request.json())
        session = self.sessions.create(config)
        self.recorder.count("service.sessions_created")
        payload = session.describe()
        payload["config"] = {
            "error_bound": config.error_bound,
            "error_bound_mode": config.error_bound_mode,
            "buffer_size": config.buffer_size,
            "method": config.method,
            "sequence_mode": config.sequence_mode,
        }
        return http.json_response(payload, status=201)

    async def _session_feed(
        self, token: str, request: http.Request
    ) -> http.Response:
        session = self.sessions.get(token, require_state=OPEN)
        batch = decode_array(request.headers, request.body)
        if batch.ndim not in (1, 2, 3):
            raise bad_request(
                f"feed expects one (atoms[, axes]) snapshot or a "
                f"(T, atoms, axes) batch, got shape {batch.shape}",
                code="bad_shape",
            )
        async with self._admit():
            summary = await self.sessions.feed(session, batch)
        return http.json_response(summary)

    async def _session_close(self, token: str) -> http.Response:
        session = self.sessions.get(token, require_state=OPEN)
        async with self._admit():
            stats = await self.sessions.close(session)
        self.recorder.count("service.sessions_closed")
        payload = stats.to_dict()
        payload["token"] = token
        payload["archive_bytes"] = stats.bytes_written
        return http.json_response(payload)

    async def _session_delete(self, token: str) -> http.Response:
        session = self.sessions.get(token)
        await self.sessions.abort(session)
        self.sessions.forget(token)
        self.recorder.count("service.sessions_aborted")
        return http.json_response({"token": token, "state": "aborted"})

    def _session_archive(self, token: str) -> http.Response:
        session = self.sessions.get(token)
        if session.state != CLOSED:
            raise conflict(
                f"session {token!r} is {session.state}; close it before "
                "downloading the archive"
            )
        blob = Path(session.path).read_bytes()
        return http.binary_response(
            {"X-MDZ-Snapshots": str(session.stats.snapshots)}, blob
        )

    def _session_stats(self, token: str) -> http.Response:
        session = self.sessions.get(token)
        payload = session.describe()
        payload["telemetry"] = session.recorder.snapshot()
        return http.json_response(payload)

    def _session_trace(self, token: str) -> http.Response:
        session = self.sessions.get(token)
        return http.json_response(
            to_chrome_trace(session.recorder.snapshot())
        )


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise method_not_allowed(f"use {expected} on this route")


def _route_label(path: str) -> str:
    """Collapse session tokens out of paths for the latency timers."""
    parts = path.split("/")
    return "/".join(
        "{token}" if i == 3 and len(p) >= 16 else p
        for i, p in enumerate(parts)
    )


async def serve(config: ServiceConfig | None = None) -> None:
    """Run one service until cancelled (the ``mdz serve`` entry point)."""
    if config is not None and config.log_json:
        configure_json_logging()
    service = CompressionService(config)
    await service.serve_forever()
