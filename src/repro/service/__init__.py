"""Compression-as-a-service: an asyncio HTTP front end for the library.

The ROADMAP's "heavy traffic" direction: everything underneath —
crash-safe streaming writes, span tracing, the cached entropy engine —
is already service-grade, and this package puts a network surface on it
with zero new dependencies (stdlib ``asyncio`` plus a minimal HTTP/1.1
layer in :mod:`repro.service.http`).

* :class:`CompressionService` / :class:`ServiceConfig` /
  :func:`serve` — the server (:mod:`repro.service.app`): one-shot
  ``compress``/``decompress``/``verify`` endpoints, token-keyed
  multi-tenant streaming sessions over
  :class:`~repro.stream.writer.StreamingWriter`, bounded admission
  control (429 + ``Retry-After`` instead of unbounded queueing),
  per-tenant telemetry/trace endpoints, idle-session expiry, and a
  graceful shutdown that seals every live archive behind the writer's
  commit fence;
* :class:`SessionManager` — the session lifecycle
  (:mod:`repro.service.sessions`);
* :mod:`repro.service.errors` — the stable ``{code, message, detail}``
  error contract shared with the CLI;
* :mod:`repro.service.payload` — binary numpy framing
  (``X-MDZ-Dtype``/``X-MDZ-Shape`` headers over raw bytes);
* :class:`ServiceClient` — a dependency-free asyncio client used by the
  tests and the load harness.

Wire-level reference: ``docs/service.md``.  CLI entry point:
``mdz serve``.
"""

from .app import CompressionService, ServiceConfig, serve
from .client import ClientResponse, ServiceClient
from .errors import (
    ERROR_CODES,
    ServiceError,
    error_body,
    error_code,
    http_status,
)
from .payload import decode_array, encode_array
from .sessions import Session, SessionManager, config_from_request

__all__ = [
    "ClientResponse",
    "CompressionService",
    "ERROR_CODES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Session",
    "SessionManager",
    "config_from_request",
    "decode_array",
    "encode_array",
    "error_body",
    "error_code",
    "http_status",
    "serve",
]
