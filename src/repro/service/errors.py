"""Structured errors for the service boundary.

Every error that crosses the HTTP surface is serialized as a stable JSON
body ``{"error": {"code", "message", "detail"}}``.  The ``code`` strings
are the machine-readable contract: clients branch on them, the CLI
prints the same strings in its ``error: [<code>] ...`` lines, and
``tests/test_service.py`` asserts the two surfaces agree.

Two layers produce errors:

* **library errors** — :class:`~repro.exceptions.ReproError` subclasses
  raised by the compressor itself (bad input, malformed container).
  :func:`error_code` maps each class to its stable code string and
  :func:`http_status` to the HTTP status it travels with (all client
  errors: the request carried data the library rejects);
* **service errors** — :class:`ServiceError`, raised by the HTTP layer
  itself (routing, framing, admission control).  Each carries its own
  status/code, and over-capacity rejections carry a ``Retry-After``
  hint so well-behaved clients back off instead of hammering.
"""

from __future__ import annotations

from ..exceptions import (
    CompressionError,
    ConfigurationError,
    ContainerFormatError,
    DecompressionError,
    ReproError,
    SimulationError,
    UnsupportedDatasetError,
)

#: Library exception class -> stable error-code string.  Ordered most
#: specific first; :func:`error_code` walks it with ``isinstance`` so a
#: ``ContainerFormatError`` maps to its own code, not its parent's.
ERROR_CODES: tuple[tuple[type[BaseException], str], ...] = (
    (ContainerFormatError, "container_malformed"),
    (UnsupportedDatasetError, "unsupported_dataset"),
    (DecompressionError, "decompression_failed"),
    (CompressionError, "compression_failed"),
    (ConfigurationError, "invalid_config"),
    (SimulationError, "simulation_failed"),
    (ReproError, "repro_error"),
    (OSError, "io_error"),
)

#: Fallback code for anything not in :data:`ERROR_CODES`.
INTERNAL_CODE = "internal_error"


def error_code(exc: BaseException) -> str:
    """The stable code string for one exception instance."""
    if isinstance(exc, ServiceError):
        return exc.code
    for cls, code in ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return INTERNAL_CODE


def http_status(exc: BaseException) -> int:
    """The HTTP status one exception travels with.

    Library errors are client errors (the request carried input the
    library rejects -> 400); anything unmapped is a server bug (500).
    """
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, (ReproError, OSError)):
        return 400
    return 500


def error_body(exc: BaseException, detail: str = "") -> dict:
    """The JSON error body for one exception: ``{code, message, detail}``."""
    if isinstance(exc, ServiceError) and not detail:
        detail = exc.detail
    return {
        "error": {
            "code": error_code(exc),
            "message": str(exc) or exc.__class__.__name__,
            "detail": detail,
        }
    }


class ServiceError(ReproError):
    """An error produced by the service layer itself.

    Carries everything the HTTP layer needs to serialize it: status,
    stable code string, optional human detail, and an optional
    ``Retry-After`` seconds hint (backpressure rejections).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: str = "",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


def bad_request(message: str, detail: str = "", code: str = "bad_request") -> ServiceError:
    """400: the request itself is malformed (framing, parameters)."""
    return ServiceError(400, code, message, detail)


def not_found(message: str, detail: str = "") -> ServiceError:
    """404: no such route or session token."""
    return ServiceError(404, "not_found", message, detail)


def method_not_allowed(message: str) -> ServiceError:
    """405: the route exists but not for this HTTP method."""
    return ServiceError(405, "method_not_allowed", message)

def conflict(message: str, detail: str = "") -> ServiceError:
    """409: the session is not in a state that allows this operation."""
    return ServiceError(409, "session_state", message, detail)


def gone(message: str, detail: str = "") -> ServiceError:
    """410: the session existed but was expired or aborted."""
    return ServiceError(410, "session_gone", message, detail)


def payload_too_large(limit: int) -> ServiceError:
    """413: request body exceeds the configured cap."""
    return ServiceError(
        413,
        "payload_too_large",
        f"request body exceeds the {limit}-byte limit",
    )


def over_capacity(pending: int, limit: int, retry_after: float = 1.0) -> ServiceError:
    """429: admission control rejected the request (bounded queue full)."""
    return ServiceError(
        429,
        "over_capacity",
        f"server is at capacity ({pending}/{limit} requests in flight)",
        "retry with backoff; see Retry-After",
        retry_after=retry_after,
    )


def shutting_down(retry_after: float = 5.0) -> ServiceError:
    """503: the server is draining for shutdown."""
    return ServiceError(
        503,
        "shutting_down",
        "server is shutting down",
        "in-flight sessions are being finalized",
        retry_after=retry_after,
    )
