"""Minimal asyncio HTTP/1.1 layer: just enough protocol for the service.

The container ships no HTTP framework, so this module implements the
slice of RFC 9112 the service actually needs over plain
``asyncio.StreamReader``/``StreamWriter``:

* request line + headers (bounded), ``Content-Length`` bodies (bounded
  by the caller's ``max_body``) — no chunked transfer encoding, no
  trailers, no upgrades;
* keep-alive by default (HTTP/1.1 semantics), honoring
  ``Connection: close`` from either side;
* every response carries an explicit ``Content-Length``, so framing is
  never ambiguous.

Responses are plain :class:`Response` values; helpers build the JSON,
binary, and structured-error shapes used by :mod:`repro.service.app`.
Protocol violations raise :class:`ProtocolError`, which the connection
loop answers with a structured 400 and a close — a malformed peer never
takes the server down.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from .errors import ServiceError, error_body, http_status, payload_too_large

#: Cap on the request line + header block, bytes.  Generous for any real
#: client, small enough that a garbage peer cannot balloon memory.
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """The peer sent bytes that are not a parseable HTTP/1.1 request."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body parsed as a JSON object (empty body -> ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise ServiceError(
                400, "bad_json", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ServiceError(
                400, "bad_json", "request body must be a JSON object"
            )
        return payload


@dataclass
class Response:
    """One HTTP response about to be serialized."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


def json_response(payload: dict, status: int = 200) -> Response:
    body = (json.dumps(payload, indent=2) + "\n").encode()
    return Response(
        status, {"Content-Type": "application/json"}, body
    )


def binary_response(headers: dict, body: bytes, status: int = 200) -> Response:
    merged = {"Content-Type": "application/octet-stream"}
    merged.update(headers)
    return Response(status, merged, body)


def text_response(
    text: str,
    status: int = 200,
    content_type: str = "text/plain; charset=utf-8",
) -> Response:
    """Plain-text response (e.g. the Prometheus exposition)."""
    return Response(status, {"Content-Type": content_type}, text.encode())


def error_response(exc: BaseException, status: int | None = None) -> Response:
    """Serialize any exception as its structured JSON error body."""
    resp = json_response(
        error_body(exc), status if status is not None else http_status(exc)
    )
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        resp.headers["Retry-After"] = str(int(max(retry_after, 1)))
    return resp


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Request | None:
    """Read one request; ``None`` on a clean EOF between requests.

    Raises :class:`ProtocolError` on malformed framing and the
    ``payload_too_large`` :class:`ServiceError` when ``Content-Length``
    exceeds ``max_body`` (the body is not read in that case — the
    connection is closed rather than drained).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF: the peer is done with the connection
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head exceeds the header limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head exceeds the header limit")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if version == "HTTP/1.0" and "connection" not in headers:
        headers["connection"] = "close"
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(
            f"unparseable Content-Length {length_text!r}"
        ) from exc
    if length < 0:
        raise ProtocolError(f"negative Content-Length {length}")
    if length > max_body:
        raise payload_too_large(max_body)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return Request(method, path, query, headers, body)


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    """Serialize one response and flush it."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()
