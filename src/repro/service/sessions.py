"""Token-keyed multi-tenant streaming sessions over ``StreamingWriter``.

One session = one tenant's in-progress ``MDZ2`` archive: a
:class:`~repro.stream.writer.StreamingWriter` spooling to a private file,
a private :class:`~repro.telemetry.tracing.TracingRecorder` (so tenants
never see each other's metrics or spans), and an ``asyncio.Lock`` that
serializes feeds *within* the session while distinct sessions run
concurrently.  Feeds execute on worker threads via ``asyncio.to_thread``
with the session recorder installed through the context-local slot
(:func:`repro.telemetry.recording`) — the contextvar layer is what makes
two interleaved tenants' telemetry not clobber each other.

Lifecycle: ``open`` -> (``closed`` | ``aborted`` | ``expired``).

* ``close`` drains the writer through its commit fence and seals the
  footer — the archive is ``mdz verify``-clean from that instant;
* ``abort`` (client gave up) and idle ``expiry`` (client disconnected
  and never came back) stop without a footer: the spool file keeps every
  committed chunk and stays salvageable via
  ``StreamingReader(salvage=True)`` — a mid-session disconnect never
  costs data the writer already acknowledged;
* :meth:`SessionManager.shutdown` walks every live session through
  ``close`` so a graceful server stop leaves only verify-clean archives.
"""

from __future__ import annotations

import asyncio
import secrets
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.config import MDZConfig
from ..exceptions import CompressionError
from ..stream.writer import StreamingWriter, StreamStats
from ..telemetry import recording
from ..telemetry.tracing import TracingRecorder
from .errors import bad_request, conflict, gone, not_found

#: Session states.
OPEN, CLOSED, ABORTED, EXPIRED = "open", "closed", "aborted", "expired"

#: MDZConfig fields a session-create request may set, with coercions.
_CONFIG_FIELDS = {
    "error_bound": float,
    "error_bound_mode": str,
    "buffer_size": int,
    "quantization_scale": int,
    "sequence_mode": str,
    "method": str,
    "adp_members": lambda v: tuple(
        part.strip() for part in v.split(",") if part.strip()
    ) if isinstance(v, str) else tuple(str(m) for m in v),
    "lossless_backend": str,
    "level_seed": int,
    "entropy_streams": int,
    "audit_interval": int,
}


def config_from_request(payload: dict) -> MDZConfig:
    """Build an :class:`MDZConfig` from a session-create JSON body.

    Unknown keys and uncoercible values are structured 400s; internally
    inconsistent settings surface as ``ConfigurationError`` from the
    config itself (mapped to ``invalid_config`` at the boundary).
    """
    kwargs = {}
    for key, value in payload.items():
        coerce = _CONFIG_FIELDS.get(key)
        if coerce is None:
            raise bad_request(
                f"unknown session config key {key!r}",
                f"allowed: {', '.join(sorted(_CONFIG_FIELDS))}",
                code="bad_config_key",
            )
        try:
            kwargs[key] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise bad_request(
                f"config key {key!r} has uncoercible value {value!r}",
                str(exc),
                code="bad_config_value",
            ) from exc
    return MDZConfig(**kwargs)


@dataclass
class Session:
    """One tenant's streaming-compression session."""

    token: str
    path: str
    writer: StreamingWriter
    recorder: TracingRecorder
    lock: asyncio.Lock
    created: float
    last_active: float
    state: str = OPEN
    stats: StreamStats | None = None

    def describe(self) -> dict:
        """JSON summary used by the create/feed/list responses."""
        live = self.writer.stats if self.stats is None else self.stats
        return {
            "token": self.token,
            "state": self.state,
            "snapshots": live.snapshots,
            "buffers": live.buffers,
            "chunks": live.chunks,
            "bytes_written": live.bytes_written,
        }


class SessionManager:
    """Creates, serves, expires, and finalizes streaming sessions.

    Parameters
    ----------
    spool_dir:
        Directory for per-session archive files (``<token>.mdz``).
    ttl:
        Idle seconds after which an open session is expired (its writer
        aborted, its file left salvageable).
    clock:
        Monotonic time source, injectable for deterministic expiry tests.
    """

    def __init__(
        self,
        spool_dir,
        ttl: float = 300.0,
        clock=time.monotonic,
        on_retire=None,
    ):
        self.spool_dir = Path(spool_dir)
        self.ttl = float(ttl)
        self._clock = clock
        self._sessions: dict[str, Session] = {}
        #: Called with each session as it leaves ``open`` (closed,
        #: aborted, or expired) — the server folds durable telemetry
        #: (quality counters) out of the tenant recorder there, since
        #: per-session series vanish from ``/metrics`` at retirement.
        self._on_retire = on_retire

    def _retire(self, session: Session) -> None:
        if self._on_retire is not None:
            self._on_retire(session)

    # -- queries --------------------------------------------------------

    def counts(self) -> dict:
        """Session-state census for the stats endpoint."""
        counts = {OPEN: 0, CLOSED: 0, ABORTED: 0, EXPIRED: 0}
        for session in self._sessions.values():
            counts[session.state] += 1
        return counts

    def live(self) -> list[Session]:
        return [s for s in self._sessions.values() if s.state == OPEN]

    def get(self, token: str, *, require_state: str | None = None) -> Session:
        """Look up one session, mapping dead states to structured errors."""
        session = self._sessions.get(token)
        if session is None:
            raise not_found(f"no session {token!r}")
        if session.state == EXPIRED:
            raise gone(f"session {token!r} expired after {self.ttl:.0f}s idle")
        if session.state == ABORTED:
            raise gone(f"session {token!r} was aborted")
        if require_state is not None and session.state != require_state:
            raise conflict(
                f"session {token!r} is {session.state}, "
                f"needs to be {require_state}"
            )
        return session

    # -- lifecycle ------------------------------------------------------

    def create(self, config: MDZConfig) -> Session:
        token = secrets.token_hex(16)
        path = str(self.spool_dir / f"{token}.mdz")
        now = self._clock()
        session = Session(
            token=token,
            path=path,
            writer=StreamingWriter(path, config),
            recorder=TracingRecorder(),
            lock=asyncio.Lock(),
            created=now,
            last_active=now,
        )
        self._sessions[token] = session
        return session

    async def feed(self, session: Session, batch) -> dict:
        """Append one snapshot — or a ``(T, N, axes)`` batch — to a session.

        Runs the CPU-bound compression on a worker thread with the
        session's private recorder installed; the session lock serializes
        feeds of one tenant without stalling the others.
        """
        async with session.lock:
            if session.state != OPEN:
                # State may have flipped while we waited on the lock
                # (expiry sweep, concurrent close).
                self.get(session.token, require_state=OPEN)
            session.last_active = self._clock()
            await asyncio.to_thread(self._feed_sync, session, batch)
            session.last_active = self._clock()
            return session.describe()

    @staticmethod
    def _feed_sync(session: Session, batch) -> None:
        with recording(session.recorder):
            if batch.ndim == 3:
                session.writer.feed_many(batch)
            else:
                session.writer.feed(batch)

    async def close(self, session: Session) -> StreamStats:
        """Finalize a session through the writer's commit fence."""
        async with session.lock:
            if session.state != OPEN:
                self.get(session.token, require_state=OPEN)
            try:
                stats = await asyncio.to_thread(self._close_sync, session)
            except CompressionError:
                # "cannot finalize an empty stream": the writer already
                # released itself and discarded the useless spool file —
                # record that so later requests get a clean 410.
                session.state = ABORTED
                self._retire(session)
                raise
            session.stats = stats
            session.state = CLOSED
            self._retire(session)
            return stats

    @staticmethod
    def _close_sync(session: Session) -> StreamStats:
        with recording(session.recorder):
            return session.writer.close()

    async def abort(self, session: Session) -> None:
        """Drop a session; the spool file stays salvageable."""
        async with session.lock:
            if session.state == OPEN:
                await asyncio.to_thread(session.writer.abort)
                session.state = ABORTED
                self._retire(session)

    def forget(self, token: str) -> None:
        """Remove a session record entirely (after an explicit DELETE)."""
        self._sessions.pop(token, None)

    # -- expiry and shutdown --------------------------------------------

    def idle_tokens(self, now: float | None = None) -> list[str]:
        """Tokens of open sessions idle past the TTL."""
        now = self._clock() if now is None else now
        return [
            s.token
            for s in self._sessions.values()
            if s.state == OPEN and now - s.last_active > self.ttl
        ]

    async def expire_idle(self, now: float | None = None) -> list[str]:
        """Expire every open session idle past the TTL.

        The writer is *aborted*, not closed: an expired tenant
        disconnected mid-stream, and sealing a footer would promote a
        half-finished trajectory to "complete".  The footer-less spool
        file keeps every committed chunk and is salvage-readable.
        """
        expired = []
        for token in self.idle_tokens(now):
            session = self._sessions.get(token)
            if session is None:
                continue
            async with session.lock:
                if session.state != OPEN:
                    continue
                await asyncio.to_thread(session.writer.abort)
                session.state = EXPIRED
                self._retire(session)
                expired.append(token)
        return expired

    async def shutdown(self) -> dict:
        """Finalize every live session for a graceful server stop.

        Each open writer is driven through ``close()`` — partial buffer
        flushed, executor drained, footer sealed behind the commit fence
        — so no tenant is left holding a torn archive.  A never-fed
        session has nothing to seal and is aborted instead (its empty
        spool file is removed by the writer).
        """
        finalized: list[str] = []
        aborted: list[str] = []
        for session in self.live():
            async with session.lock:
                if session.state != OPEN:
                    continue
                try:
                    stats = await asyncio.to_thread(self._close_sync, session)
                except CompressionError:
                    # "cannot finalize an empty stream": never-fed
                    # session; the writer already discarded its file.
                    session.state = ABORTED
                    self._retire(session)
                    aborted.append(session.token)
                    continue
                session.stats = stats
                session.state = CLOSED
                self._retire(session)
                finalized.append(session.token)
        return {"finalized": finalized, "aborted": aborted}
