"""``mdz top``: a terminal dashboard over the Prometheus exposition.

Polls ``GET /metrics`` of a running service (or renders one recorder
snapshot from a ``--metrics-json`` file) and paints a compact ANSI
dashboard: windowed throughput, request and error rates, stage latency
percentiles, cache hit rates, live sessions, and the quality-audit
gauges.  Counter *rates* are deltas between consecutive scrapes, so the
first refresh shows totals and every later one shows per-second rates;
``--once`` prints a single frame (totals only) and exits — that is what
CI archives.

No curses, no third-party client: plain ANSI escape codes over the
repository's own :mod:`repro.telemetry.prom` parser, so the dashboard
doubles as a consumer test of the exposition format.
"""

from __future__ import annotations

import time
import urllib.request

from .telemetry import prom

#: ANSI fragments; kept as data so ``color=False`` rendering stays trivial.
_CSI = "\x1b["
_RESET = _CSI + "0m"
_BOLD = _CSI + "1m"
_DIM = _CSI + "2m"
_RED = _CSI + "31m"
_GREEN = _CSI + "32m"
_YELLOW = _CSI + "33m"
_CLEAR = _CSI + "2J" + _CSI + "H"


def scrape(url: str, timeout: float = 5.0) -> dict[str, dict]:
    """Fetch and parse one ``/metrics`` exposition."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        text = resp.read().decode()
    return prom.parse(text)


def counter_totals(families: dict[str, dict]) -> dict[str, float]:
    """Sum each counter family across its label sets."""
    totals: dict[str, float] = {}
    for name, entry in families.items():
        if entry.get("type") != "counter":
            continue
        totals[name] = sum(v for _, _, v in entry["samples"])
    return totals


def gauge_values(families: dict[str, dict]) -> dict[str, float]:
    """Unlabeled value of each gauge family (server-wide series)."""
    values: dict[str, float] = {}
    for name, entry in families.items():
        if entry.get("type") != "gauge":
            continue
        for _, labels, value in entry["samples"]:
            if not labels:
                values[name] = value
    return values


def latest_gauge(
    families: dict[str, dict], name: str
) -> tuple[float, float | None] | None:
    """``(value, age_seconds)`` of one gauge family, or ``None``.

    Prefers the unlabeled (server-wide) series; with only labeled series
    (per-session quality gauges), picks the one whose companion
    ``<name>_age_seconds`` sample is smallest — the most recently
    updated tenant.
    """
    entry = families.get(name)
    if entry is None:
        return None
    ages = {
        tuple(sorted(lbls.items())): value
        for _, lbls, value in families.get(f"{name}_age_seconds", {}).get(
            "samples", []
        )
    }
    best: tuple[float, float | None] | None = None
    best_age = None
    for _, lbls, value in entry.get("samples", []):
        age = ages.get(tuple(sorted(lbls.items())))
        if not lbls:
            return (value, age)
        if best is None or (
            age is not None and (best_age is None or age < best_age)
        ):
            best, best_age = (value, age), age
    return best


def session_tokens(families: dict[str, dict]) -> set[str]:
    """Distinct ``session`` label values present in the exposition."""
    tokens: set[str] = set()
    for entry in families.values():
        for _, labels, _ in entry["samples"]:
            token = labels.get("session")
            if token:
                tokens.add(token)
    return tokens


def rates(
    prev: dict[str, float] | None,
    cur: dict[str, float],
    seconds: float,
) -> dict[str, float] | None:
    """Per-second counter rates between two scrapes (``None`` on first)."""
    if prev is None or seconds <= 0:
        return None
    return {
        name: max(0.0, cur[name] - prev.get(name, 0.0)) / seconds
        for name in cur
    }


def _mb(value: float) -> str:
    return f"{value / 1e6:8.2f}"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def render(
    families: dict[str, dict],
    counter_rates: dict[str, float] | None = None,
    *,
    source: str = "",
    color: bool = True,
) -> str:
    """One dashboard frame as a string (no trailing clear/refresh codes)."""
    totals = counter_totals(families)
    gauges = gauge_values(families)
    lines: list[str] = []

    def head(title: str) -> None:
        lines.append(_paint(f"-- {title} " + "-" * max(0, 56 - len(title)),
                            _BOLD, color))

    stamp = time.strftime("%H:%M:%S")
    mode = "rates/s" if counter_rates is not None else "totals (first sample)"
    lines.append(
        _paint(f"mdz top  {stamp}  {source}  [{mode}]", _BOLD, color)
    )

    # Throughput: raw in vs compressed out, from the stream counters.
    head("throughput")
    raw = "mdz_stream_raw_bytes_total"
    out = "mdz_stream_chunk_bytes_total"
    view = counter_rates if counter_rates is not None else totals
    unit = "MB/s" if counter_rates is not None else "MB"
    raw_v, out_v = view.get(raw, 0.0), view.get(out, 0.0)
    ratio = totals.get(raw, 0.0) / max(totals.get(out, 0.0), 1.0)
    lines.append(
        f"  raw in   {_mb(raw_v)} {unit}    compressed out {_mb(out_v)} {unit}"
        f"    session CR {ratio:6.1f}x"
    )
    snaps = view.get("mdz_stream_snapshots_total", 0.0)
    label = "snapshots/s" if counter_rates is not None else "snapshots"
    lines.append(f"  {label:12s} {snaps:10.1f}")

    # Service plane: requests, errors, rejections, admission, tenants.
    head("service")
    req = view.get("mdz_service_requests_total", 0.0)
    err = view.get("mdz_service_errors_total", 0.0)
    rej = view.get("mdz_service_rejected_total", 0.0)
    err_text = f"errors {err:8.1f}"
    if totals.get("mdz_service_errors_total", 0.0) > 0:
        err_text = _paint(err_text, _YELLOW, color)
    lines.append(
        f"  requests {req:8.1f}   {err_text}   rejected {rej:8.1f}"
    )
    inflight = gauges.get("mdz_service_inflight", 0.0)
    sessions = len(session_tokens(families))
    lines.append(f"  inflight {inflight:8.0f}   live sessions {sessions:4d}")

    # Worker-pool health: shared-state cache and dispatch mix.
    head("executor")
    hits = totals.get("mdz_stream_executor_state_cache_hit_total", 0.0)
    misses = totals.get("mdz_stream_executor_state_cache_miss_total", 0.0)
    if hits + misses:
        lines.append(
            f"  state-cache hit rate {100.0 * hits / (hits + misses):5.1f}%"
            f"   ({hits:.0f} hit / {misses:.0f} miss)"
        )
    dispatched = totals.get("mdz_stream_executor_dispatched_total", 0.0)
    inline = totals.get("mdz_stream_executor_inline_total", 0.0)
    waits = totals.get("mdz_stream_executor_backpressure_waits_total", 0.0)
    lines.append(
        f"  dispatched {dispatched:8.0f}   inline {inline:8.0f}"
        f"   backpressure waits {waits:6.0f}"
    )

    # Stage latencies: the busiest histogram families, PromQL-style
    # quantiles out of the cumulative buckets.
    hists = [
        (name, entry)
        for name, entry in families.items()
        if entry.get("type") == "histogram"
    ]

    def hist_count(entry: dict) -> float:
        return sum(
            v for n, lb, v in entry["samples"] if n.endswith("_count") and not lb
        )

    hists.sort(key=lambda kv: -hist_count(kv[1]))
    if hists:
        head("stage latency (ms)")
        lines.append(
            f"  {'stage':34s}{'calls':>8s}{'p50':>9s}{'p95':>9s}{'p99':>9s}"
        )
        for name, entry in hists[:8]:
            count = hist_count(entry)
            if not count:
                continue
            cells = []
            for q in (0.50, 0.95, 0.99):
                est = prom.histogram_quantile(entry, q)
                cells.append(f"{est * 1e3:9.3f}" if est is not None else f"{'-':>9s}")
            short = name.removeprefix("mdz_").removesuffix("_seconds")
            lines.append(f"  {short:34s}{count:8.0f}" + "".join(cells))

    # Quality plane: audit gauges plus the violation counter, loudly.
    head("quality")
    violations = totals.get("mdz_quality_bound_violations_total", 0.0)
    v_text = f"bound violations {violations:6.0f}"
    v_text = _paint(v_text, _RED if violations else _GREEN, color)
    audits = totals.get("mdz_quality_audits_total", 0.0)
    lines.append(f"  audits {audits:8.0f}   {v_text}")
    for name, label in (
        ("mdz_quality_max_abs_error", "max |err|"),
        ("mdz_quality_bound_margin", "bound margin"),
        ("mdz_quality_psnr", "psnr dB"),
        ("mdz_quality_ratio", "ratio"),
        ("mdz_quality_oos_fraction", "oos fraction"),
    ):
        got = latest_gauge(families, name)
        if got is None:
            continue
        value, age = got
        age_text = f"  ({age:.0f}s ago)" if age is not None else ""
        lines.append(
            f"  {label:14s} {value:12.6g}" + _paint(age_text, _DIM, color)
        )
    return "\n".join(lines)


def render_snapshot_file(path: str, *, color: bool = False) -> str:
    """One frame from a saved snapshot (local mode, no service).

    Accepts either a ``--metrics-json`` snapshot or a saved Prometheus
    exposition (e.g. a ``curl :8321/metrics`` capture) — the two
    offline artifacts MDZ produces.
    """
    import json

    text = open(path).read()
    try:
        snapshot = json.loads(text)
    except ValueError:
        families = prom.parse(text)
    else:
        families = prom.parse(prom.render(snapshot))
    return render(families, source=path, color=color)


def run(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    color: bool | None = None,
    out=None,
) -> int:
    """The ``mdz top`` loop; returns the process exit code.

    ``iterations`` bounds the number of frames (tests); ``None`` runs
    until interrupted.  ``color=None`` autodetects from the stream.
    """
    import sys

    stream = out if out is not None else sys.stdout
    paint = stream.isatty() if color is None else color
    metrics_url = url.rstrip("/") + "/metrics"
    prev: dict[str, float] | None = None
    prev_t = 0.0
    frame = 0
    try:
        while True:
            try:
                families = scrape(metrics_url)
            except OSError as exc:
                print(f"mdz top: cannot scrape {metrics_url}: {exc}",
                      file=stream)
                return 1
            now = time.monotonic()
            totals = counter_totals(families)
            counter_rates = rates(prev, totals, now - prev_t)
            text = render(
                families, counter_rates, source=metrics_url, color=paint
            )
            if paint and not once:
                stream.write(_CLEAR)
            print(text, file=stream)
            stream.flush()
            prev, prev_t = totals, now
            frame += 1
            if once or (iterations is not None and frame >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
