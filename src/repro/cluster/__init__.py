"""Optimal 1-D clustering substrate used by MDZ's vector quantizer.

The VQ compressor (Algorithm 1) needs the *level distance* lambda and
*initial level value* mu of the clustered coordinate distribution.  They are
obtained by optimal 1-D k-means over a sample of the first snapshot
(Section VI-A).  This subpackage implements:

* :mod:`repro.cluster.kmeans1d` — exact dynamic-programming k-means for
  sorted 1-D data with divide-and-conquer row computation;
* :mod:`repro.cluster.level_detect` — the sampling, elbow-stopping
  ``G(k) = F(N,k)/F(N,k-1)`` rule with K capped at 150, and the
  equal-distance level fit.
"""

from .kmeans1d import kmeans_1d, kmeans_1d_cost_profile
from .level_detect import LevelFit, detect_levels

__all__ = ["LevelFit", "detect_levels", "kmeans_1d", "kmeans_1d_cost_profile"]
