"""Sampling-based level detection for the VQ predictor (Section VI-A).

MDZ models a clustered coordinate axis as equal-distant *levels*:
``level(i) = mu + lambda * i``.  The fit proceeds exactly as the paper
describes:

1. sample 10 % of the first snapshot (once per simulation — the level
   pattern is stable across snapshots);
2. run the incremental 1-D k-means DP, watching ``G(k) = F(N,k)/F(N,k-1)``
   and stopping when the improvement ratio collapses after its elbow, with
   K capped at 150 (more clusters would hurt the compression of the level
   indexes);
3. recover the cluster boundaries from ``H``, and least-squares-fit the
   equal-distance line through the ascending centroids to obtain
   ``(lambda, mu)``.

Datasets with no clustering structure (uniform histograms, Figure 4 (b)
(e) (f)) yield K = 1: lambda falls back to the value range and VQ
gracefully degrades to mean prediction — which is precisely when the
adaptive selector will prefer VQT/MT anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmeans1d import clustering_for_k, kmeans_1d_cost_profile

#: Paper's cap on the number of clusters tested.
MAX_CLUSTERS = 150

#: Fraction of the first snapshot sampled for the DP.
SAMPLE_FRACTION = 0.10

#: Hard cap on the sample size fed to the O(K N log N) DP.
MAX_SAMPLE_POINTS = 1536

#: The elbow is the layer where the improvement ratio ``G`` collapses and
#: then rebounds: ``G(k+1) / G(k)`` must exceed ``ELBOW_JUMP`` and ``G(k)``
#: itself must show real improvement (below ``ELBOW_GAIN``).  Once ``G``
#: stays above ``PLATEAU`` for a few layers after a drop, the incremental
#: DP stops (adding clusters no longer helps).
ELBOW_JUMP = 1.3
ELBOW_GAIN = 0.85
ELBOW_DROP = 0.6
#: Minimum anomaly of G(k) below the unclustered-baseline ((k-1)/k)^2 for
#: k to count as a genuine level count.
ELBOW_SCORE = 1.4
PLATEAU = 0.90
PLATEAU_PATIENCE = 3


@dataclass(frozen=True)
class LevelFit:
    """Equal-distant level model of one coordinate axis.

    Attributes
    ----------
    lam:
        Level distance (lambda in Algorithm 1); always positive.
    mu:
        Initial level value (mu in Algorithm 1).
    k:
        Number of detected levels (1 = no clustering structure).
    centroids:
        The raw k-means centroids the line was fitted through.
    residual:
        RMS deviation of the centroids from the fitted line, normalized by
        ``lam`` — a diagnostic for how equal-distant the levels really are.
    """

    lam: float
    mu: float
    k: int
    centroids: np.ndarray
    residual: float

    def level_index(self, values: np.ndarray) -> np.ndarray:
        """Nearest level index for each value (the ``L_i`` of Algorithm 1)."""
        return np.rint(
            (np.asarray(values, dtype=np.float64) - self.mu) / self.lam
        ).astype(np.int64)

    def level_value(self, indices: np.ndarray) -> np.ndarray:
        """Centroid value of each level index (the ``V_i`` of Algorithm 1)."""
        return self.mu + self.lam * np.asarray(indices, dtype=np.float64)


def _sample(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """10 % sample (bounded) of the snapshot used for the DP."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    target = max(16, int(round(SAMPLE_FRACTION * flat.size)))
    target = min(target, MAX_SAMPLE_POINTS, flat.size)
    if target >= flat.size:
        return flat
    idx = rng.choice(flat.size, size=target, replace=False)
    return flat[idx]


def _choose_k(costs: np.ndarray) -> int:
    """Pick K from the ``F(N, k)`` profile via the ``G(k)`` elbow rule.

    The true cluster count shows up as the layer where ``G(k)`` (the
    improvement ratio ``F(N,k)/F(N,k-1)``) bottoms out and then rebounds:
    splitting the last genuine cluster helps a lot, splitting vibration
    noise barely helps.  We therefore pick ``k`` maximizing the rebound
    ``G(k+1)/G(k)``, requiring both a real rebound (``> ELBOW_JUMP``) and a
    real drop at the elbow itself (``G(k) < ELBOW_GAIN``).  Smooth profiles
    (unclustered data) have no such point and yield K = 1.
    """
    if costs.size <= 2:
        return 1
    with np.errstate(divide="ignore", invalid="ignore"):
        g = costs[1:] / np.maximum(costs[:-1], 1e-300)  # G(k) for k = 2..
    g = np.where(np.isfinite(g), g, 1.0)
    # Unclustered (smooth) data follows the harmonic law F(N,k) ~ 1/k^2,
    # i.e. G(k) ~ ((k-1)/k)^2.  A genuine level count shows up as G(k)
    # anomalously *below* that baseline: splitting the last real cluster
    # helps far more than splitting noise.  Score each k by the ratio and
    # demand a clear anomaly, otherwise declare no structure (K = 1).
    ks = np.arange(2, g.size + 2, dtype=np.float64)
    expected = ((ks - 1.0) / ks) ** 2
    scores = expected / np.maximum(g, 1e-12)
    # Once the clustering cost has collapsed to numerical noise, further
    # ratios are meaningless — exclude those layers from the scoring.
    floor = max(float(costs[0]) * 1e-9, 1e-30)
    converged = costs[1:] <= floor
    scores = np.where(converged, 0.0, scores)
    best = int(np.argmax(scores))
    if scores[best] < ELBOW_SCORE:
        return 1
    return best + 2


def _stop_rule(costs: np.ndarray) -> bool:
    """Early-exit callback for the incremental DP.

    Stops once the elbow has been passed and ``G`` has plateaued near 1 for
    a few layers — the paper's "stop the computation of F at kappa if
    G(kappa) decreases significantly" criterion, made symmetric so the
    plateau after the drop terminates the scan.
    """
    if costs.size >= 2 and costs[-1] <= max(costs[0] * 1e-9, 1e-30):
        # Cost collapsed to numerical noise: nothing left to split.
        return True
    if costs.size < PLATEAU_PATIENCE + 2:
        return False
    with np.errstate(divide="ignore", invalid="ignore"):
        g = costs[1:] / np.maximum(costs[:-1], 1e-300)
    saw_drop = bool((g < ELBOW_DROP).any())
    tail = g[-PLATEAU_PATIENCE:]
    return saw_drop and bool((tail > PLATEAU).all())


def _g_profile(costs: np.ndarray) -> np.ndarray:
    """``G(k) = F(N,k)/F(N,k-1)`` for k = 2.. (diagnostic helper)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        g = costs[1:] / np.maximum(costs[:-1], 1e-300)
    return np.where(np.isfinite(g), g, 0.0)


def detect_levels(
    snapshot: np.ndarray,
    max_clusters: int = MAX_CLUSTERS,
    seed: int = 0,
) -> LevelFit:
    """Fit the equal-distant level model to one coordinate snapshot.

    Parameters
    ----------
    snapshot:
        1-D array of coordinate values (one axis of the first snapshot).
    max_clusters:
        Upper bound on K (paper: 150).
    seed:
        Seed for the sampling RNG, so a given dataset always yields the
        same level model (the fit is reused for the whole run).
    """
    rng = np.random.default_rng(seed)
    sample = _sample(snapshot, rng)
    value_range = float(sample.max() - sample.min())
    if value_range == 0.0:
        # Perfectly constant axis: one level, unit distance placeholder.
        return LevelFit(
            lam=1.0,
            mu=float(sample[0]),
            k=1,
            centroids=np.array([float(sample[0])]),
            residual=0.0,
        )
    costs, h_rows, sorted_sample = kmeans_1d_cost_profile(
        sample, k_max=max_clusters, stop=_stop_rule
    )
    k = _choose_k(costs)
    clustering = clustering_for_k(sorted_sample, h_rows, k)
    centroids = clustering.centroids
    if k == 1:
        return LevelFit(
            lam=value_range,
            mu=float(centroids[0]),
            k=1,
            centroids=centroids,
            residual=0.0,
        )
    # Least-squares line through (index, centroid): centroid_i ~ mu + lam*i.
    idx = np.arange(k, dtype=np.float64)
    lam, mu = np.polyfit(idx, centroids, 1)
    lam = float(abs(lam))
    if lam <= 0 or not np.isfinite(lam):
        lam = value_range
    fitted = mu + lam * idx
    residual = float(np.sqrt(np.mean((centroids - fitted) ** 2)) / lam)
    return LevelFit(
        lam=lam, mu=float(mu), k=k, centroids=centroids, residual=residual
    )
