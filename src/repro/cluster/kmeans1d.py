"""Exact 1-D k-means by dynamic programming (Section VI-A, Formula (1)).

Optimally partitioning sorted 1-D points into K contiguous groups admits a
polynomial DP::

    F(n, k) = min_i  F(i-1, k-1) + Cost(i, n)
    H(n, k) = argmin of the same expression

with ``Cost(l, r)`` the within-cluster sum of squared deviations, computable
in O(1) from prefix sums.  The paper adopts the O(KN) algorithm of Gronlund
et al. [55]; we implement the divide-and-conquer variant that exploits the
monotonicity of ``H(n, k)`` in ``n``, giving O(K N log N) with vectorized
inner minimizations — ample for the sampled inputs (a few thousand points)
the level detector feeds it.

Indexing conventions: data is sorted ascending; ``F``/``H`` use 1-based
prefix lengths as in the paper, while cluster boundaries are reported as
0-based start indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class KMeans1DResult:
    """Optimal clustering of sorted 1-D data into ``k`` groups.

    Attributes
    ----------
    cost:
        Total within-cluster sum of squared deviations.
    boundaries:
        0-based start index of each cluster (length ``k``, first entry 0),
        over the *sorted* data.
    centroids:
        Mean of each cluster, ascending.
    """

    cost: float
    boundaries: np.ndarray
    centroids: np.ndarray

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.size)


class _PrefixCost:
    """O(1) ``Cost(l, r)`` queries via prefix sums over sorted data."""

    def __init__(self, sorted_data: np.ndarray) -> None:
        d = np.asarray(sorted_data, dtype=np.float64)
        self.n = d.size
        self.prefix = np.concatenate(([0.0], np.cumsum(d)))
        self.prefix_sq = np.concatenate(([0.0], np.cumsum(d * d)))

    def cost(self, left: np.ndarray, right: int) -> np.ndarray:
        """SSE of ``data[left : right+1]`` as one cluster (vectorized in left).

        Empty ranges (``left > right``) cost 0 — they arise transiently in
        the DP when a candidate split empties a cluster.
        """
        left = np.asarray(left)
        cnt = np.maximum(right - left + 1, 1)
        s = self.prefix[right + 1] - self.prefix[left]
        sq = self.prefix_sq[right + 1] - self.prefix_sq[left]
        return np.maximum(sq - s * s / cnt, 0.0)

    def mean(self, left: int, right: int) -> float:
        """Mean of ``data[left : right+1]`` (0.0 for an empty range)."""
        count = right - left + 1
        if count <= 0:
            return 0.0
        return (self.prefix[right + 1] - self.prefix[left]) / count


def _single_cluster_costs(pc: _PrefixCost) -> np.ndarray:
    """``F(n, 1)`` for every prefix length ``n = 1..N``."""
    ends = np.arange(pc.n)
    cnt = ends + 1
    s = pc.prefix[ends + 1]
    sq = pc.prefix_sq[ends + 1]
    return np.maximum(sq - s * s / cnt, 0.0)


def _dp_row(pc: _PrefixCost, f_prev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One DP layer: ``F(., k)`` and ``H(., k)`` from ``F(., k-1)``.

    Divide and conquer over the output prefix length; the optimal split
    ``H(n, k)`` is monotone in ``n``, so each subproblem only scans a
    shrinking candidate window (evaluated vectorized).
    """
    n = pc.n
    f_cur = np.full(n + 1, np.inf)
    h_cur = np.zeros(n + 1, dtype=np.int64)
    stack = [(1, n, 1, n)]
    while stack:
        lo, hi, opt_lo, opt_hi = stack.pop()
        if lo > hi:
            continue
        mid = (lo + hi) // 2
        cand = np.arange(opt_lo, min(mid, opt_hi) + 1)
        totals = f_prev[cand - 1] + pc.cost(cand - 1, mid - 1)
        pick = int(np.argmin(totals))
        f_cur[mid] = float(totals[pick])
        best = int(cand[pick])
        h_cur[mid] = best
        stack.append((lo, mid - 1, opt_lo, best))
        stack.append((mid + 1, hi, best, opt_hi))
    return f_cur, h_cur


def _recover_boundaries(h_rows: list[np.ndarray], n: int, k: int) -> np.ndarray:
    """Walk ``H`` backwards to 0-based cluster start indices.

    ``h_rows[j]`` is the ``H(., j+2)`` row; the split value is the 1-based
    index of the first point of the last cluster.
    """
    starts = np.empty(k, dtype=np.int64)
    end = n  # prefix length still to be partitioned
    for j in range(k - 1, 0, -1):
        split = int(h_rows[j - 1][end])
        starts[j] = split - 1
        end = split - 1
    starts[0] = 0
    return starts


def _result_from_boundaries(
    pc: _PrefixCost, starts: np.ndarray
) -> KMeans1DResult:
    k = starts.size
    ends = np.concatenate((starts[1:], [pc.n]))
    centroids = np.array(
        [pc.mean(int(starts[j]), int(ends[j]) - 1) for j in range(k)]
    )
    cost = float(
        sum(
            pc.cost(np.array([int(starts[j])]), int(ends[j]) - 1)[0]
            for j in range(k)
        )
    )
    return KMeans1DResult(cost=cost, boundaries=starts, centroids=centroids)


def kmeans_1d(data: np.ndarray, k: int) -> KMeans1DResult:
    """Optimal k-means clustering of 1-D data into exactly ``k`` groups.

    ``data`` need not be sorted; it is sorted internally.  Raises
    ``ValueError`` when ``k`` exceeds the number of points.
    """
    d = np.sort(np.asarray(data, dtype=np.float64).ravel())
    n = d.size
    if n == 0:
        raise ValueError("cannot cluster an empty array")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    pc = _PrefixCost(d)
    f = np.empty(n + 1)
    f[0] = 0.0
    f[1:] = _single_cluster_costs(pc)
    h_rows: list[np.ndarray] = []
    for _ in range(1, k):
        f, h = _dp_row(pc, f)
        h_rows.append(h)
    starts = _recover_boundaries(h_rows, n, k)
    result = _result_from_boundaries(pc, starts)
    return KMeans1DResult(
        cost=float(f[n]), boundaries=result.boundaries, centroids=result.centroids
    )


def kmeans_1d_cost_profile(
    data: np.ndarray,
    k_max: int,
    stop: Callable[[np.ndarray], bool] | None = None,
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
    """Costs ``F(N, 1..k)`` computed incrementally, with early stopping.

    The DP naturally produces ``F(N, 1), F(N, 2), ...`` in order — the paper
    exploits exactly this to stop at the ``G(k)`` elbow.  After each layer
    the optional ``stop(costs_so_far)`` callback may return True to halt.

    Returns ``(costs, h_rows, sorted_data)``; pass the latter two to
    :func:`clustering_for_k` to materialize the clustering for any computed
    ``k`` without redoing the DP.
    """
    d = np.sort(np.asarray(data, dtype=np.float64).ravel())
    n = d.size
    if n == 0:
        raise ValueError("cannot cluster an empty array")
    k_max = min(k_max, n)
    pc = _PrefixCost(d)
    f = np.empty(n + 1)
    f[0] = 0.0
    f[1:] = _single_cluster_costs(pc)
    costs = [float(f[n])]
    h_rows: list[np.ndarray] = []
    for _ in range(2, k_max + 1):
        f, h = _dp_row(pc, f)
        h_rows.append(h)
        costs.append(float(f[n]))
        if stop is not None and stop(np.asarray(costs)):
            break
    return np.asarray(costs), h_rows, d


def clustering_for_k(
    sorted_data: np.ndarray, h_rows: list[np.ndarray], k: int
) -> KMeans1DResult:
    """Materialize the optimal ``k``-clustering from stored ``H`` rows."""
    n = sorted_data.size
    if k == 1:
        pc = _PrefixCost(sorted_data)
        return _result_from_boundaries(pc, np.zeros(1, dtype=np.int64))
    if k - 1 > len(h_rows):
        raise ValueError(f"only {len(h_rows) + 1} layers computed, need {k}")
    pc = _PrefixCost(sorted_data)
    starts = _recover_boundaries(h_rows, n, k)
    return _result_from_boundaries(pc, starts)
