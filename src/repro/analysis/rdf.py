"""Radial distribution function g(r) under periodic boundaries (Fig. 14).

The RDF is the paper's physical-fidelity check: a compressor that distorts
local density shows up as a broadened or shifted g(r).  The implementation
histograms minimum-image pair distances and normalizes by the ideal-gas
shell count; for large systems a deterministic subset of base atoms keeps
the O(N^2) cost bounded without biasing the estimate.
"""

from __future__ import annotations

import numpy as np


def radial_distribution(
    positions: np.ndarray,
    box: np.ndarray,
    r_max: float | None = None,
    n_bins: int = 120,
    max_base_atoms: int = 1500,
) -> tuple[np.ndarray, np.ndarray]:
    """g(r) of one configuration.

    Parameters
    ----------
    positions:
        (N, 3) coordinates.
    box:
        Periodic box lengths (3,).
    r_max:
        Histogram range; defaults to 45 % of the smallest box length (the
        minimum-image validity limit).
    n_bins:
        Number of radial bins.
    max_base_atoms:
        Upper bound on the number of *base* atoms; distances are still
        measured to all N atoms, so the estimate stays unbiased.

    Returns ``(r, g)`` — bin centers and the RDF.
    """
    positions = np.asarray(positions, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = positions.shape[0]
    if n < 2:
        raise ValueError("RDF needs at least two atoms")
    if r_max is None:
        r_max = 0.45 * float(box.min())
    wrapped = np.mod(positions, box)
    if n > max_base_atoms:
        base_idx = np.linspace(0, n - 1, max_base_atoms).astype(np.int64)
    else:
        base_idx = np.arange(n)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts = np.zeros(n_bins, dtype=np.float64)
    # Chunk the base atoms to bound the (chunk x N x 3) temporary.
    chunk = max(1, int(4e6 // max(n, 1)))
    for s in range(0, base_idx.size, chunk):
        sel = wrapped[base_idx[s : s + chunk]]
        delta = wrapped[None, :, :] - sel[:, None, :]
        delta -= box * np.rint(delta / box)
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        # drop self distances
        flat = dist.ravel()
        flat = flat[(flat > 1e-9) & (flat < r_max)]
        counts += np.histogram(flat, bins=edges)[0]
    volume = float(np.prod(box))
    density = n / volume
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = density * shell * base_idx.size
    r = 0.5 * (edges[1:] + edges[:-1])
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return r, g


def rdf_deviation(g_ref: np.ndarray, g_test: np.ndarray) -> float:
    """RMS deviation between two RDF curves on the same bins."""
    g_ref = np.asarray(g_ref, dtype=np.float64)
    g_test = np.asarray(g_test, dtype=np.float64)
    if g_ref.shape != g_test.shape:
        raise ValueError("RDF curves must share their bins")
    return float(np.sqrt(np.mean((g_ref - g_test) ** 2)))
