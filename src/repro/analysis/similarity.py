"""Snapshot similarity to the initial snapshot (Formula (2), Figure 8).

``Similarity(tau, i)`` is the fraction of atoms whose coordinate changed by
less than the relative threshold ``tau`` between snapshot ``i`` and
snapshot 0 — the statistic motivating MT's initial-time-based prediction.
"""

from __future__ import annotations

import numpy as np


def snapshot_similarity(
    snapshot: np.ndarray, reference: np.ndarray, tau: float
) -> float:
    """Formula (2) for one snapshot against the reference (snapshot 0)."""
    snapshot = np.asarray(snapshot, dtype=np.float64).ravel()
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if snapshot.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {snapshot.shape} vs {reference.shape}"
        )
    denom = np.where(np.abs(snapshot) > 0, np.abs(snapshot), 1.0)
    rel = np.abs(snapshot - reference) / denom
    return float(np.mean(rel < tau))


def similarity_profile(
    stream: np.ndarray, tau: float, max_points: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """Similarity of every snapshot to snapshot 0 (the Figure 8 series).

    Returns ``(normalized_index, similarity)`` with the snapshot axis
    normalized to 0-100 as in the figure; at most ``max_points`` snapshots
    are evaluated (evenly spaced).
    """
    stream = np.asarray(stream, dtype=np.float64)
    t_count = stream.shape[0]
    picks = np.unique(
        np.linspace(0, t_count - 1, min(max_points, t_count)).astype(int)
    )
    sims = np.array(
        [snapshot_similarity(stream[t], stream[0], tau) for t in picks]
    )
    norm = picks / max(t_count - 1, 1) * 100.0
    return norm, sims
