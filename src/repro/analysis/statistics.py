"""Trajectory statistics used to validate compression fidelity.

Beyond the paper's RDF check (Figure 14), downstream MD analyses commonly
start from the mean squared displacement (diffusion), the velocity
autocorrelation function (vibrational spectra), and displacement
histograms.  These are provided both as analysis utilities and as extra
fidelity probes: a compressor that respects the error bound should leave
all of them essentially unchanged at sensible bounds — the extended
fidelity test in ``tests/test_statistics.py`` verifies exactly that.
"""

from __future__ import annotations

import numpy as np


def mean_squared_displacement(
    positions: np.ndarray, max_lag: int | None = None
) -> np.ndarray:
    """MSD(tau) averaged over atoms and time origins.

    Parameters
    ----------
    positions:
        (snapshots, atoms, 3) unwrapped coordinates.
    max_lag:
        Largest lag (in snapshots); defaults to half the trajectory.

    Returns the MSD for lags ``0 .. max_lag``.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3:
        raise ValueError("expected (snapshots, atoms, 3) positions")
    t_count = positions.shape[0]
    if max_lag is None:
        max_lag = t_count // 2
    max_lag = min(max_lag, t_count - 1)
    msd = np.zeros(max_lag + 1)
    for lag in range(1, max_lag + 1):
        delta = positions[lag:] - positions[:-lag]
        msd[lag] = float(np.mean(np.sum(delta**2, axis=2)))
    return msd


def velocity_autocorrelation(
    velocities: np.ndarray, max_lag: int | None = None
) -> np.ndarray:
    """Normalized VACF(tau) averaged over atoms and time origins.

    ``velocities`` is (snapshots, atoms, 3); finite differences of a
    position trajectory work as well.  VACF(0) = 1 by construction; zero
    velocities yield an all-zero function rather than NaNs.
    """
    velocities = np.asarray(velocities, dtype=np.float64)
    if velocities.ndim != 3:
        raise ValueError("expected (snapshots, atoms, 3) velocities")
    t_count = velocities.shape[0]
    if max_lag is None:
        max_lag = t_count // 2
    max_lag = min(max_lag, t_count - 1)
    norm = float(np.mean(np.sum(velocities**2, axis=2)))
    vacf = np.zeros(max_lag + 1)
    if norm == 0.0:
        return vacf
    vacf[0] = 1.0
    for lag in range(1, max_lag + 1):
        dot = np.sum(velocities[lag:] * velocities[:-lag], axis=2)
        vacf[lag] = float(np.mean(dot)) / norm
    return vacf


def displacement_histogram(
    positions: np.ndarray, lag: int = 1, n_bins: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-atom displacement magnitudes at a fixed lag.

    Returns ``(bin_centers, density)``; the density integrates to 1.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3:
        raise ValueError("expected (snapshots, atoms, 3) positions")
    if not 1 <= lag < positions.shape[0]:
        raise ValueError(f"lag must be in [1, {positions.shape[0] - 1}]")
    delta = positions[lag:] - positions[:-lag]
    magnitude = np.sqrt(np.sum(delta**2, axis=2)).ravel()
    hist, edges = np.histogram(magnitude, bins=n_bins, density=True)
    centers = 0.5 * (edges[1:] + edges[:-1])
    return centers, hist


def diffusion_coefficient(
    positions: np.ndarray, dt: float, fit_range: tuple[int, int] | None = None
) -> float:
    """Einstein-relation diffusion coefficient from the MSD slope.

    ``MSD(tau) -> 6 D tau`` at long times; the slope is fitted over
    ``fit_range`` lags (defaults to the second half of the computed MSD).
    """
    msd = mean_squared_displacement(positions)
    if fit_range is None:
        fit_range = (len(msd) // 2, len(msd))
    lo, hi = fit_range
    if hi - lo < 2:
        raise ValueError("fit range must span at least two lags")
    lags = np.arange(lo, hi) * dt
    slope = np.polyfit(lags, msd[lo:hi], 1)[0]
    return float(slope / 6.0)
