"""Compression-quality metrics (Section VII-C).

Definitions follow the paper exactly:

* **compression ratio** — raw bytes over compressed bytes;
* **bit rate** — average compressed bits per data point;
* **PSNR** — peak signal-to-noise ratio, ``20 log10(range) - 10 log10(MSE)``;
* **MaxError** — the largest absolute point-wise deviation;
* **NRMSE** — root-mean-square error normalized by the value range.
"""

from __future__ import annotations

import numpy as np


def compression_ratio(raw_bytes: int, compressed_bytes: int) -> float:
    """Raw size over compressed size."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return raw_bytes / compressed_bytes


def bit_rate(compressed_bytes: int, n_points: int) -> float:
    """Average compressed bits per data point."""
    if n_points <= 0:
        raise ValueError("point count must be positive")
    return 8.0 * compressed_bytes / n_points


def max_error(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Largest absolute point-wise error."""
    original = np.asarray(original, dtype=np.float64)
    decompressed = np.asarray(decompressed, dtype=np.float64)
    _check_shapes(original, decompressed)
    return float(np.max(np.abs(original - decompressed)))


def nrmse(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    original = np.asarray(original, dtype=np.float64)
    decompressed = np.asarray(decompressed, dtype=np.float64)
    _check_shapes(original, decompressed)
    value_range = float(original.max() - original.min())
    rmse = float(np.sqrt(np.mean((original - decompressed) ** 2)))
    if value_range == 0.0:
        return 0.0 if rmse == 0.0 else np.inf
    return rmse / value_range


def psnr(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (higher is better)."""
    original = np.asarray(original, dtype=np.float64)
    decompressed = np.asarray(decompressed, dtype=np.float64)
    _check_shapes(original, decompressed)
    value_range = float(original.max() - original.min())
    mse = float(np.mean((original - decompressed) ** 2))
    if mse == 0.0:
        return np.inf
    if value_range == 0.0:
        return -np.inf
    return 20.0 * np.log10(value_range) - 10.0 * np.log10(mse)


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(
            f"shape mismatch: original {a.shape} vs decompressed {b.shape}"
        )
