"""Rate-distortion harness (Figure 13) and CR-targeted calibration.

Two tools:

* :func:`rate_distortion_sweep` — run one compressor over a range of
  value-range-relative error bounds, collecting (bit rate, PSNR) pairs;
* :func:`calibrate_epsilon_for_cr` — bisection on the error bound to reach
  a target compression ratio, used by the Table VI / Figure 14 experiments
  ("CR = 10").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..io.batch import run_stream
from .metrics import bit_rate, psnr

#: Default epsilon grid of the Figure 13 sweeps.
DEFAULT_EPSILONS = (1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4)


@dataclass
class RateDistortionPoint:
    """One (epsilon, bit rate, PSNR, CR) sample."""

    epsilon: float
    bit_rate: float
    psnr: float
    compression_ratio: float


@dataclass
class RateDistortionCurve:
    """A compressor's rate-distortion samples on one stream."""

    compressor: str
    points: list[RateDistortionPoint] = field(default_factory=list)


def rate_distortion_sweep(
    compressor_name: str,
    stream: np.ndarray,
    buffer_size: int = 10,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    original_atoms: int | None = None,
) -> RateDistortionCurve:
    """Collect the (bit rate, PSNR) curve of one compressor (Figure 13)."""
    stream = np.asarray(stream)
    curve = RateDistortionCurve(compressor=compressor_name)
    for eps in epsilons:
        decoded = run_stream(
            compressor_name,
            stream,
            eps,
            buffer_size,
            decompress=True,
            original_atoms=original_atoms,
        )
        curve.points.append(
            RateDistortionPoint(
                epsilon=eps,
                bit_rate=bit_rate(
                    decoded.result.compressed_bytes, stream.size
                ),
                psnr=psnr(
                    stream.astype(np.float64), decoded.reconstruction
                ),
                compression_ratio=decoded.result.compression_ratio,
            )
        )
    return curve


def calibrate_epsilon_for_cr(
    compressor_name: str,
    stream: np.ndarray,
    target_cr: float,
    buffer_size: int = 10,
    original_atoms: int | None = None,
    tolerance: float = 0.05,
    max_iter: int = 18,
    eps_range: tuple[float, float] = (1e-7, 0.2),
) -> tuple[float, float]:
    """Find the epsilon that achieves ``target_cr`` (within ``tolerance``).

    Returns ``(epsilon, achieved_cr)``.  CR is monotone in epsilon for all
    compressors here, so a log-space bisection converges quickly.  Raises
    ``ValueError`` when the target is unreachable inside ``eps_range`` —
    this is exactly how the paper's "MDB could not achieve a compression
    ratio of 10" exclusion materializes.
    """
    lo, hi = eps_range

    def cr_at(eps: float) -> float:
        decoded = run_stream(
            compressor_name,
            stream,
            eps,
            buffer_size,
            original_atoms=original_atoms,
        )
        return decoded.result.compression_ratio

    cr_hi = cr_at(hi)
    if cr_hi < target_cr:
        raise ValueError(
            f"{compressor_name} cannot reach CR {target_cr} "
            f"(max {cr_hi:.2f} at eps={hi})"
        )
    cr_lo = cr_at(lo)
    if cr_lo >= target_cr:
        return lo, cr_lo
    for _ in range(max_iter):
        mid = float(np.sqrt(lo * hi))
        cr_mid = cr_at(mid)
        if abs(cr_mid - target_cr) / target_cr <= tolerance:
            return mid, cr_mid
        if cr_mid < target_cr:
            lo = mid
        else:
            hi = mid
    return mid, cr_mid
