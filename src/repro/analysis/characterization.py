"""Dataset characterization statistics (Section V, Figures 3-5).

Quantitative versions of the paper's takeaways:

* :func:`spatial_profile` — adjacent-atom differences within a snapshot
  (the zigzag/stair/random patterns of Figure 3 show up in the magnitude
  and discreteness of these differences);
* :func:`histogram_peaks` — peak count of the value histogram (multi-peak
  vs uniform, Figure 4 / Takeaway 2);
* :func:`temporal_smoothness` — per-atom inter-snapshot displacement
  relative to the value range (the two classes of Figure 5 / Takeaway 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpatialProfile:
    """Summary of one snapshot's spatial structure."""

    rms_neighbor_delta: float  # RMS difference between adjacent atoms
    rel_neighbor_delta: float  # the same, relative to the value range
    level_fraction: float  # fraction of neighbor deltas near a multiple of
    # the dominant spacing (1.0 = perfect level structure)


def spatial_profile(snapshot: np.ndarray) -> SpatialProfile:
    """Adjacent-atom difference statistics of one snapshot."""
    snapshot = np.asarray(snapshot, dtype=np.float64).ravel()
    if snapshot.size < 3:
        raise ValueError("need at least 3 atoms to characterize")
    delta = np.diff(snapshot)
    value_range = float(snapshot.max() - snapshot.min())
    rms = float(np.sqrt(np.mean(delta**2)))
    magnitudes = np.abs(delta)
    # Jumps (level changes) are the deltas clearly above the median noise
    # floor.  The dominant spacing is the mode of the jump distribution;
    # level-structured data has nearly every jump within a *fixed*
    # tolerance of a multiple of it, while continuous data lands near a
    # multiple only ~30% of the time (the tolerance covers 30% of each
    # inter-multiple interval).
    floor = 0.0
    if magnitudes.size:
        floor = max(
            0.25 * float(np.median(magnitudes)),
            0.30 * float(np.quantile(magnitudes, 0.75)),
        )
    jumps = magnitudes[magnitudes > max(floor, 1e-9)]
    if jumps.size:
        level_fraction = _best_level_fraction(jumps)
    else:
        level_fraction = 1.0
    return SpatialProfile(
        rms_neighbor_delta=rms,
        rel_neighbor_delta=rms / value_range if value_range else 0.0,
        level_fraction=level_fraction,
    )


def _best_level_fraction(jumps: np.ndarray) -> float:
    """Fraction of jumps near a multiple of the best candidate spacing.

    Candidate spacings are the medians of the most-populated magnitude
    bins plus their pairwise differences (catching the case where the
    smallest level step itself fell below the jump floor); the candidate
    maximizing the fraction wins.  Continuous jump distributions score
    ~0.3 for any spacing (the tolerance covers 30 % of each
    inter-multiple interval), level-structured ones score near 1.
    """
    upper = float(np.quantile(jumps, 0.9))
    trimmed = jumps[jumps <= upper]
    if trimmed.size == 0:
        trimmed = jumps
    hist, edges = np.histogram(trimmed, bins=64)
    top_bins = np.argsort(hist)[-3:]
    candidates = []
    for b in top_bins:
        in_bin = trimmed[(trimmed >= edges[b]) & (trimmed <= edges[b + 1])]
        if in_bin.size:
            candidates.append(float(np.median(in_bin)))
    for i in range(len(candidates)):
        for j in range(i + 1, len(candidates)):
            diff = abs(candidates[i] - candidates[j])
            if diff > 1e-12:
                candidates.append(diff)
    best = 0.0
    for spacing in candidates:
        ratio = jumps / spacing
        frac = float(np.mean(np.abs(ratio - np.rint(ratio)) < 0.15))
        best = max(best, frac)
    return best


def histogram_peaks(
    snapshot: np.ndarray, n_bins: int = 256, prominence: float = 0.15
) -> int:
    """Number of prominent peaks in the value histogram (Figure 4).

    Crystalline axes report one peak per lattice plane; uniform data
    reports a single run (the whole range).
    """
    snapshot = np.asarray(snapshot, dtype=np.float64).ravel()
    hist, _ = np.histogram(snapshot, bins=n_bins)
    kernel = np.ones(5) / 5.0
    smooth = np.convolve(hist.astype(np.float64), kernel, mode="same")
    if smooth.max() == 0:
        return 0
    # A genuine level peak rises above `prominence` of the tallest peak
    # AND is separated by near-empty valleys; counting threshold runs
    # captures exactly that (a flat/uniform histogram is one long run).
    above = smooth > prominence * smooth.max()
    runs = int(np.count_nonzero(np.diff(above.astype(np.int8)) == 1))
    if above[0]:
        runs += 1
    return runs


@dataclass(frozen=True)
class TemporalSmoothness:
    """Summary of the time-dimension behaviour of a stream."""

    rms_step: float  # RMS per-snapshot displacement
    rel_step: float  # the same, relative to the value range
    smooth: bool  # True = Figure 5 class 2 ("change slightly")


#: Relative-step threshold separating the two Figure 5 classes.
SMOOTH_THRESHOLD = 1e-3


def temporal_smoothness(stream: np.ndarray) -> TemporalSmoothness:
    """Per-atom inter-snapshot displacement statistics (Takeaway 4)."""
    stream = np.asarray(stream, dtype=np.float64)
    if stream.ndim != 2 or stream.shape[0] < 2:
        raise ValueError("need a (snapshots >= 2, atoms) stream")
    steps = np.diff(stream, axis=0)
    rms = float(np.sqrt(np.mean(steps**2)))
    value_range = float(stream.max() - stream.min())
    rel = rms / value_range if value_range else 0.0
    return TemporalSmoothness(
        rms_step=rms, rel_step=rel, smooth=rel < SMOOTH_THRESHOLD
    )
