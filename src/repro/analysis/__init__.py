"""Analysis toolkit: the metrics of Section VII.

* :mod:`repro.analysis.metrics` — CR, bit rate, PSNR, MaxError, NRMSE;
* :mod:`repro.analysis.similarity` — Formula (2), snapshot-0 similarity
  (Figure 8);
* :mod:`repro.analysis.rdf` — radial distribution function g(r) under
  periodic boundaries (Figure 14);
* :mod:`repro.analysis.characterization` — the spatial/temporal feature
  statistics behind Figures 3-5 and the four takeaways;
* :mod:`repro.analysis.ratedistortion` — bit-rate/PSNR sweeps (Figure 13)
  and CR-targeted error-bound calibration (Table VI / Figure 14).
"""

from .metrics import (
    bit_rate,
    compression_ratio,
    max_error,
    nrmse,
    psnr,
)
from .rdf import radial_distribution
from .similarity import snapshot_similarity, similarity_profile
from .characterization import (
    histogram_peaks,
    spatial_profile,
    temporal_smoothness,
)
from .ratedistortion import calibrate_epsilon_for_cr, rate_distortion_sweep
from .statistics import (
    diffusion_coefficient,
    displacement_histogram,
    mean_squared_displacement,
    velocity_autocorrelation,
)

__all__ = [
    "bit_rate",
    "calibrate_epsilon_for_cr",
    "compression_ratio",
    "diffusion_coefficient",
    "displacement_histogram",
    "histogram_peaks",
    "max_error",
    "mean_squared_displacement",
    "nrmse",
    "psnr",
    "radial_distribution",
    "rate_distortion_sweep",
    "similarity_profile",
    "snapshot_similarity",
    "spatial_profile",
    "velocity_autocorrelation",
    "temporal_smoothness",
]
