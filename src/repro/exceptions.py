"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything produced here with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class CompressionError(ReproError):
    """Raised when a compressor cannot encode the data it was given."""


class DecompressionError(ReproError):
    """Raised when a byte stream cannot be decoded.

    Typical causes are a truncated stream, a corrupted section header, or a
    blob produced by a different compressor/version.
    """


class UnsupportedDatasetError(CompressionError):
    """Raised when a compressor declines a dataset it cannot handle.

    This mirrors the runtime exceptions the paper reports for TNG and HRTC
    on large datasets (Section VII-A5): both reference implementations abort
    when the atom count exceeds their internal limits.  Our reimplementations
    reproduce that behaviour explicitly through this exception.
    """


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent settings."""


class ContainerFormatError(DecompressionError):
    """Raised when an ``.mdz`` container is malformed or has a bad magic."""


class SimulationError(ReproError):
    """Raised when the MD simulation substrate is driven into a bad state.

    Examples: exploding dynamics (non-finite coordinates), a box too small
    for the interaction cutoff, or invalid thermostat parameters.
    """
