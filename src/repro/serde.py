"""Binary section framing shared by every compressor in the package.

Compressed payloads in this library are assembled from small, self-describing
*sections*.  A section is either a raw byte blob, a numpy array (dtype and
shape are recorded in the frame so the reader needs no out-of-band schema), a
UTF-8 string, or a JSON-serializable metadata object.  Framing every piece of
a payload keeps the individual compressors honest: the sizes reported in the
benchmarks are the sizes of complete, decodable streams, headers included.

The format of one frame is::

    tag     : 1 byte   (SectionTag)
    length  : u64 LE   (byte length of the body)
    body    : `length` bytes

Array bodies carry their own mini-header (dtype string, ndim, shape) before
the raw data.  All integers are little-endian.
"""

from __future__ import annotations

import io
import json
import struct
from enum import IntEnum
from typing import Any, BinaryIO

import numpy as np

from .exceptions import DecompressionError

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class SectionTag(IntEnum):
    """Discriminator byte written in front of every frame body."""

    BYTES = 1
    ARRAY = 2
    STRING = 3
    JSON = 4


class BlobWriter:
    """Accumulates framed sections into a single ``bytes`` payload.

    Example
    -------
    >>> w = BlobWriter()
    >>> w.write_json({"method": "vq"})
    >>> w.write_array(np.arange(4))
    >>> blob = w.getvalue()
    """

    def __init__(self) -> None:
        self._buf = io.BytesIO()

    def write_bytes(self, data: bytes) -> None:
        """Append a raw byte blob section."""
        self._write_frame(SectionTag.BYTES, data)

    def write_string(self, text: str) -> None:
        """Append a UTF-8 string section."""
        self._write_frame(SectionTag.STRING, text.encode("utf-8"))

    def write_json(self, obj: Any) -> None:
        """Append a JSON metadata section (compact separators)."""
        body = json.dumps(obj, separators=(",", ":"), sort_keys=True)
        self._write_frame(SectionTag.JSON, body.encode("utf-8"))

    def write_array(self, arr: np.ndarray) -> None:
        """Append a numpy array section (dtype and shape self-described)."""
        # note: ascontiguousarray would promote 0-dim arrays to 1-dim;
        # tobytes() already serializes any layout in C order.
        arr = np.asarray(arr)
        dtype_name = arr.dtype.str  # e.g. '<f8', includes byte order
        header = dtype_name.encode("ascii")
        body = io.BytesIO()
        body.write(_U32.pack(len(header)))
        body.write(header)
        body.write(_U32.pack(arr.ndim))
        for dim in arr.shape:
            body.write(_U64.pack(dim))
        body.write(arr.tobytes())
        self._write_frame(SectionTag.ARRAY, body.getvalue())

    def getvalue(self) -> bytes:
        """Return everything written so far as one byte string."""
        return self._buf.getvalue()

    def __len__(self) -> int:
        return self._buf.getbuffer().nbytes

    def _write_frame(self, tag: SectionTag, body: bytes) -> None:
        self._buf.write(bytes([tag]))
        self._buf.write(_U64.pack(len(body)))
        self._buf.write(body)


class BlobReader:
    """Reads framed sections back in the order they were written.

    Every ``read_*`` method verifies the frame tag and raises
    :class:`~repro.exceptions.DecompressionError` on mismatch or truncation,
    so format corruption is detected at the earliest possible point.
    """

    def __init__(self, blob: bytes) -> None:
        self._buf: BinaryIO = io.BytesIO(blob)
        self._size = len(blob)

    def read_bytes(self) -> bytes:
        """Read the next section, which must be a raw byte blob."""
        return self._read_frame(SectionTag.BYTES)

    def read_string(self) -> str:
        """Read the next section, which must be a UTF-8 string."""
        return self._read_frame(SectionTag.STRING).decode("utf-8")

    def read_json(self) -> Any:
        """Read the next section, which must be a JSON object."""
        body = self._read_frame(SectionTag.JSON)
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:  # pragma: no cover - corrupted stream
            raise DecompressionError(f"corrupt JSON section: {exc}") from exc

    def read_array(self) -> np.ndarray:
        """Read the next section, which must be a numpy array."""
        body = self._read_frame(SectionTag.ARRAY)
        view = io.BytesIO(body)
        (hdr_len,) = _U32.unpack(self._take(view, 4))
        dtype = np.dtype(self._take(view, hdr_len).decode("ascii"))
        (ndim,) = _U32.unpack(self._take(view, 4))
        shape = tuple(
            _U64.unpack(self._take(view, 8))[0] for _ in range(ndim)
        )
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        raw = view.read()
        expected = count * dtype.itemsize
        if len(raw) != expected:
            raise DecompressionError(
                f"array section body has {len(raw)} bytes, expected {expected}"
            )
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()

    @property
    def exhausted(self) -> bool:
        """True when every section has been consumed."""
        return self._buf.tell() >= self._size

    def _read_frame(self, expected: SectionTag) -> bytes:
        head = self._buf.read(9)
        if len(head) != 9:
            raise DecompressionError("truncated stream: missing frame header")
        tag = head[0]
        (length,) = _U64.unpack(head[1:])
        if tag != expected:
            raise DecompressionError(
                f"expected section tag {expected.name}, found {tag}"
            )
        body = self._buf.read(length)
        if len(body) != length:
            raise DecompressionError("truncated stream: short frame body")
        return body

    @staticmethod
    def _take(view: BinaryIO, n: int) -> bytes:
        data = view.read(n)
        if len(data) != n:
            raise DecompressionError("truncated stream: short array header")
        return data


def pack_blobs(blobs: list[bytes]) -> bytes:
    """Concatenate independent byte blobs into one stream with an index."""
    writer = BlobWriter()
    writer.write_json(len(blobs))
    for blob in blobs:
        writer.write_bytes(blob)
    return writer.getvalue()


def unpack_blobs(stream: bytes) -> list[bytes]:
    """Inverse of :func:`pack_blobs`."""
    reader = BlobReader(stream)
    count = int(reader.read_json())
    return [reader.read_bytes() for _ in range(count)]
