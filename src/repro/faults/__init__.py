"""Deterministic fault injection for the streaming subsystem.

This package answers one question reproducibly: *what exactly happens
to an ``MDZ2`` archive when the world misbehaves?*  It has three parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  seeded serialisable descriptions of torn writes, injected
  ``OSError``/``ENOSPC``, byte corruption, truncation, and worker-job
  failures;
* :mod:`repro.faults.injector` — the shims that realise a plan:
  :class:`FaultyFile` (wraps the writer's file handle),
  :class:`FaultyExecutor` (wraps the compression pool), and
  :func:`apply_posthoc` (damages finished bytes);
* :mod:`repro.faults.harness` — :func:`run_chaos`, which runs one
  pristine and one faulted compression of the same trajectory and
  checks the *no-silent-loss* invariant: the run ends in either a
  byte-exact archive or a salvage report accounting for every snapshot.

Everything is seeded and deterministic — a failing chaos test
reproduces from ``FaultPlan.random(seed)`` alone.  The recovery
machinery this package exercises lives in :mod:`repro.stream` (writer
fence commits, executor retries, reader salvage) and
:mod:`repro.stream.format` (``verify_stream`` / ``repair_stream``).
"""

from .harness import ChaosResult, run_chaos
from .injector import FaultyExecutor, FaultyFile, apply_posthoc
from .plan import KINDS, FaultPlan, FaultSpec

__all__ = [
    "ChaosResult",
    "FaultPlan",
    "FaultSpec",
    "FaultyExecutor",
    "FaultyFile",
    "KINDS",
    "apply_posthoc",
    "run_chaos",
]
