"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, serialisable description of every
fault one chaos run will inject — nothing about injection is random at
run time, so a failing chaos test reproduces from its seed alone.

Fault kinds
-----------

Faults split by *where* they act:

* **write-path faults** intercept the writer's file handle
  (:class:`repro.faults.injector.FaultyFile`):

  - ``io_error`` — ``write()`` raises :class:`OSError` (``ENOSPC``)
    without writing anything, once the stream's byte position reaches
    ``offset``; fires ``times`` times, then clears (a full disk that
    frees up, a transient EIO).
  - ``torn_write`` — ``write()`` persists only the first ``length``
    bytes of the affected call, then raises ``EIO``: the classic torn
    frame a crash leaves behind, which the writer's fence rollback must
    truncate away.

* **worker faults** intercept executor jobs
  (:class:`repro.faults.injector.FaultyExecutor`):

  - ``worker_fail`` — compression job number ``job_index`` raises
    :class:`OSError` on its first ``times`` attempts (counted across
    process boundaries), standing in for a worker killed mid-job: the
    pool surfaces both the same way, as a failed result fetch.

* **post-hoc faults** damage the finished file on disk
  (:func:`repro.faults.injector.apply_posthoc`) — what bit rot, a bad
  copy, or ``kill -9`` mid-``write`` leave behind:

  - ``corrupt`` — XOR ``xor_mask`` over ``length`` bytes at ``offset``;
  - ``truncate`` — cut the file to ``offset`` bytes.

Offsets of write-path faults are positions in the *logical output
stream* (byte N of the archive), so a plan places a fault "inside chunk
3" without knowing frame sizes in advance; post-hoc offsets index the
final file, and may be given as negative values to count from the end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Every fault kind a plan may carry, grouped by injection site.
WRITE_KINDS = ("io_error", "torn_write")
WORKER_KINDS = ("worker_fail",)
POSTHOC_KINDS = ("corrupt", "truncate")
KINDS = WRITE_KINDS + WORKER_KINDS + POSTHOC_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.  Field meaning depends on ``kind``.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    offset:
        Write faults: logical stream position that arms the fault (the
        first ``write`` that would cover this byte trips it).  Post-hoc
        faults: byte offset in the finished file; negative counts from
        the end.  Ignored by ``worker_fail``.
    length:
        ``torn_write``: bytes of the affected call that still land.
        ``corrupt``: size of the damaged span.  Ignored otherwise.
    times:
        ``io_error``/``torn_write``/``worker_fail``: how many times the
        fault fires before clearing.  A value larger than the writer's
        retry budget turns a transient fault into a permanent one.
    xor_mask:
        ``corrupt``: byte mask XORed over the span (must be non-zero or
        the corruption is a no-op).
    job_index:
        ``worker_fail``: which executor job (0-based submission order,
        counting only pool-submitted jobs) fails.

    Raises
    ------
    ValueError
        For an unknown ``kind`` or a self-contradictory spec.
    """

    kind: str
    offset: int = 0
    length: int = 1
    times: int = 1
    xor_mask: int = 0xFF
    job_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.times < 1:
            raise ValueError("a fault must fire at least once (times >= 1)")
        if self.kind == "corrupt" and self.xor_mask % 256 == 0:
            raise ValueError("corrupt with xor_mask 0 would change nothing")
        if self.kind == "truncate" and self.offset < 0:
            # Negative offsets are fine (from-the-end), but -0 confusion
            # aside, a truncate needs *some* reference point.
            pass

    def to_json(self) -> dict:
        """Plain-dict form (stable keys, JSON-serialisable)."""
        return {
            "kind": self.kind,
            "offset": self.offset,
            "length": self.length,
            "times": self.times,
            "xor_mask": self.xor_mask,
            "job_index": self.job_index,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        allowed = {
            "kind",
            "offset",
            "length",
            "times",
            "xor_mask",
            "job_index",
        }
        extra = set(data) - allowed
        if extra:
            raise ValueError(f"unknown FaultSpec fields: {sorted(extra)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of :class:`FaultSpec`.

    Plans are immutable and fully describe a chaos run's faults; the
    harness (:func:`repro.faults.harness.run_chaos`) derives nothing
    else from randomness.
    """

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    #: The seed the plan was generated from (0 for hand-built plans).
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def write_faults(self) -> tuple[FaultSpec, ...]:
        """Specs injected through the file handle, in declaration order."""
        return tuple(s for s in self.specs if s.kind in WRITE_KINDS)

    @property
    def worker_faults(self) -> tuple[FaultSpec, ...]:
        """Specs injected through the executor."""
        return tuple(s for s in self.specs if s.kind in WORKER_KINDS)

    @property
    def posthoc_faults(self) -> tuple[FaultSpec, ...]:
        """Specs applied to the finished file bytes."""
        return tuple(s for s in self.specs if s.kind in POSTHOC_KINDS)

    def to_json(self) -> dict:
        """Plain-dict form: ``{"seed": ..., "specs": [...]}``."""
        return {
            "seed": self.seed,
            "specs": [s.to_json() for s in self.specs],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls(
            specs=tuple(
                FaultSpec.from_json(s) for s in data.get("specs", [])
            ),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        size_hint: int = 4096,
        n_faults: int = 2,
        kinds: tuple[str, ...] = KINDS,
        jobs_hint: int = 8,
    ) -> "FaultPlan":
        """Generate a deterministic plan from ``seed``.

        Parameters
        ----------
        seed:
            Drives a private :class:`random.Random`; equal seeds (and
            equal hints) produce byte-equal plans on every platform.
        size_hint:
            Approximate archive size in bytes; fault offsets are drawn
            from ``[64, size_hint)`` so they land past the header.
        n_faults:
            Number of specs to draw.
        kinds:
            Pool of kinds to draw from (e.g. only write-path kinds for
            a writer-focused matrix).
        jobs_hint:
            Upper bound for drawn ``job_index`` values.
        """
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            kind = rng.choice(list(kinds))
            offset = rng.randrange(64, max(size_hint, 65))
            if kind == "io_error":
                spec = FaultSpec(kind, offset=offset, times=rng.randint(1, 5))
            elif kind == "torn_write":
                spec = FaultSpec(
                    kind,
                    offset=offset,
                    length=rng.randint(1, 32),
                    times=rng.randint(1, 5),
                )
            elif kind == "worker_fail":
                spec = FaultSpec(
                    kind,
                    job_index=rng.randrange(max(jobs_hint, 1)),
                    times=rng.randint(1, 4),
                )
            elif kind == "corrupt":
                spec = FaultSpec(
                    kind,
                    offset=offset,
                    length=rng.randint(1, 16),
                    xor_mask=rng.randint(1, 255),
                )
            else:  # truncate
                spec = FaultSpec(kind, offset=offset)
            specs.append(spec)
        return cls(specs=tuple(specs), seed=seed)
