"""Fault injection shims: the file handle, the executor, the file bytes.

Three injection sites, matching the three fault groups of
:mod:`repro.faults.plan`:

* :class:`FaultyFile` wraps the binary file object a
  :class:`~repro.stream.writer.StreamingWriter` writes to, arming
  ``io_error``/``torn_write`` specs against the logical byte position of
  the output stream;
* :class:`FaultyExecutor` subclasses
  :class:`~repro.stream.executor.ParallelExecutor` and wraps selected
  jobs in :func:`_flaky_call`, which fails deterministically for the
  first ``times`` attempts — attempts are counted in a file so the
  count survives the process boundary (pool workers share nothing
  else);
* :func:`apply_posthoc` damages finished archive bytes (``corrupt``,
  ``truncate``).

Every fired fault is recorded twice: as a telemetry counter/event
(``faults.injected.<kind>``) and on the injector's ``injected`` list,
which the chaos harness folds into its result for post-mortems.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import BinaryIO, Iterable

from ..stream.executor import ParallelExecutor
from ..telemetry import get_recorder
from .plan import FaultSpec


class FaultyFile:
    """A writable binary file wrapper that injects write-path faults.

    Parameters
    ----------
    fh:
        The real file object.  Must support ``write``; ``seek`` /
        ``truncate`` / ``flush`` / ``tell`` / ``fileno`` / ``close``
        are passed through when present (the writer's fence rollback
        depends on ``seek`` + ``truncate`` reaching the real file).
    specs:
        Write-path :class:`FaultSpec` entries (``io_error``,
        ``torn_write``).  Each spec fires when a ``write`` call covers
        its ``offset`` in the logical output stream, at most ``times``
        times, then stays cleared.

    Attributes
    ----------
    injected:
        Human-readable record of every fault fired, in order.
    position:
        The wrapper's view of the stream position (mirrors the
        underlying file through writes and seeks).
    """

    def __init__(self, fh: BinaryIO, specs: Iterable[FaultSpec] = ()) -> None:
        self._fh = fh
        self._specs = [s for s in specs]
        for s in self._specs:
            if s.kind not in ("io_error", "torn_write"):
                raise ValueError(
                    f"FaultyFile cannot inject {s.kind!r} faults"
                )
        self._remaining = [s.times for s in self._specs]
        self.injected: list[str] = []
        try:
            self.position = fh.tell()
        except (OSError, AttributeError):
            self.position = 0

    # -- fault machinery ------------------------------------------------

    def _armed_spec(self, size: int) -> tuple[int, FaultSpec] | None:
        """The first armed spec this write would cover, if any."""
        for i, spec in enumerate(self._specs):
            if self._remaining[i] <= 0:
                continue
            if self.position <= spec.offset < self.position + size:
                return i, spec
        return None

    def _fire(self, i: int, spec: FaultSpec, detail: str) -> None:
        self._remaining[i] -= 1
        note = f"{spec.kind}@{spec.offset}: {detail}"
        self.injected.append(note)
        recorder = get_recorder()
        recorder.count(f"faults.injected.{spec.kind}")
        recorder.event("faults.injected", note)

    # -- file protocol --------------------------------------------------

    def write(self, data: bytes) -> int:
        """Write ``data``, or fire the armed fault covering this span.

        ``io_error`` raises before any byte lands; ``torn_write``
        persists the first ``spec.length`` bytes (advancing the
        position, as a real torn write would) and then raises.  The
        raised :class:`OSError` carries ``ENOSPC``/``EIO`` so it is
        indistinguishable from the real thing to the code under test.
        """
        hit = self._armed_spec(len(data))
        if hit is None:
            n = self._fh.write(data)
            self.position += n
            return n
        i, spec = hit
        if spec.kind == "io_error":
            self._fire(i, spec, f"ENOSPC on {len(data)}-byte write")
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        # torn_write: part of the frame lands, then the "crash".
        torn = data[: max(spec.length, 0)]
        if torn:
            self.position += self._fh.write(torn)
            self._fh.flush()
        self._fire(
            i, spec, f"wrote {len(torn)}/{len(data)} bytes then EIO"
        )
        raise OSError(errno.EIO, "injected: torn write")

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        new = self._fh.seek(offset, whence)
        self.position = new
        return new

    def truncate(self, size: int | None = None) -> int:
        return self._fh.truncate(size)

    def tell(self) -> int:
        return self._fh.tell()

    def flush(self) -> None:
        self._fh.flush()

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()

    @property
    def exhausted(self) -> bool:
        """True when every spec has fired its full ``times`` budget."""
        return all(r <= 0 for r in self._remaining)


def _flaky_call(counter_path: str, fail_times: int, fn, *args):
    """Run ``fn(*args)``, failing deterministically the first attempts.

    The attempt count lives in the *size* of the file at
    ``counter_path`` — one byte appended per attempt — which is the
    simplest cross-process counter there is: pool workers share no
    memory with the session, but they share the filesystem.  Attempts
    ``1..fail_times`` raise :class:`OSError`; later attempts run the
    real job, so executor retry logic (resubmission, inline fallback)
    is exercised end to end.

    Module-level and argument-picklable by construction, since it must
    cross the ``multiprocessing`` boundary.
    """
    with open(counter_path, "ab") as fh:
        fh.write(b"x")
    attempts = os.path.getsize(counter_path)
    if attempts <= fail_times:
        raise OSError(
            errno.EIO,
            f"injected worker fault (attempt {attempts}/{fail_times})",
        )
    return fn(*args)


class FaultyExecutor(ParallelExecutor):
    """A :class:`ParallelExecutor` that makes chosen jobs fail.

    Jobs are counted in submission order (``push`` entries — in-session
    results — do not count); a job whose index matches a
    ``worker_fail`` spec is wrapped in :func:`_flaky_call` with a fresh
    counter file, so it fails its first ``spec.times`` attempts whether
    they run in a pool worker or inline.  Because the executor's retry
    path resubmits the *wrapped* callable, the attempt counter keeps
    advancing across retries — exactly the behaviour of a real flaky
    worker.

    Indices address *axis* jobs: a batched
    :class:`~repro.stream.executor.FlushJobSpec` submission covers
    ``len(spec.jobs)`` consecutive indices, so a plan written against
    the per-axis dispatch keeps hitting the same (buffer, axis) job
    under the batched transport.  A batch containing a marked axis
    fails as a unit — the coarsest failure a real worker crash would
    produce anyway.

    Parameters
    ----------
    specs:
        ``worker_fail`` :class:`FaultSpec` entries.
    counter_dir:
        Directory for attempt-counter files (must outlive the run).
    workers / max_pending:
        Passed through to :class:`ParallelExecutor`.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        counter_dir: str | Path | None = None,
        workers: int = 0,
        max_pending: int | None = None,
    ) -> None:
        super().__init__(workers=workers, max_pending=max_pending)
        self._fault_by_job: dict[int, FaultSpec] = {}
        for s in specs:
            if s.kind != "worker_fail":
                raise ValueError(
                    f"FaultyExecutor cannot inject {s.kind!r} faults"
                )
            self._fault_by_job[s.job_index] = s
        if self._fault_by_job and counter_dir is None:
            raise ValueError(
                "worker_fail specs need a counter_dir for attempt files"
            )
        self._counter_dir = Path(counter_dir) if counter_dir else None
        self._job_counter = 0
        self.injected: list[str] = []

    def submit(self, fn, *args, slot=None) -> None:
        """Submit a job, wrapping it when it covers a marked axis index."""
        jobs = getattr(args[0], "jobs", None) if args else None
        count = len(jobs) if jobs is not None else 1
        first = self._job_counter
        self._job_counter += count
        hit = None
        for job in range(first, first + count):
            spec = self._fault_by_job.get(job)
            if spec is not None:
                hit = (job, spec)
                break
        if hit is None:
            super().submit(fn, *args, slot=slot)
            return
        job, spec = hit
        counter = self._counter_dir / f"job{job}.attempts"
        counter.touch()
        note = f"worker_fail@job{job}: fails first {spec.times} attempts"
        self.injected.append(note)
        recorder = get_recorder()
        recorder.count("faults.injected.worker_fail")
        recorder.event("faults.injected", note)
        super().submit(
            _flaky_call, str(counter), spec.times, fn, *args, slot=slot
        )


def apply_posthoc(blob: bytes, specs: Iterable[FaultSpec]) -> bytes:
    """Apply ``corrupt``/``truncate`` specs to finished archive bytes.

    Specs are applied in order; offsets may be negative (from the end)
    and are clamped to the blob, so a plan generated against a size
    hint never raises on a smaller-than-expected archive — a fault that
    falls entirely past the end is simply a no-op.
    """
    out = bytearray(blob)
    for spec in specs:
        if spec.kind == "corrupt":
            start = spec.offset if spec.offset >= 0 else len(out) + spec.offset
            start = max(0, min(start, len(out)))
            end = min(start + spec.length, len(out))
            for i in range(start, end):
                out[i] ^= spec.xor_mask & 0xFF
        elif spec.kind == "truncate":
            cut = spec.offset if spec.offset >= 0 else len(out) + spec.offset
            del out[max(0, min(cut, len(out))) :]
        else:
            raise ValueError(
                f"apply_posthoc cannot apply {spec.kind!r} faults"
            )
    return bytes(out)
