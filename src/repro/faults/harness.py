"""The chaos harness: one faulted run, fully accounted.

:func:`run_chaos` executes the whole fault/recovery story for one
:class:`~repro.faults.plan.FaultPlan`:

1. a pristine reference run (no faults, serial) produces the expected
   archive bytes and the expected decoded trajectory;
2. the chaos run streams the same snapshots through a
   :class:`~repro.stream.writer.StreamingWriter` whose file handle and
   executor are the fault-injecting shims; a writer that gives up
   (fault outlasting the retry budget) is recorded as a crash, not an
   error — the file on disk at that instant is what a real crash
   leaves;
3. post-hoc faults (bit rot, truncation) damage the resulting bytes;
4. the damaged archive is audited (:func:`~repro.stream.format.verify_stream`)
   and, when not intact, salvage-read with full loss accounting.

The invariant the harness enforces — and chaos tests assert via
:attr:`ChaosResult.ok` — is **no silent data loss**: every run ends in
either a byte-exact archive or a salvage report whose readable + lost
(+ explicitly flagged unaccounted tail) covers every snapshot fed, with
every salvaged snapshot decoding byte-identical to the pristine run.
"""

from __future__ import annotations

import io
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.config import MDZConfig
from ..exceptions import CompressionError, ContainerFormatError
from ..stream.format import verify_stream
from ..stream.reader import StreamingReader
from ..stream.writer import StreamingWriter
from .injector import FaultyExecutor, FaultyFile, apply_posthoc
from .plan import FaultPlan


@dataclass
class ChaosResult:
    """Outcome of one :func:`run_chaos` invocation.

    ``outcome`` is ``"intact"`` (the archive verified clean),
    ``"salvaged"`` (damage detected, salvage read performed), or
    ``"destroyed"`` (nothing parseable survived — header gone or file
    empty; still a fully accounted outcome: everything is lost).
    """

    outcome: str
    #: Archive bytes equal the pristine run's (only meaningful when
    #: ``outcome == "intact"``; fault-free retries must not change bytes).
    byte_exact: bool
    #: Every salvaged buffer decoded byte-identical to the pristine
    #: trajectory at its snapshot range (vacuously True when intact).
    content_exact: bool
    #: readable + lost (+ explicit unaccounted tail) covers every
    #: snapshot fed — the no-silent-loss invariant.
    accounted: bool
    snapshots_fed: int
    readable_snapshots: int
    lost_snapshots: list[int] = field(default_factory=list)
    truncated_tail: bool = False
    #: The writer error message when the chaos run crashed, else None.
    crashed: str | None = None
    #: Human-readable notes of every fault actually fired.
    injected: list[str] = field(default_factory=list)
    verify: dict = field(default_factory=dict)
    salvage: dict | None = None
    plan: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The no-silent-loss invariant held for this run."""
        if self.outcome == "intact":
            return self.byte_exact and not self.crashed
        return self.accounted and self.content_exact

    def to_json(self) -> dict:
        """JSON-serialisable form (chaos-smoke CI uploads these)."""
        return {
            "outcome": self.outcome,
            "ok": self.ok,
            "byte_exact": self.byte_exact,
            "content_exact": self.content_exact,
            "accounted": self.accounted,
            "snapshots_fed": self.snapshots_fed,
            "readable_snapshots": self.readable_snapshots,
            "lost_snapshots": self.lost_snapshots,
            "truncated_tail": self.truncated_tail,
            "crashed": self.crashed,
            "injected": self.injected,
            "verify": self.verify,
            "salvage": self.salvage,
            "plan": self.plan,
        }


def _destroyed(
    positions: np.ndarray,
    plan: FaultPlan,
    injected: list[str],
    crashed: str | None,
    reason: str,
) -> ChaosResult:
    """Total-loss result: nothing parseable survived, all accounted lost."""
    total = int(positions.shape[0])
    return ChaosResult(
        outcome="destroyed",
        byte_exact=False,
        content_exact=True,  # vacuous: nothing was salvaged
        accounted=True,  # explicit: every snapshot is lost
        snapshots_fed=total,
        readable_snapshots=0,
        lost_snapshots=list(range(total)),
        truncated_tail=True,
        crashed=crashed,
        injected=injected,
        verify={"errors": [reason]},
        salvage=None,
        plan=plan.to_json(),
    )


def run_chaos(
    positions: np.ndarray,
    plan: FaultPlan,
    config: MDZConfig | None = None,
    workers: int = 0,
    keep_path: str | Path | None = None,
) -> ChaosResult:
    """Stream ``positions`` through injected faults and account for it.

    Parameters
    ----------
    positions:
        ``(snapshots, atoms, axes)`` trajectory to compress.
    plan:
        The faults to inject (see :class:`~repro.faults.plan.FaultPlan`).
    config:
        MDZ configuration for both the pristine and the chaos run.
    workers:
        Worker processes for the chaos run's executor (the pristine
        reference always runs serial — parallel output is byte-identical
        by the executor's ordering invariant, so the reference is valid
        for both).
    keep_path:
        When given, the damaged archive bytes are also written here
        (used by CI to upload chaos artifacts).

    Returns
    -------
    ChaosResult
        Never raises for in-plan faults; injector misuse (e.g. a
        post-hoc spec handed to the writer shim) still raises
        :class:`ValueError`.
    """
    positions = np.asarray(positions, dtype=np.float64)
    config = config if config is not None else MDZConfig()

    # 1. Pristine reference: expected bytes and expected decoded output.
    pristine_buf = io.BytesIO()
    with StreamingWriter(pristine_buf, config=config) as w:
        w.feed_many(positions)
    pristine = pristine_buf.getvalue()
    pristine_decoded = StreamingReader(pristine).read_all()

    # 2. Chaos run against a real file (fence rollback needs seek+truncate).
    injected: list[str] = []
    crashed: str | None = None
    with tempfile.TemporaryDirectory(prefix="mdz-chaos-") as tmp:
        target = Path(tmp) / "chaos.mdz"
        executor = FaultyExecutor(
            plan.worker_faults, counter_dir=tmp, workers=workers
        )
        with open(target, "w+b") as fh:
            shim = FaultyFile(fh, plan.write_faults)
            try:
                with StreamingWriter(
                    shim, config=config, executor=executor
                ) as writer:
                    writer.feed_many(positions)
            except (CompressionError, OSError) as exc:
                # CompressionError: the writer exhausted its chunk-commit
                # retries.  OSError: a permanently failing job escaped the
                # executor's retry budget.  Both are "the producer died".
                crashed = str(exc)
            finally:
                if crashed is None:
                    executor.close()
                else:
                    executor.terminate()
        injected.extend(shim.injected)
        injected.extend(executor.injected)
        blob = target.read_bytes()

    # 3. Post-hoc damage (bit rot, external truncation).
    blob = apply_posthoc(blob, plan.posthoc_faults)
    if keep_path is not None:
        Path(keep_path).write_bytes(blob)

    # 4. Audit and, if needed, salvage.
    total = int(positions.shape[0])
    if not blob:
        return _destroyed(
            positions, plan, injected, crashed, "archive is empty"
        )
    try:
        report = verify_stream(blob)
    except ContainerFormatError as exc:
        return _destroyed(positions, plan, injected, crashed, str(exc))

    if report["intact"] and crashed is None:
        return ChaosResult(
            outcome="intact",
            byte_exact=blob == pristine,
            content_exact=True,
            accounted=True,
            snapshots_fed=total,
            readable_snapshots=total,
            crashed=None,
            injected=injected,
            verify=report,
            salvage=None,
            plan=plan.to_json(),
        )

    reader = StreamingReader(blob, salvage=True)
    salvage = reader.salvage_report()
    content_exact = True
    for _, first, array in reader.iter_salvaged():
        expected = pristine_decoded[first : first + array.shape[0]]
        if not np.array_equal(array, expected):
            content_exact = False
            break
    covered = salvage.readable_snapshots + len(salvage.lost_snapshots)
    if salvage.expected_snapshots is not None:
        accounted = covered == salvage.expected_snapshots == total
    else:
        # Footer lost: the tail is explicitly unaccounted, everything
        # up to the damage must still be covered without overlap.
        accounted = salvage.truncated_tail and covered <= total
    return ChaosResult(
        outcome="salvaged",
        byte_exact=False,
        content_exact=content_exact,
        accounted=accounted,
        snapshots_fed=total,
        readable_snapshots=salvage.readable_snapshots,
        lost_snapshots=list(salvage.lost_snapshots),
        truncated_tail=salvage.truncated_tail,
        crashed=crashed,
        injected=injected,
        verify=report,
        salvage=salvage.to_json(),
        plan=plan.to_json(),
    )
