"""Session-oriented compressor interface shared by MDZ and all baselines.

The paper's problem formulation (Section IV) fixes the execution shape for
every compressor under test: an MD run produces snapshots of one coordinate
axis; snapshots are buffered and compressed *in batches* of ``BS`` snapshots
(buffer size), and batches must decompress in order without needing the
whole dataset.  The :class:`Compressor` interface encodes exactly that:

* :meth:`Compressor.begin` opens a session for one ``(dataset, axis)``
  stream — compressors reset any cross-batch state (level models, reference
  snapshots, adaptive choices) here;
* :meth:`Compressor.compress_batch` consumes the next ``(B, N)`` batch and
  returns a self-contained blob;
* :meth:`Compressor.decompress_batch` consumes blobs in the same order.

Lossless compressors ignore the error bound.  Compressors with dataset
limitations (TNG, HRTC) veto unsupported datasets in
:meth:`Compressor.check_supported`, reproducing the paper's excluded cases
(Section VII-A5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import CompressionError


@dataclass(frozen=True)
class SessionMeta:
    """Static description of the stream a compression session will see.

    Attributes
    ----------
    n_atoms:
        Number of particles per snapshot actually fed to the compressor.
    original_atoms:
        The paper-scale atom count of the dataset this stream was scaled
        down from; capability checks (TNG/HRTC limits) use this value so the
        excluded-cases behaviour of Section VII-A5 is reproduced even on
        scaled data.  Defaults to ``n_atoms``.
    value_range:
        Max minus min over the stream, used by compressors that need a
        range-relative setting internally.
    label:
        Free-form identifier for diagnostics (dataset/axis name).
    """

    n_atoms: int
    original_atoms: int | None = None
    value_range: float = 0.0
    label: str = ""

    @property
    def effective_original_atoms(self) -> int:
        """Original atom count, falling back to the stream's own count."""
        return self.original_atoms if self.original_atoms else self.n_atoms


class Compressor(ABC):
    """One compression session over an ordered stream of (B, N) batches."""

    #: Registry/reporting name, e.g. ``"sz2"`` or ``"mdz"``.
    name: str = "abstract"
    #: True for compressors that reproduce inputs bit-exactly.
    is_lossless: bool = False
    #: True when any single snapshot can be decoded without its siblings
    #: (the VQ property highlighted in Section VI).
    supports_random_access: bool = False

    def check_supported(self, meta: SessionMeta) -> None:
        """Raise :class:`UnsupportedDatasetError` for datasets this
        compressor cannot handle.  The default accepts everything."""

    def begin(self, error_bound: float | None, meta: SessionMeta) -> None:
        """Open a session.  ``error_bound`` is the *absolute* bound.

        Lossless compressors receive ``None``.  Implementations must reset
        all cross-batch state here.
        """
        self.check_supported(meta)
        if not self.is_lossless:
            if error_bound is None or error_bound <= 0:
                raise CompressionError(
                    f"{self.name}: lossy compression requires a positive "
                    f"error bound, got {error_bound}"
                )
        self._meta = meta
        self._error_bound = error_bound

    @abstractmethod
    def compress_batch(self, batch: np.ndarray) -> bytes:
        """Compress the next batch of snapshots (shape ``(B, N)``)."""

    @abstractmethod
    def decompress_batch(self, blob: bytes) -> np.ndarray:
        """Decompress the next blob, in compression order."""

    # -- convenience ----------------------------------------------------

    @property
    def meta(self) -> SessionMeta:
        """Session metadata (valid after :meth:`begin`)."""
        return self._meta

    @property
    def error_bound(self) -> float | None:
        """Absolute error bound of the session (None for lossless)."""
        return self._error_bound

    @staticmethod
    def as_batch(batch: np.ndarray) -> np.ndarray:
        """Validate/convert a batch to a 2-D float64 array."""
        arr = np.asarray(batch, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise CompressionError(
                f"batches must be (snapshots, atoms) arrays, got shape "
                f"{np.shape(batch)}"
            )
        return arr


_REGISTRY: dict[str, Callable[[], Compressor]] = {}


def register_compressor(name: str, factory: Callable[[], Compressor]) -> None:
    """Register a compressor factory under ``name`` (used by benchmarks)."""
    if name in _REGISTRY:
        raise ValueError(f"compressor {name!r} already registered")
    _REGISTRY[name] = factory


def available_compressors() -> list[str]:
    """Sorted names of every registered compressor."""
    return sorted(_REGISTRY)


def create_compressor(name: str) -> Compressor:
    """Instantiate a registered compressor by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; known: {available_compressors()}"
        ) from None
    return factory()


@dataclass
class StreamResult:
    """Outcome of compressing one full (dataset, axis) stream."""

    compressed_bytes: int
    raw_bytes: int
    compress_seconds: float
    decompress_seconds: float = 0.0
    blobs: list[bytes] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Raw size over compressed size."""
        return self.raw_bytes / max(self.compressed_bytes, 1)
