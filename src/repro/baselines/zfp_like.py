"""ZFP-style fixed-point block transform coder (lossy + lossless modes).

ZFP [Lindstrom 2014] partitions data into small blocks, aligns each block to
a common binary exponent (block floating point), applies a non-orthogonal
decorrelating lifting transform, reorders coefficients by expected
magnitude, and encodes negabinary bit planes from most to least significant.

This reimplementation follows that structure on 4x4 blocks over the
(snapshot, atom) plane:

* **fixed-accuracy** (error-bounded) mode quantizes the transform
  coefficients by a per-block right shift sized so the truncation error —
  including the inverse-transform gain — stays under the tolerance, then
  bit-plane-codes the surviving planes;
* **lossless** mode codes at full coefficient precision and appends an
  exact bit-level residual (via the order-preserving integer mapping of
  :mod:`repro.baselines.fpzip_like`), making the round trip bit-exact.
  This is the mode that appears in the paper's lossless comparison
  (Table V).

The paper's observation that ZFP is "designed and optimized for
three-dimensional data" and underperforms on batched 2D MD data
(Section II) emerges directly: 4x4 blocks straddle unrelated atoms, so
spatial decorrelation fails exactly as it does for the real coder.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, register_compressor
from .fpzip_like import float_to_ordered, ordered_to_float

_BLOCK = 4
#: Fixed-point fractional bits when widening block values to integers.
_PRECISION = 48
#: Extra dropped-plane headroom protecting the error bound against the
#: inverse-transform gain (growth factor < 8 for the 2D lifting pair).
_GAIN_MARGIN_BITS = 3

# zfp's decorrelating transform in matrix form; the inverse is computed
# numerically and the pair is exactly inverse to double precision.
_FWD = np.array(
    [
        [4, 4, 4, 4],
        [5, 1, -1, -5],
        [-4, 4, 4, -4],
        [-2, 6, -6, 2],
    ],
    dtype=np.float64,
) / 16.0
_INV = np.linalg.inv(_FWD)

#: Coefficient visit order for a 4x4 block: by total degree (frequency),
#: mimicking zfp's magnitude ordering.
_ORDER = np.argsort(
    (np.arange(4)[:, None] + np.arange(4)[None, :]).ravel(), kind="stable"
)


def _to_blocks(data: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Pad to multiples of 4 (edge replication) and split into 4x4 blocks."""
    rows, cols = data.shape
    pad_r = (-rows) % _BLOCK
    pad_c = (-cols) % _BLOCK
    padded = np.pad(data, ((0, pad_r), (0, pad_c)), mode="edge")
    nr, nc = padded.shape[0] // _BLOCK, padded.shape[1] // _BLOCK
    blocks = (
        padded.reshape(nr, _BLOCK, nc, _BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, _BLOCK, _BLOCK)
    )
    return blocks, (rows, cols)


def _from_blocks(blocks: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Reassemble 4x4 blocks and crop the padding."""
    rows, cols = shape
    nr = (rows + _BLOCK - 1) // _BLOCK
    nc = (cols + _BLOCK - 1) // _BLOCK
    full = (
        blocks.reshape(nr, nc, _BLOCK, _BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(nr * _BLOCK, nc * _BLOCK)
    )
    return full[:rows, :cols]


def _negabinary(v: np.ndarray) -> np.ndarray:
    """Signed int64 -> negabinary uint64 (zfp's sign-free representation)."""
    mask = np.uint64(0xAAAAAAAAAAAAAAAA)
    return (v.astype(np.int64).view(np.uint64) + mask) ^ mask


def _from_negabinary(u: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_negabinary`."""
    mask = np.uint64(0xAAAAAAAAAAAAAAAA)
    return ((u.astype(np.uint64) ^ mask) - mask).view(np.int64)


def _encode_planes(quantized: np.ndarray) -> tuple[bytes, int]:
    """Bit-plane serialization, MSB plane first, of (n_blocks, 16) ints."""
    neg = _negabinary(quantized).ravel()
    top = max(1, int(neg.max()).bit_length()) if neg.size else 1
    bits = np.empty((top, neg.size), dtype=np.uint8)
    for p in range(top):
        shift = np.uint64(top - 1 - p)
        bits[p] = ((neg >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes(), top


def _decode_planes(payload: bytes, count: int, planes: int) -> np.ndarray:
    """Inverse of :func:`_encode_planes` for ``count`` coefficients."""
    total = planes * count
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=total)
    bits = bits.reshape(planes, count)
    flat = np.zeros(count, dtype=np.uint64)
    for p in range(planes):
        flat = (flat << np.uint64(1)) | bits[p].astype(np.uint64)
    return _from_negabinary(flat)


class ZFPLikeCompressor(Compressor):
    """ZFP-style transform coder over (snapshot, atom) planes.

    Parameters
    ----------
    mode:
        ``"accuracy"`` (error-bounded, default) or ``"lossless"``.
    """

    supports_random_access = True

    def __init__(self, mode: str = "accuracy") -> None:
        if mode not in ("accuracy", "lossless"):
            raise ValueError(f"unknown ZFP mode {mode!r}")
        self.mode = mode
        self.is_lossless = mode == "lossless"
        self.name = "zfp" if mode == "accuracy" else "zfp-lossless"

    def compress_batch(self, batch: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(batch)
        data = arr.astype(np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if not np.isfinite(data).all():
            raise CompressionError("zfp-like coder requires finite values")
        blocks, shape = _to_blocks(data)
        n_blocks = blocks.shape[0]
        absmax = np.abs(blocks).reshape(n_blocks, -1).max(axis=1)
        exps = np.where(
            absmax > 0, np.ceil(np.log2(np.maximum(absmax, 1e-300))), 0
        ).astype(np.int64)
        scale = np.exp2(_PRECISION - exps.astype(np.float64))
        fixed = np.rint(blocks * scale[:, None, None])
        t = np.einsum("ij,bjk->bik", _FWD, fixed)
        t = np.einsum("bik,kj->bij", t, _FWD.T)
        coeffs = np.rint(t).reshape(n_blocks, 16)[:, _ORDER].astype(np.int64)
        drops = self._drop_bits(exps)
        quantized = self._round_shift(coeffs, drops)
        payload, planes = _encode_planes(quantized)
        writer = BlobWriter()
        writer.write_json(
            {
                "mode": self.mode,
                "dtype": arr.dtype.str,
                "shape": list(data.shape),
                "planes": int(planes),
            }
        )
        writer.write_array(exps.astype(np.int16))
        writer.write_array(drops.astype(np.int8))
        writer.write_bytes(payload)
        if self.mode == "lossless":
            recon = self._reconstruct(quantized, drops, exps, shape)
            delta = float_to_ordered(arr.astype(arr.dtype)) - float_to_ordered(
                recon.astype(arr.dtype)
            )
            writer.write_bytes(
                lossless_compress(delta.astype(np.int64).tobytes(), "zlib", 6)
            )
        return lossless_compress(writer.getvalue(), "zlib", 6)

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        out_dtype = np.dtype(meta["dtype"])
        exps = reader.read_array().astype(np.int64)
        drops = reader.read_array().astype(np.int64)
        n_blocks = exps.size
        quantized = _decode_planes(
            reader.read_bytes(), n_blocks * 16, int(meta["planes"])
        ).reshape(n_blocks, 16)
        recon = self._reconstruct(quantized, drops, exps, shape)
        result = recon.astype(out_dtype)
        if meta["mode"] == "lossless":
            raw = lossless_decompress(reader.read_bytes())
            delta = np.frombuffer(raw, dtype=np.int64).reshape(shape)
            mapped = float_to_ordered(result) + delta.astype(
                np.int64 if out_dtype.itemsize == 8 else np.int32
            )
            result = ordered_to_float(mapped).astype(out_dtype)
        return result

    # -- internals ------------------------------------------------------

    def _drop_bits(self, exps: np.ndarray) -> np.ndarray:
        """Per-block low-plane shift in fixed-accuracy mode.

        Lossless mode keeps a ~16-bit transform core and lets the exact
        bit-level residual carry the remaining (incompressible) mantissa
        tail once, instead of paying for it in both streams.
        """
        if self.mode == "lossless":
            return np.full_like(exps, max(_PRECISION - 16, 0))
        tol = self.error_bound
        # One fixed-point unit in block b equals 2**(exps[b] - PRECISION) in
        # value space; dropping `drop` planes leaves error <= 2**(drop-1)
        # units, amplified by the inverse transform -> margin bits.
        budget = np.floor(np.log2(max(tol, 1e-300))) - exps + _PRECISION
        return np.clip(budget - _GAIN_MARGIN_BITS, 0, 62).astype(np.int64)

    @staticmethod
    def _round_shift(coeffs: np.ndarray, drops: np.ndarray) -> np.ndarray:
        """Round-to-nearest arithmetic right shift, per block row."""
        d = drops[:, None]
        half = np.where(d > 0, np.int64(1) << np.maximum(d - 1, 0), 0)
        return (coeffs + half) >> d

    def _reconstruct(
        self,
        quantized: np.ndarray,
        drops: np.ndarray,
        exps: np.ndarray,
        shape: tuple[int, int],
    ) -> np.ndarray:
        coeffs = (quantized << drops[:, None]).astype(np.float64)
        n_blocks = coeffs.shape[0]
        unordered = np.empty_like(coeffs)
        unordered[:, _ORDER] = coeffs
        t = unordered.reshape(n_blocks, _BLOCK, _BLOCK)
        x = np.einsum("ij,bjk->bik", _INV, t)
        x = np.einsum("bik,kj->bij", x, _INV.T)
        scale = np.exp2(_PRECISION - exps.astype(np.float64))
        blocks = x / scale[:, None, None]
        return _from_blocks(blocks, shape)


register_compressor("zfp", lambda: ZFPLikeCompressor("accuracy"))
register_compressor("zfp-lossless", lambda: ZFPLikeCompressor("lossless"))
