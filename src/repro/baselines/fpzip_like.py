"""fpzip-style lossless predictive floating-point coder (Table V).

fpzip [Lindstrom & Isenburg] predicts each value with the Lorenzo predictor,
maps floats to sign-magnitude integers, and entropy-codes the prediction
residual.  Our reimplementation keeps that structure:

1. floats are mapped to *order-preserving* signed integers (sign-flip
   mapping of the IEEE bit pattern), so integer arithmetic on the mapped
   values respects float ordering;
2. each mapped value is predicted from its already-coded neighbours with the
   2D Lorenzo stencil over the (snapshot, atom) plane (exact in integers);
3. residuals are zigzag-mapped and stored as split byte planes, which a
   DEFLATE pass then squeezes — playing the role of fpzip's range coder.

The coder is exactly invertible for every finite and non-finite IEEE value.
"""

from __future__ import annotations

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, register_compressor


_WIDTH_SPEC = {
    4: (np.float32, np.uint32, np.int32, np.uint32(0x7FFFFFFF), np.uint32(31)),
    8: (
        np.float64,
        np.uint64,
        np.int64,
        np.uint64(0x7FFFFFFFFFFFFFFF),
        np.uint64(63),
    ),
}


def float_to_ordered(values: np.ndarray) -> np.ndarray:
    """Map IEEE-754 floats to order-preserving signed integers (same width).

    Patterns with the sign bit set (negative floats) have their lower bits
    flipped: larger negative bit patterns mean smaller values, and the flip
    reverses them while keeping all negatives below all positives.  The
    transformation is an involution, so the same bit manipulation inverts
    it (see :func:`ordered_to_float`).  Works for float32 and float64.
    """
    arr = np.ascontiguousarray(values)
    _, utype, itype, low_mask, sign_shift = _WIDTH_SPEC[arr.dtype.itemsize]
    u = arr.view(utype)
    mask = np.where(u >> sign_shift == 1, low_mask, utype(0))
    return (u ^ mask).view(itype)


def ordered_to_float(mapped: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float_to_ordered` (width inferred from dtype)."""
    arr = np.ascontiguousarray(mapped)
    ftype, utype, _, low_mask, sign_shift = _WIDTH_SPEC[arr.dtype.itemsize]
    m = arr.view(utype)
    mask = np.where(m >> sign_shift == 1, low_mask, utype(0))
    return (m ^ mask).view(ftype)


def _float_to_ordered_int(values: np.ndarray) -> np.ndarray:
    """64-bit specialization used by the Lorenzo stage below."""
    return float_to_ordered(np.ascontiguousarray(values, dtype=np.float64))


def _ordered_int_to_float(mapped: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_float_to_ordered_int`."""
    return ordered_to_float(np.ascontiguousarray(mapped, dtype=np.int64))


def _lorenzo_residuals(mapped: np.ndarray) -> np.ndarray:
    """Integer 2D Lorenzo residuals (second mixed difference)."""
    padded = np.zeros(
        (mapped.shape[0] + 1, mapped.shape[1] + 1), dtype=np.int64
    )
    padded[1:, 1:] = mapped
    return padded[1:, 1:] - padded[:-1, 1:] - padded[1:, :-1] + padded[:-1, :-1]


def _lorenzo_integrate(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_lorenzo_residuals` (2D prefix sums)."""
    return residuals.cumsum(axis=0, dtype=np.int64).cumsum(
        axis=1, dtype=np.int64
    )


def _zigzag(v: np.ndarray) -> np.ndarray:
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(
        (u & np.uint64(1)).astype(np.int64)
    )


class FpzipLikeCompressor(Compressor):
    """Lossless Lorenzo-predictive float coder in the style of fpzip."""

    name = "fpzip"
    is_lossless = True
    supports_random_access = True

    def compress_batch(self, batch: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(batch)
        wide = arr.astype(np.float64)
        if wide.ndim == 1:
            wide = wide[None, :]
        mapped = _float_to_ordered_int(wide)
        residuals = _zigzag(_lorenzo_residuals(mapped))
        # Byte-plane split: plane p holds byte p of every residual.  Smooth
        # data concentrates entropy in the low planes; the high planes become
        # long zero runs that DEFLATE folds away.
        planes = residuals.ravel().view(np.uint8).reshape(-1, 8).T.copy()
        writer = BlobWriter()
        writer.write_json({"dtype": arr.dtype.str, "shape": list(arr.shape)})
        writer.write_bytes(lossless_compress(planes.tobytes(), "zlib", 6))
        return writer.getvalue()

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = [int(x) for x in meta["shape"]]
        n = int(np.prod(shape))
        raw = lossless_decompress(reader.read_bytes())
        planes = np.frombuffer(raw, dtype=np.uint8).reshape(8, n)
        residuals = (
            np.ascontiguousarray(planes.T).reshape(-1).view(np.uint64).copy()
        )
        grid_shape = shape if len(shape) == 2 else [1, n]
        mapped = _lorenzo_integrate(
            _unzigzag(residuals).reshape(grid_shape)
        )
        values = _ordered_int_to_float(mapped).reshape(shape)
        return values.astype(np.dtype(meta["dtype"]))


register_compressor("fpzip", FpzipLikeCompressor)
