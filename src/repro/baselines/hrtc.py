"""HRTC baseline: piecewise-linear trajectory compression (Huwald et al.).

"Compressing molecular dynamics trajectories: breaking the one-bit-per-
sample barrier" [J. Comput. Chem. 2016] represents each atom's coordinate
trajectory as a piecewise linear function, quantizes the segment parameters
under error control, and stores them with variable-length integers.

Implementation: per atom, a greedy slope-cone (swing-filter) segmentation —
the anchor is the quantized segment start; the feasible slope interval is
intersected point by point and the segment closes when it empties.  Segment
endpoints are quantized to a ``eb/2`` grid and the cone uses the reduced
tolerance ``eb - eb/4`` so the *stored* line is guaranteed within the error
bound at every sample.  Segment lengths and endpoint deltas are zigzag
varint coded and DEFLATE-compressed.

The reference implementation fails on large systems; the paper reports
runtime exceptions on Copper-A, Helium-A, Pt, and LJ (Section VII-A5).  We
reproduce this with a 100 000-atom limit checked against the dataset's
*original* atom count.

On vibration-dominated MD data segments rarely span more than a few
snapshots, which is exactly why HRTC trails the SZ-family compressors in
the paper's Figure 12 and Table VI.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import UnsupportedDatasetError
from ..serde import BlobReader, BlobWriter
from ..sz.bitio import decode_varints, encode_varints, zigzag_decode, zigzag_encode
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, SessionMeta, register_compressor

#: Largest original atom count the reference HRTC coder accepts.  Chosen
#: between IFABP (12 445 atoms, works in the paper) and Helium-A (106 711
#: atoms, fails in the paper).
HRTC_MAX_ATOMS = 100_000


def _segment_trajectory(
    values: np.ndarray, anchor_q: int, grid: float, tol: float
) -> tuple[list[int], list[int]]:
    """Greedy slope-cone segmentation of one trajectory.

    Parameters
    ----------
    values:
        The trajectory samples (the segment anchor is sample 0).
    anchor_q:
        Quantized grid level of the segment start.
    grid:
        Endpoint quantization step.
    tol:
        Cone tolerance (already reduced for endpoint quantization error).

    Returns (lengths, end_levels): each segment covers ``length`` steps and
    ends at quantized grid level ``end_level`` (the next segment's anchor).
    """
    lengths: list[int] = []
    end_levels: list[int] = []
    t = 1
    n = values.size
    start_t = 0
    anchor = anchor_q * grid
    lo = -np.inf
    hi = np.inf
    while t < n:
        dt = t - start_t
        cand_lo = (values[t] - tol - anchor) / dt
        cand_hi = (values[t] + tol - anchor) / dt
        new_lo = max(lo, cand_lo)
        new_hi = min(hi, cand_hi)
        if new_lo <= new_hi:
            lo, hi = new_lo, new_hi
            t += 1
            continue
        # Close the segment at t-1 using the mid-cone slope.
        seg_len = t - 1 - start_t
        if seg_len == 0:
            # Even the immediate next point is unreachable within the cone:
            # emit a length-1 jump segment directly to the sample.
            end_q = int(round(values[t] / grid))
            lengths.append(t - start_t)
            end_levels.append(end_q)
            anchor_q = end_q
            anchor = anchor_q * grid
            start_t = t
            t += 1
        else:
            slope = (lo + hi) / 2.0 if np.isfinite(lo) and np.isfinite(hi) else 0.0
            end_q = int(round((anchor + slope * seg_len) / grid))
            lengths.append(seg_len)
            end_levels.append(end_q)
            anchor_q = end_q
            anchor = anchor_q * grid
            start_t = t - 1
            # re-admit point t against the fresh anchor on the next pass
        lo, hi = -np.inf, np.inf
    # Final segment runs to the last sample.
    seg_len = (n - 1) - start_t
    if seg_len > 0:
        slope = 0.0
        if np.isfinite(lo) and np.isfinite(hi):
            slope = (lo + hi) / 2.0
        end_q = int(round((anchor + slope * seg_len) / grid))
        lengths.append(seg_len)
        end_levels.append(end_q)
    return lengths, end_levels


class HRTCCompressor(Compressor):
    """Piecewise-linear trajectory coder in the style of HRTC."""

    name = "hrtc"
    is_lossless = False

    def check_supported(self, meta: SessionMeta) -> None:
        if meta.effective_original_atoms > HRTC_MAX_ATOMS:
            raise UnsupportedDatasetError(
                f"HRTC cannot handle {meta.effective_original_atoms} atoms "
                f"(limit {HRTC_MAX_ATOMS}); the paper reports the same "
                f"runtime exception on Copper-A, Helium-A, Pt and LJ"
            )

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        eb = self.error_bound
        grid = eb / 2.0
        tol = eb - grid / 2.0  # endpoint quantization eats eb/4 of slack
        t_count, n_atoms = batch.shape
        anchors = np.rint(batch[0] / grid).astype(np.int64)
        all_lengths: list[int] = []
        all_ends: list[int] = []
        seg_counts = np.empty(n_atoms, dtype=np.int64)
        for j in range(n_atoms):
            lengths, ends = _segment_trajectory(
                batch[:, j], int(anchors[j]), grid, tol
            )
            seg_counts[j] = len(lengths)
            all_lengths.extend(lengths)
            all_ends.extend(ends)
        ends_arr = np.asarray(all_ends, dtype=np.int64)
        # Delta-code endpoint levels within each atom (first vs anchor).
        deltas = ends_arr.copy()
        pos = 0
        for j in range(n_atoms):
            c = int(seg_counts[j])
            if c:
                seg = ends_arr[pos : pos + c]
                deltas[pos] = seg[0] - anchors[j]
                deltas[pos + 1 : pos + c] = np.diff(seg)
            pos += c
        writer = BlobWriter()
        writer.write_json({"shape": [t_count, n_atoms], "eb": eb})
        writer.write_bytes(
            encode_varints(zigzag_encode(anchors))
        )
        writer.write_bytes(encode_varints(seg_counts.astype(np.uint64)))
        writer.write_bytes(
            encode_varints(np.asarray(all_lengths, dtype=np.uint64))
        )
        writer.write_bytes(encode_varints(zigzag_encode(deltas)))
        return lossless_compress(writer.getvalue())

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        meta = reader.read_json()
        t_count, n_atoms = (int(x) for x in meta["shape"])
        eb = float(meta["eb"])
        grid = eb / 2.0
        anchors = zigzag_decode(decode_varints(reader.read_bytes(), n_atoms))
        counts = decode_varints(reader.read_bytes(), n_atoms).astype(np.int64)
        total = int(counts.sum())
        lengths = decode_varints(reader.read_bytes(), total).astype(np.int64)
        deltas = zigzag_decode(decode_varints(reader.read_bytes(), total))
        out = np.empty((t_count, n_atoms), dtype=np.float64)
        pos = 0
        for j in range(n_atoms):
            c = int(counts[j])
            anchor_q = int(anchors[j])
            t = 0
            value = anchor_q * grid
            out[0, j] = value
            level = anchor_q
            for k in range(c):
                seg_len = int(lengths[pos + k])
                level = level + int(deltas[pos + k])
                end_value = level * grid
                if seg_len > 0:
                    ts = np.arange(1, seg_len + 1)
                    out[t + 1 : t + seg_len + 1, j] = (
                        value + (end_value - value) * ts / seg_len
                    )
                t += seg_len
                value = end_value
            pos += c
            if t != t_count - 1 and c > 0:
                # Trailing samples (when the final point closed exactly on a
                # segment boundary) hold the last value.
                out[t + 1 :, j] = value
            elif c == 0:
                out[1:, j] = value
        return out


register_compressor("hrtc", HRTCCompressor)
