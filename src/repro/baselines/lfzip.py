"""LFZip baseline: NLMS-predictive lossy time-series compression.

LFZip [Chandak et al., DCC 2020] compresses multivariate floating-point
time series with a normalized least-mean-squares (NLMS) adaptive linear
filter: each sample is predicted from the last ``M`` *reconstructed*
samples, the residual is uniformly quantized under the error bound, and
the quantization indexes are entropy coded.  The paper evaluates the NLMS
variant and skips the neural-network predictor (2000x slower); we do the
same.

Our implementation treats each atom's coordinate trajectory as one series
and runs the filter bank vectorized across atoms: the time recursion is
sequential (the filter adapts on reconstructed values), but each step is a
numpy operation over all atoms — mirroring how LFZip batches variables.
Exactly as in the original, the quantization indexes are written as raw
16-bit words and handed to a BWT-family coder (BZ2 standing in for BSC) —
LFZip has no Huffman stage of its own.

Because the filter must see *reconstructed* history, the decoder replays
the identical recursion; encode and decode are therefore equally expensive.
LFZip additionally stages its quantized streams through intermediate files
(the reference implementation shells out to the BSC binary per variable),
which the paper singles out as the reason it is the slowest compressor in
Figure 15; we reproduce that staging — each batch's code stream makes a
round trip through a synced temporary file.

LFZip is a standalone file compressor: the paper's buffer-based evaluation
hands it each buffer as an independent input, so the NLMS filter cold-starts
per buffer.  We reproduce that by resetting the filter bank on every batch.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.bitio import decode_varints, encode_varints, zigzag_decode, zigzag_encode
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, SessionMeta, register_compressor

#: NLMS filter order (LFZip default is 32; 8 captures MD trajectories'
#: short coherence time at a fraction of the cost).
FILTER_ORDER = 8
#: NLMS step size.
MU = 0.5
#: Regularizer in the normalized update.
EPS = 1e-6
#: Quantization-index range (residuals beyond it are stored verbatim).
_RADIUS = 1 << 15
#: Reserved 16-bit marker for out-of-range residuals.
_MARKER = _RADIUS - 1


def _disk_round_trip(payload: bytes) -> bytes:
    """Write ``payload`` to a synced temp file and read it back.

    Reproduces LFZip's intermediate disk operations (Section VII-C4): the
    reference implementation stages every variable's stream on disk for
    the external entropy coder.
    """
    fd, path = tempfile.mkstemp(prefix="lfzip-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        with open(path, "rb") as fh:
            return fh.read()
    finally:
        os.unlink(path)


class _NLMSBank:
    """One NLMS filter per atom, vectorized across the atom axis."""

    def __init__(self, n_atoms: int, order: int = FILTER_ORDER) -> None:
        self.order = order
        self.weights = np.zeros((n_atoms, order))
        self.history = np.zeros((n_atoms, order))  # most recent first
        self.primed = 0  # number of samples seen

    def predict(self) -> np.ndarray:
        """Predict the next sample for every atom."""
        if self.primed == 0:
            return np.zeros(self.weights.shape[0])
        if self.primed < self.order:
            # Cold start: persistence prediction until the window fills.
            return self.history[:, 0].copy()
        return np.einsum("ij,ij->i", self.weights, self.history)

    def update(self, reconstructed: np.ndarray) -> None:
        """Adapt weights with the NLMS rule and push the new sample."""
        if self.primed >= self.order:
            error = reconstructed - np.einsum(
                "ij,ij->i", self.weights, self.history
            )
            norm = np.einsum("ij,ij->i", self.history, self.history) + EPS
            self.weights += (
                MU * error[:, None] * self.history / norm[:, None]
            )
        self.history[:, 1:] = self.history[:, :-1]
        self.history[:, 0] = reconstructed
        self.primed += 1


class LFZipCompressor(Compressor):
    """LFZip (NLMS variant) over per-atom coordinate series."""

    name = "lfzip"
    is_lossless = False

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        t_count, n = batch.shape
        eb = self.error_bound
        width = 2.0 * eb
        bank = _NLMSBank(n)  # cold start: each buffer is an independent file
        out = np.empty((t_count, n), dtype=np.float64)
        codes = np.empty((t_count, n), dtype=np.int64)
        literal_mask = np.zeros((t_count, n), dtype=bool)
        literals: list[np.ndarray] = []
        for t in range(t_count):
            pred = bank.predict()
            q = np.rint((batch[t] - pred) / width)
            oos = np.abs(q) >= _MARKER
            recon = pred + q * width
            if oos.any():
                # Store the exact grid-rounded value for runaway residuals.
                lit_level = np.rint(batch[t][oos] / width).astype(np.int64)
                literals.append(lit_level)
                recon[oos] = lit_level * width
                q[oos] = _MARKER
                literal_mask[t] = oos
            codes[t] = q.astype(np.int64)
            bank.update(recon)
            out[t] = recon
        # The reference implementation materializes the reconstruction on
        # disk (it feeds a verification pass) before entropy coding.
        _disk_round_trip(out.tobytes())
        writer = BlobWriter()
        writer.write_json({"shape": [t_count, n], "eb": eb})
        # Raw 16-bit code words, staged through a temp file (the original
        # hands a file to the external BSC coder), then BWT-compressed.
        words = (codes.ravel() + _MARKER).astype(np.uint16)
        staged = _disk_round_trip(words.tobytes())
        writer.write_bytes(lossless_compress(staged, "bz2", 9))
        lit = (
            np.concatenate(literals)
            if literals
            else np.empty(0, dtype=np.int64)
        )
        writer.write_json({"n_lit": int(lit.size)})
        writer.write_bytes(encode_varints(zigzag_encode(lit)))
        return writer.getvalue()

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(blob)
        meta = reader.read_json()
        t_count, n = (int(x) for x in meta["shape"])
        eb = float(meta["eb"])
        width = 2.0 * eb
        words = np.frombuffer(
            _disk_round_trip(lossless_decompress(reader.read_bytes())),
            dtype=np.uint16,
        )
        codes = words.astype(np.int64).reshape(t_count, n) - _MARKER
        n_lit = int(reader.read_json()["n_lit"])
        literals = zigzag_decode(decode_varints(reader.read_bytes(), n_lit))
        bank = _NLMSBank(n)  # mirror the encoder's per-buffer cold start
        out = np.empty((t_count, n), dtype=np.float64)
        lit_pos = 0
        for t in range(t_count):
            pred = bank.predict()
            q = codes[t]
            oos = q == _MARKER
            recon = pred + q * width
            if oos.any():
                take = int(oos.sum())
                recon[oos] = (
                    literals[lit_pos : lit_pos + take].astype(np.float64)
                    * width
                )
                lit_pos += take
            out[t] = recon
            bank.update(recon)
        _disk_round_trip(out.tobytes())
        return out


register_compressor("lfzip", LFZipCompressor)
