"""Reimplementations of every baseline the paper evaluates against.

Lossy (Section VII-A4): SZ2 (in :mod:`repro.sz.sz2`), TNG, HRTC, ASN,
MDB (ModelarDB's compression core), LFZip, and a ZFP-style transform coder.
Lossless (Section VII-A3): Zstd*/Zlib/Brotli* dictionary coders, FPC,
fpzip-like, and ZFP's lossless mode (* = stand-in backend, see DESIGN.md).

All compressors implement the session API of :mod:`repro.baselines.api` so
the benchmark harness can drive them interchangeably.
"""

from .api import (
    Compressor,
    SessionMeta,
    available_compressors,
    create_compressor,
    register_compressor,
)

# Importing the concrete modules populates the registry.
from . import lossless_std  # noqa: F401  (registration side effect)
from . import fpc  # noqa: F401
from . import fpzip_like  # noqa: F401
from . import zfp_like  # noqa: F401
from . import tng  # noqa: F401
from . import hrtc  # noqa: F401
from . import asn  # noqa: F401
from . import mdb  # noqa: F401
from . import lfzip  # noqa: F401

__all__ = [
    "Compressor",
    "SessionMeta",
    "available_compressors",
    "create_compressor",
    "register_compressor",
]
