"""FPC lossless floating-point compressor (Burtscher & Ratanaworabhan).

FPC predicts each IEEE value twice — with an FCM (finite context method)
and a DFCM (differential FCM) hash-table predictor — XORs the value with
the better prediction, and encodes the XOR's leading-zero bytes in a 4-bit
header (1 bit selector + 3 bits zero-byte count) followed by the non-zero
remainder bytes.

This is a faithful reference implementation: the hash-table recurrences
are inherently sequential, so the coder loops in Python.  It appears only
in the lossless comparison (Table V), where inputs are modest, and its CR
of ~1.1-1.4 on MD coordinates emerges exactly as the paper reports.

Both word widths are supported: float64 streams use the original 64-bit
coder; float32 streams (the MD dump convention) are coded at their native
32-bit width, as a real deployment would arrange (e.g. by pairing floats).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from .api import Compressor, register_compressor

_TABLE_BITS = 12  # 4096-entry predictor tables (FPC's default class)
_TABLE_SIZE = 1 << _TABLE_BITS


def _params(width: int):
    """(mask, fcm_shift, dfcm_shift, lzb_cap) for one word width."""
    if width == 8:
        return (1 << 64) - 1, 48, 40, 8
    if width == 4:
        return (1 << 32) - 1, 20, 16, 4
    raise ValueError(f"width must be 4 or 8 bytes, got {width}")


def _leading_zero_bytes(x: int, width: int) -> int:
    """Number of leading zero bytes of a ``width``-byte value."""
    if x == 0:
        return width
    return (8 * width - x.bit_length()) // 8


def fpc_encode(values: np.ndarray, width: int = 8) -> bytes:
    """Encode a float array with the FPC algorithm at ``width`` bytes."""
    ftype = np.float64 if width == 8 else np.float32
    utype = np.uint64 if width == 8 else np.uint32
    bits = np.ascontiguousarray(values, dtype=ftype).view(utype)
    mask, fcm_shift, dfcm_shift, _ = _params(width)
    n = bits.size
    headers = bytearray()
    payload = bytearray()
    fcm = [0] * _TABLE_SIZE
    dfcm = [0] * _TABLE_SIZE
    fcm_hash = 0
    dfcm_hash = 0
    last = 0
    pending_header = -1
    for raw in bits.tolist():
        pred_fcm = fcm[fcm_hash]
        pred_dfcm = (dfcm[dfcm_hash] + last) & mask
        xor_fcm = raw ^ pred_fcm
        xor_dfcm = raw ^ pred_dfcm
        if xor_fcm <= xor_dfcm:
            selector = 0
            xor = xor_fcm
        else:
            selector = 1
            xor = xor_dfcm
        lzb = _leading_zero_bytes(xor, width)
        if width == 8 and lzb == 4:
            # FPC's 3-bit field cannot express 4 in 64-bit mode.
            lzb = 3
        code = (selector << 3) | (lzb if width == 4 or lzb < 4 else lzb - 1)
        if pending_header < 0:
            pending_header = code
        else:
            headers.append((pending_header << 4) | code)
            pending_header = -1
        remainder = width - lzb
        if remainder:
            payload += xor.to_bytes(width, "big")[width - remainder :]
        # update predictor state
        fcm[fcm_hash] = raw
        fcm_hash = ((fcm_hash << 6) ^ (raw >> fcm_shift)) & (_TABLE_SIZE - 1)
        delta = (raw - last) & mask
        dfcm[dfcm_hash] = delta
        dfcm_hash = ((dfcm_hash << 2) ^ (delta >> dfcm_shift)) & (
            _TABLE_SIZE - 1
        )
        last = raw
    if pending_header >= 0:
        headers.append(pending_header << 4)
    writer = BlobWriter()
    writer.write_json({"n": n, "w": width})
    writer.write_bytes(bytes(headers))
    writer.write_bytes(bytes(payload))
    return writer.getvalue()


def fpc_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`fpc_encode`; returns the native-width floats."""
    reader = BlobReader(blob)
    meta = reader.read_json()
    n = int(meta["n"])
    width = int(meta.get("w", 8))
    mask, fcm_shift, dfcm_shift, _ = _params(width)
    headers = reader.read_bytes()
    payload = reader.read_bytes()
    utype = np.uint64 if width == 8 else np.uint32
    ftype = np.float64 if width == 8 else np.float32
    out = np.empty(n, dtype=utype)
    fcm = [0] * _TABLE_SIZE
    dfcm = [0] * _TABLE_SIZE
    fcm_hash = 0
    dfcm_hash = 0
    last = 0
    pos = 0
    for i in range(n):
        byte = headers[i // 2]
        code = (byte >> 4) if i % 2 == 0 else (byte & 0x0F)
        selector = code >> 3
        lzb = code & 0x07
        if width == 8 and lzb >= 4:
            # encoder mapped lzb>4 -> lzb-1, so stored 4..7 mean 5..8
            lzb += 1
        remainder = width - lzb
        if pos + remainder > len(payload):
            raise DecompressionError("FPC payload truncated")
        xor = int.from_bytes(payload[pos : pos + remainder], "big")
        pos += remainder
        if selector == 0:
            raw = xor ^ fcm[fcm_hash]
        else:
            raw = xor ^ ((dfcm[dfcm_hash] + last) & mask)
        out[i] = raw
        fcm[fcm_hash] = raw
        fcm_hash = ((fcm_hash << 6) ^ (raw >> fcm_shift)) & (_TABLE_SIZE - 1)
        delta = (raw - last) & mask
        dfcm[dfcm_hash] = delta
        dfcm_hash = ((dfcm_hash << 2) ^ (delta >> dfcm_shift)) & (
            _TABLE_SIZE - 1
        )
        last = raw
    return out.view(ftype)


class FPCCompressor(Compressor):
    """FPC as a batch-stream compressor (lossless, Table V)."""

    name = "fpc"
    is_lossless = True
    supports_random_access = True

    def compress_batch(self, batch: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(batch)
        width = 4 if arr.dtype == np.float32 else 8
        writer = BlobWriter()
        writer.write_json({"dtype": arr.dtype.str, "shape": list(arr.shape)})
        writer.write_bytes(fpc_encode(arr.ravel(), width=width))
        return writer.getvalue()

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(blob)
        meta = reader.read_json()
        values = fpc_decode(reader.read_bytes())
        shape = [int(x) for x in meta["shape"]]
        return values.reshape(shape).astype(np.dtype(meta["dtype"]))


register_compressor("fpc", FPCCompressor)
