"""TNG-style MD trajectory compressor (Lundborg et al. 2014).

TNG — the trajectory format shipped with GROMACS — compresses coordinates
by fixed-point quantization, intra-frame delta coding for the first frame
of a block, inter-frame delta coding for subsequent frames, and a suite of
integer coders.  We reproduce that pipeline with LEB128 varints plus a
DEFLATE pass standing in for TNG's integer-coder suite.

The reference implementation aborts on very large systems; the paper hits
this on Pt (2.37 M atoms) and LJ (6.9 M atoms) but not on Copper-A (1.08 M)
(Section VII-A5).  We reproduce the behaviour with an atom-count limit of
2^21 checked against the dataset's *original* size, so the excluded-cases
table holds even though our streams are scaled down.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import UnsupportedDatasetError
from ..serde import BlobReader, BlobWriter
from ..sz.bitio import decode_varints, encode_varints, zigzag_decode, zigzag_encode
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, SessionMeta, register_compressor

#: Largest original atom count the reference TNG coder accepts.
TNG_MAX_ATOMS = 1 << 21


class TNGCompressor(Compressor):
    """Quantize + delta + integer-code, the TNG recipe."""

    name = "tng"
    is_lossless = False

    def check_supported(self, meta: SessionMeta) -> None:
        if meta.effective_original_atoms > TNG_MAX_ATOMS:
            raise UnsupportedDatasetError(
                f"TNG cannot handle {meta.effective_original_atoms} atoms "
                f"(limit {TNG_MAX_ATOMS}); the paper reports the same "
                f"runtime exception on Pt and LJ"
            )

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        step = 2.0 * self.error_bound
        q = np.rint(batch / step).astype(np.int64)
        # First frame: intra-frame (previous atom) delta; rest: inter-frame.
        intra = np.diff(q[0], prepend=np.int64(0))
        inter = np.diff(q, axis=0)
        stream = np.concatenate([intra, inter.ravel()])
        writer = BlobWriter()
        writer.write_json({"shape": list(batch.shape), "eb": self.error_bound})
        writer.write_bytes(encode_varints(zigzag_encode(stream)))
        return lossless_compress(writer.getvalue())

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        step = 2.0 * float(meta["eb"])
        n = shape[0] * shape[1]
        stream = zigzag_decode(decode_varints(reader.read_bytes(), n))
        intra = stream[: shape[1]]
        first = np.cumsum(intra)
        q = np.empty(shape, dtype=np.int64)
        q[0] = first
        if shape[0] > 1:
            inter = stream[shape[1] :].reshape(shape[0] - 1, shape[1])
            q[1:] = first[None, :] + np.cumsum(inter, axis=0)
        return q.astype(np.float64) * step


register_compressor("tng", TNGCompressor)
