"""Gorilla-style XOR compression of float time series (Pelkonen et al.).

Gorilla [VLDB 2015] compresses each value by XOR-ing it with its
predecessor and encoding the leading/trailing zero structure of the XOR.
ModelarDB uses Gorilla as its lossless fallback model, which is the role it
plays in this package (:mod:`repro.baselines.mdb`).

For a pure-Python reproduction we use the *byte-aligned* variant: for every
value a control byte records the number of significant bytes of the XOR,
followed by the significant bytes themselves.  This keeps the coder fully
vectorized (numpy only) while preserving Gorilla's character: unchanged
values cost one control byte, slowly varying values a few bytes.
Bit-granular packing would shave ~10-15 % more but requires a per-value
Python loop; the trade-off is documented in DESIGN.md.

Both 64-bit and 32-bit words are supported — data that arrived as float32
is XOR-coded at its native width, as a real deployment would.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.bitio import clz64


def _leading_zero_bytes(x: np.ndarray, width: int) -> np.ndarray:
    """Per-value count of leading zero bytes (0..width) of unsigned values."""
    lz_bits = clz64(x.astype(np.uint64)) - (64 - 8 * width)
    return np.minimum(lz_bits // 8, width)


def gorilla_encode(values: np.ndarray, width: int = 8) -> bytes:
    """Encode a float array with byte-aligned Gorilla XOR coding.

    ``width`` is the word size in bytes: 8 for float64, 4 for float32.
    """
    if width not in (4, 8):
        raise ValueError(f"width must be 4 or 8, got {width}")
    ftype = np.float64 if width == 8 else np.float32
    utype = np.uint64 if width == 8 else np.uint32
    bits = np.ascontiguousarray(values, dtype=ftype).view(utype)
    n = bits.size
    writer = BlobWriter()
    writer.write_json({"n": n, "w": width})
    if n == 0:
        writer.write_bytes(b"")
        writer.write_bytes(b"")
        return writer.getvalue()
    xored = bits.copy()
    xored[1:] = bits[1:] ^ bits[:-1]
    lzb = _leading_zero_bytes(xored, width)
    sig = width - lzb  # significant byte count
    control = sig.astype(np.uint8)
    # Gather significant bytes: big-endian layout, take the last `sig`.
    as_bytes = xored.byteswap().view(np.uint8).reshape(n, width)
    col = np.arange(width)[None, :]
    keep = col >= lzb[:, None]
    payload = as_bytes[keep]
    writer.write_bytes(control.tobytes())
    writer.write_bytes(payload.tobytes())
    return writer.getvalue()


def gorilla_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`gorilla_encode`; returns the native-width floats."""
    reader = BlobReader(blob)
    meta = reader.read_json()
    n = int(meta["n"])
    width = int(meta.get("w", 8))
    ftype = np.float64 if width == 8 else np.float32
    utype = np.uint64 if width == 8 else np.uint32
    control = np.frombuffer(reader.read_bytes(), dtype=np.uint8)
    payload = np.frombuffer(reader.read_bytes(), dtype=np.uint8)
    if n == 0:
        return np.empty(0, dtype=ftype)
    if control.size != n:
        raise DecompressionError("gorilla control stream length mismatch")
    sig = control.astype(np.int64)
    if int(sig.sum()) != payload.size:
        raise DecompressionError("gorilla payload length mismatch")
    as_bytes = np.zeros((n, width), dtype=np.uint8)
    col = np.arange(width)[None, :]
    keep = col >= (width - sig)[:, None]
    as_bytes[keep] = payload
    xored = as_bytes.reshape(-1).view(utype).byteswap()
    bits = np.bitwise_xor.accumulate(xored)
    return bits.view(ftype).copy()
