"""General-purpose lossless baselines (Table V: Zstd, Zlib, Brotli).

These are the dictionary coders "widely used in databases and file systems"
that the paper evaluates to show lossless compression achieves only CR ~ 1-2
on floating-point MD data (random mantissa bits defeat pattern matching).

Zstandard and Brotli are unavailable offline; DEFLATE stands in for Zstd and
LZMA for Brotli (see DESIGN.md).  The conclusions the table supports are
insensitive to the exact coder: all LZ-family coders plateau at the same
ceiling on random-mantissa floats.
"""

from __future__ import annotations

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.lossless import lossless_compress, lossless_decompress
from .api import Compressor, register_compressor


class DictionaryCoderCompressor(Compressor):
    """Lossless baseline wrapping one general-purpose byte compressor."""

    is_lossless = True
    supports_random_access = True  # batches are independent

    def __init__(self, display_name: str, backend: str, level: int) -> None:
        self.name = display_name
        self._backend = backend
        self._level = level

    def compress_batch(self, batch: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(batch)
        writer = BlobWriter()
        writer.write_json({"dtype": arr.dtype.str, "shape": list(arr.shape)})
        writer.write_bytes(
            lossless_compress(arr.tobytes(), self._backend, self._level)
        )
        return writer.getvalue()

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(blob)
        meta = reader.read_json()
        raw = lossless_decompress(reader.read_bytes())
        return (
            np.frombuffer(raw, dtype=np.dtype(meta["dtype"]))
            .reshape([int(x) for x in meta["shape"]])
            .copy()
        )


register_compressor(
    "zstd", lambda: DictionaryCoderCompressor("zstd", "zlib", 9)
)
register_compressor(
    "zlib", lambda: DictionaryCoderCompressor("zlib", "zlib", 6)
)
register_compressor(
    "brotli", lambda: DictionaryCoderCompressor("brotli", "lzma", 6)
)
