"""MDB baseline: ModelarDB's model-based time-series compression core.

The paper reimplemented ModelarDB's compression in C++ ("MDB"), stripped of
the database machinery, as a lossy baseline (Section VII-A4).  ModelarDB
[Jensen et al., VLDB 2018] fits one of three models to each segment of a
time series:

* **PMC-mean** — a constant; extendable while (max - min)/2 stays within
  the error bound;
* **Swing** — a line through the segment start; extendable while the slope
  cone stays non-empty;
* **Gorilla** — the lossless XOR fallback (:mod:`repro.baselines.gorilla`).

A window-based selector picks the cheapest model.  Our reproduction runs
the PMC and Swing segmentations over every atom trajectory in the batch
(vectorized across atoms, looping only over the few dozen snapshots) and
selects per trajectory the model with the smallest byte estimate, falling
back to Gorilla where neither lossy model pays off.

Crucially — and this is the paper's point (Sections II/VII-C1) — MDB has
*no quantization or entropy-coding stage*: segments are materialized the
way ModelarDB stores them (start time, length, model id, raw float64
parameters), with no integer quantization, no Huffman, and no trailing
dictionary coder.  That is exactly why its compression ratio saturates
around 1-6 on MD data regardless of the error bound, as Figure 12 shows.
"""

from __future__ import annotations

import numpy as np

from ..serde import BlobReader, BlobWriter
from .api import Compressor, register_compressor
from .gorilla import gorilla_decode, gorilla_encode

_MODEL_PMC = 0
_MODEL_SWING = 1
_MODEL_GORILLA = 2

#: Serialized bytes per segment / per point used by the model selector:
#: timestamp (8) + length (4) + float64 params (8 for PMC, 16 for Swing).
_PMC_SEG_BYTES = 20.0
_SWING_SEG_BYTES = 28.0
_GORILLA_POINT_BYTES = 5.0


def _segment_timestamps(lengths: np.ndarray) -> np.ndarray:
    """Start timestamps of consecutive segments (ModelarDB's storage)."""
    if lengths.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(np.int64)


def _pmc_segments(
    batch: np.ndarray, tol: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PMC-mean segmentation of every column (atom) of ``batch``.

    Returns (atom_ids, lengths, midpoints) with segments in time order
    within each atom; the arrays are sorted by (atom, time).
    """
    t_count, n = batch.shape
    start = np.zeros(n, dtype=np.int64)
    mn = batch[0].copy()
    mx = batch[0].copy()
    atoms: list[np.ndarray] = []
    lens: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    seq: list[np.ndarray] = []
    counter = np.zeros(n, dtype=np.int64)
    for t in range(1, t_count):
        row = batch[t]
        nmn = np.minimum(mn, row)
        nmx = np.maximum(mx, row)
        bad = (nmx - nmn) > 2.0 * tol
        if bad.any():
            idx = np.nonzero(bad)[0]
            atoms.append(idx)
            lens.append(t - start[idx])
            vals.append((mn[idx] + mx[idx]) / 2.0)
            seq.append(counter[idx])
            counter[idx] += 1
            start[idx] = t
            mn[idx] = row[idx]
            mx[idx] = row[idx]
            good = ~bad
            mn[good] = nmn[good]
            mx[good] = nmx[good]
        else:
            mn, mx = nmn, nmx
    all_idx = np.arange(n)
    atoms.append(all_idx)
    lens.append(t_count - start)
    vals.append((mn + mx) / 2.0)
    seq.append(counter)
    atom_arr = np.concatenate(atoms)
    len_arr = np.concatenate(lens)
    val_arr = np.concatenate(vals)
    seq_arr = np.concatenate(seq)
    order = np.lexsort((seq_arr, atom_arr))
    return atom_arr[order], len_arr[order], val_arr[order]


def _swing_segments(
    batch: np.ndarray, tol: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Swing (linear filter) segmentation of every column of ``batch``.

    Returns (atom_ids, lengths, start_values, end_values), segments in time
    order within each atom.  Values are exact floats — ModelarDB stores
    model parameters verbatim, with no quantization stage.
    """
    t_count, n = batch.shape
    start_t = np.zeros(n, dtype=np.int64)
    anchor = batch[0].copy()
    lo = np.full(n, -np.inf)
    hi = np.full(n, np.inf)
    counter = np.zeros(n, dtype=np.int64)
    atoms: list[np.ndarray] = []
    lens: list[np.ndarray] = []
    s_vals: list[np.ndarray] = []
    e_vals: list[np.ndarray] = []
    seq: list[np.ndarray] = []

    def close(idx: np.ndarray, end_time: int) -> None:
        """Close the open segment of atoms ``idx`` at ``end_time - 1``."""
        length = end_time - start_t[idx]
        finite = np.isfinite(lo[idx]) & np.isfinite(hi[idx])
        slope = np.zeros(idx.size)
        slope[finite] = (lo[idx][finite] + hi[idx][finite]) / 2.0
        atoms.append(idx)
        lens.append(length)
        s_vals.append(anchor[idx])
        e_vals.append(anchor[idx] + slope * (length - 1))
        seq.append(counter[idx])
        counter[idx] += 1

    for t in range(1, t_count):
        row = batch[t]
        dt = (t - start_t).astype(np.float64)
        cand_lo = (row - tol - anchor) / dt
        cand_hi = (row + tol - anchor) / dt
        nlo = np.maximum(lo, cand_lo)
        nhi = np.minimum(hi, cand_hi)
        bad = nlo > nhi
        if bad.any():
            idx = np.nonzero(bad)[0]
            close(idx, t)
            start_t[idx] = t
            anchor[idx] = row[idx]
            lo[idx] = -np.inf
            hi[idx] = np.inf
            good = ~bad
            lo[good] = nlo[good]
            hi[good] = nhi[good]
        else:
            lo, hi = nlo, nhi
    close(np.arange(n), t_count)
    atom_arr = np.concatenate(atoms)
    len_arr = np.concatenate(lens)
    s_arr = np.concatenate(s_vals)
    e_arr = np.concatenate(e_vals)
    seq_arr = np.concatenate(seq)
    order = np.lexsort((seq_arr, atom_arr))
    return atom_arr[order], len_arr[order], s_arr[order], e_arr[order]


def _swing_reconstruct(
    lengths: np.ndarray, s_vals: np.ndarray, e_vals: np.ndarray
) -> np.ndarray:
    """Vectorized linear interpolation of consecutive swing segments."""
    total = int(lengths.sum())
    seg_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    offsets = np.arange(total) - np.repeat(seg_starts, lengths)
    span = np.maximum(lengths - 1, 1).astype(np.float64)
    slope = (e_vals - s_vals) / span
    return np.repeat(s_vals, lengths) + np.repeat(slope, lengths) * offsets


class MDBCompressor(Compressor):
    """ModelarDB-style model-based compressor (PMC / Swing / Gorilla)."""

    name = "mdb"
    is_lossless = False

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        t_count, n = batch.shape
        eb = self.error_bound
        pmc_atom, pmc_len, pmc_val = _pmc_segments(batch, eb)
        sw_atom, sw_len, sw_s, sw_e = _swing_segments(batch, eb)
        pmc_counts = np.bincount(pmc_atom, minlength=n)
        sw_counts = np.bincount(sw_atom, minlength=n)
        # Gorilla codes at the data's native width: float32-exact inputs
        # (the MD dump convention) XOR at 4 bytes/word.
        width = 4 if np.array_equal(batch, batch.astype(np.float32)) else 8
        cost_pmc = _PMC_SEG_BYTES * pmc_counts
        cost_swing = _SWING_SEG_BYTES * sw_counts
        cost_gorilla = np.full(n, (width * 0.6 + 1.0) * t_count)
        model = np.where(
            cost_pmc <= np.minimum(cost_swing, cost_gorilla),
            _MODEL_PMC,
            np.where(cost_swing <= cost_gorilla, _MODEL_SWING, _MODEL_GORILLA),
        ).astype(np.uint8)
        writer = BlobWriter()
        writer.write_json({"shape": [t_count, n], "eb": eb})
        writer.write_array(model)
        # Segments are materialized as ModelarDB stores them: start/end
        # timestamps (int64), raw float64 parameters — no quantization, no
        # entropy coding, no dictionary coder.
        keep = model[pmc_atom] == _MODEL_PMC
        p_len = pmc_len[keep]
        writer.write_array((pmc_counts * (model == _MODEL_PMC)).astype(np.int32))
        writer.write_array(_segment_timestamps(p_len))
        writer.write_array(p_len.astype(np.int32))
        writer.write_array(pmc_val[keep].astype(np.float64))
        keep = model[sw_atom] == _MODEL_SWING
        s_len = sw_len[keep]
        writer.write_array((sw_counts * (model == _MODEL_SWING)).astype(np.int32))
        writer.write_array(_segment_timestamps(s_len))
        writer.write_array(s_len.astype(np.int32))
        writer.write_array(sw_s[keep].astype(np.float64))
        writer.write_array(sw_e[keep].astype(np.float64))
        # Gorilla group: chosen columns verbatim, Fortran order.
        g_cols = np.nonzero(model == _MODEL_GORILLA)[0]
        writer.write_bytes(
            gorilla_encode(batch[:, g_cols].T.ravel(), width=width)
            if g_cols.size
            else gorilla_encode(np.empty(0), width=width)
        )
        return writer.getvalue()

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(blob)
        meta = reader.read_json()
        t_count, n = (int(x) for x in meta["shape"])
        model = reader.read_array()
        out = np.empty((t_count, n), dtype=np.float64)
        # PMC group
        reader.read_array()  # per-atom counts (redundant with lengths)
        reader.read_array()  # start timestamps (redundant)
        p_len = reader.read_array().astype(np.int64)
        p_val = reader.read_array()
        if p_len.size:
            flat = np.repeat(p_val, p_len)
            cols = np.nonzero(model == _MODEL_PMC)[0]
            out[:, cols] = flat.reshape(cols.size, t_count).T
        # Swing group
        reader.read_array()
        reader.read_array()
        s_len = reader.read_array().astype(np.int64)
        s_s = reader.read_array()
        s_e = reader.read_array()
        if s_len.size:
            flat = _swing_reconstruct(s_len, s_s, s_e)
            cols = np.nonzero(model == _MODEL_SWING)[0]
            out[:, cols] = flat.reshape(cols.size, t_count).T
        # Gorilla group
        g_cols = np.nonzero(model == _MODEL_GORILLA)[0]
        g_values = gorilla_decode(reader.read_bytes()).astype(np.float64)
        if g_cols.size:
            out[:, g_cols] = g_values.reshape(g_cols.size, t_count).T
        return out


register_compressor("mdb", MDBCompressor)
