"""ASN baseline: adjacent-snapshot prediction for N-body data (Li et al.).

"Optimizing lossy compression with adjacent snapshots for N-body simulation
data" [Li et al., IEEE Big Data 2018] predicts positions along the time
dimension, using the motion between adjacent snapshots (equivalently the
velocity field) to extrapolate the next position.  Our implementation uses
the grid-anchored linear extrapolation

    pred(t) = 2 * recon(t-1) - recon(t-2)

which is exactly the velocity-assisted predictor for evenly-saved
snapshots, followed by SZ-style quantization, Huffman coding, and DEFLATE.

The paper's critique (Sections I and II) — that MD atoms vibrate around
equilibrium so velocities are only predictive for a fraction of a
vibrational period — shows up directly: on vibration-dominated datasets the
extrapolation *doubles* the effective noise and ASN loses to plain
time-based prediction, while on drift-dominated cosmology data (HACC) it
performs well.

Cross-batch state (the last two reconstructed snapshots) is carried so the
predictor never restarts mid-stream; the first snapshot of a session is
coded with intra-snapshot Lorenzo prediction.
"""

from __future__ import annotations

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.lossless import lossless_compress, lossless_decompress
from ..sz.pipeline import decode_int_stream, encode_int_stream
from ..sz.predictors import lorenzo_1d_codes, lorenzo_1d_reconstruct
from ..sz.quantizer import DEFAULT_SCALE, LinearQuantizer
from .api import Compressor, SessionMeta, register_compressor


class ASNCompressor(Compressor):
    """Velocity-extrapolation (adjacent-snapshot) lossy compressor."""

    name = "asn"
    is_lossless = False

    def __init__(self, scale: int = DEFAULT_SCALE) -> None:
        self.scale = scale
        self._history: list[np.ndarray] = []
        self._dec_history: list[np.ndarray] = []

    def begin(self, error_bound: float | None, meta: SessionMeta) -> None:
        super().begin(error_bound, meta)
        self._history = []
        self._dec_history = []

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        quantizer = LinearQuantizer(self.error_bound, self.scale)
        writer = BlobWriter()
        writer.write_json(
            {
                "shape": list(batch.shape),
                "eb": self.error_bound,
                "scale": self.scale,
                "history": len(self._history),
            }
        )
        start = 0
        if not self._history:
            anchor = float(batch[0, 0])
            block = lorenzo_1d_codes(batch[0], quantizer, anchor)
            writer.write_json({"anchor": anchor})
            writer.write_bytes(encode_int_stream(block))
            recon0 = lorenzo_1d_reconstruct(block, quantizer, anchor)
            self._history = [recon0]
            start = 1
        if start < batch.shape[0]:
            codes, recon = self._extrapolation_codes(
                batch[start:], quantizer
            )
            writer.write_bytes(encode_int_stream(codes))
            self._history = [r for r in recon[-2:]]
        self._history = self._history[-2:]
        return lossless_compress(writer.getvalue())

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        quantizer = LinearQuantizer(float(meta["eb"]), int(meta["scale"]))
        out = np.empty(shape, dtype=np.float64)
        start = 0
        if int(meta["history"]) == 0:
            head = reader.read_json()
            block = decode_int_stream(reader.read_bytes())
            out[0] = lorenzo_1d_reconstruct(
                block, quantizer, float(head["anchor"])
            )
            self._dec_history = [out[0]]
            start = 1
        if start < shape[0]:
            block = decode_int_stream(reader.read_bytes())
            rest = self._extrapolation_reconstruct(block, quantizer)
            out[start:] = rest
            self._dec_history = [r for r in rest[-2:]]
        self._dec_history = self._dec_history[-2:]
        return out

    # -- internals ------------------------------------------------------

    def _extrapolation_codes(self, frames, quantizer):
        """Grid-anchored codes for pred = 2*r(t-1) - r(t-2).

        All frames share the anchor ``base`` (the last reconstructed
        snapshot): with levels ``s_t = round((d_t - base)/w)`` the
        reconstruction is ``base + w*s_t`` and the extrapolation code is
        the second difference of the level sequence, seeded with the level
        of the pre-batch history.
        """
        base = self._history[-1]
        if len(self._history) >= 2:
            prev_level = quantizer.grid_levels(self._history[-2], base)
        else:
            prev_level = np.zeros(base.shape, dtype=np.int64)
        s = quantizer.grid_levels(frames, base[None, :])
        # level sequence including history: prev_level, 0 (= base), s...
        full = np.vstack([prev_level[None, :], np.zeros((1, base.size), np.int64), s])
        codes = full[2:] - 2 * full[1:-1] + full[:-2]
        block = quantizer.split(codes, s, order="F")
        levels = self._levels_from_codes(block, prev_level, quantizer)
        recon = quantizer.dequantize_levels(levels, base[None, :])
        return block, recon

    def _extrapolation_reconstruct(self, block, quantizer):
        base = self._dec_history[-1]
        if len(self._dec_history) >= 2:
            prev_level = quantizer.grid_levels(self._dec_history[-2], base)
        else:
            prev_level = np.zeros(base.shape, dtype=np.int64)
        levels = self._levels_from_codes(block, prev_level, quantizer)
        return quantizer.dequantize_levels(levels, base[None, :])

    @staticmethod
    def _levels_from_codes(block, prev_level, quantizer):
        """Invert the second-difference coding (with out-of-scope resets).

        The second difference of levels is a double integration; resets
        (marker positions) splice in the stored absolute level.  Because
        out-of-scope points are rare, they are fixed sequentially per
        column in time order.
        """
        codes = block.codes
        t_count, n = codes.shape
        mask = codes == block.marker
        plain = np.where(mask, 0, codes)
        levels = np.empty((t_count, n), dtype=np.int64)
        prev2 = prev_level  # level of t-2 (relative to base)
        prev1 = np.zeros(n, dtype=np.int64)  # base itself is level 0
        if not mask.any():
            for t in range(t_count):
                cur = plain[t] + 2 * prev1 - prev2
                levels[t] = cur
                prev2, prev1 = prev1, cur
            return levels
        # Slow path with resets: substitute stored absolutes at markers.
        # wide is stored in Fortran order (column-major over (T, N)), so
        # grouping by column preserves each atom's time order.
        wide_cols: dict[int, list[int]] = {}
        cols, _rows = np.nonzero(mask.T)
        for c, value in zip(cols, block.wide.tolist()):
            wide_cols.setdefault(int(c), []).append(value)
        pointers = {c: 0 for c in wide_cols}
        for t in range(t_count):
            cur = plain[t] + 2 * prev1 - prev2
            row_mask = mask[t]
            if row_mask.any():
                for j in np.nonzero(row_mask)[0]:
                    j = int(j)
                    cur[j] = wide_cols[j][pointers[j]]
                    pointers[j] += 1
            levels[t] = cur
            prev2, prev1 = prev1, cur
        return levels


register_compressor("asn", ASNCompressor)
