"""Command-line interface: ``mdz`` compress/stream/decompress/info/stats/bench.

Usage (after ``python setup.py develop`` / ``pip install -e .``)::

    mdz compress  traj.npy traj.mdz --error-bound 1e-3 --buffer-size 10
    mdz compress  run.dump traj.mdz            # LAMMPS-style text dumps
    mdz stream    run.dump traj.mdz --workers 4    # chunked MDZ2 pipeline
    mdz decompress traj.mdz restored.npy
    mdz info      traj.mdz
    mdz verify    traj.mdz                     # integrity audit, no decode
    mdz repair    traj.mdz fixed.mdz           # rebuild from intact chunks
    mdz stats     traj.npy                     # per-stage time/byte profile
    mdz trace     traj.npy -o trace.json --provenance prov.jsonl
    mdz bench     traj.npy --compressors mdz,sz2,tng
    mdz serve     --port 8321                  # compression-as-a-service

``compress`` loads the whole trajectory and writes a monolithic ``MDZ1``
container; ``stream`` feeds snapshots one at a time through the streaming
subsystem and writes a chunked, crash-recoverable ``MDZ2`` container,
optionally fanning compression across ``--workers`` processes.
``decompress``/``info``/``verify`` accept both formats.

``verify`` audits a container without decoding payloads: frame CRCs,
footer/index agreement, and (MDZ2) the rolling checksum chain; exit code
0 means intact, 1 means damage was found (details on stdout, JSON via
``--json``).  ``repair`` rebuilds a damaged MDZ2 archive from its intact
chunk frames and reports exactly which snapshots could not be saved —
see the "Crash safety" walkthrough in the README.

``stats`` compresses with the telemetry layer enabled and prints where the
wall-clock and the container bytes go, stage by stage (prediction +
quantization live inside ``mdz.compress_batch``; the Huffman and
dictionary-coder stages are broken out), with p50/p95/p99 per stage from
the recorder's fixed-bucket histograms.  ``trace`` goes one level deeper:
it runs the same pipeline under a hierarchical span tracer and exports a
Chrome trace-event JSON (loadable in Perfetto) plus an optional JSONL
provenance dump with one record per compressed buffer — which method coded
it, what ADP measured, the entropy fan-out, raw vs. compressed bytes.
``compress``/``stream``/``stats``/``trace`` all accept
``--metrics-json PATH`` to dump the full telemetry snapshot for machine
consumption.

``serve`` runs the asyncio HTTP front end (:mod:`repro.service`):
one-shot compress/decompress/verify endpoints plus token-keyed
multi-tenant streaming sessions — see ``docs/service.md`` for the API
reference and backpressure semantics.

Input trajectories are ``.npy`` arrays of shape (snapshots, atoms, 3) (or
(snapshots, atoms)) or LAMMPS-style text dumps (``.dump``/``.lammpstrj``).
The same entry point is importable: ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path

import numpy as np

from . import __version__
from .core.config import MDZConfig
from .core.mdz import MDZ
from .exceptions import ReproError
from .io.container import read_container_info
from .io.dump import frames_to_array, read_dump
from .telemetry import MetricsRecorder, recording


def _load_npy(path: Path) -> np.ndarray:
    """``np.load`` with unreadable-file errors normalized to ReproError."""
    try:
        return np.load(path)
    except ValueError as exc:
        # Not a .npy file (garbage header, pickled payload, truncation).
        raise ReproError(f"cannot read {path}: {exc}") from exc


def _load_trajectory(path: Path) -> np.ndarray:
    """Read a (snapshots, atoms, 3) trajectory from .npy or a text dump."""
    if path.suffix == ".npy":
        data = _load_npy(path)
    elif path.suffix in (".dump", ".lammpstrj", ".txt"):
        data = frames_to_array(read_dump(path))
    else:
        raise ReproError(
            f"unsupported trajectory format {path.suffix!r} "
            "(expected .npy, .dump, or .lammpstrj)"
        )
    if data.ndim == 2:
        data = data[:, :, None]
    if data.ndim != 3:
        raise ReproError(
            f"expected (snapshots, atoms[, axes]) data, got {data.shape}"
        )
    return data


def _metrics_scope(args: argparse.Namespace):
    """A recording scope when ``--metrics-json`` was given, else a no-op."""
    import contextlib

    if getattr(args, "metrics_json", None):
        return recording()
    return contextlib.nullcontext(None)


def _write_metrics(
    args: argparse.Namespace, rec: MetricsRecorder | None, **extras
) -> None:
    """Dump a telemetry snapshot (plus run-level extras) to the JSON path."""
    if rec is None:
        return
    snapshot = rec.snapshot()
    snapshot.update(extras)
    Path(args.metrics_json).write_text(json.dumps(snapshot, indent=2))
    print(f"telemetry snapshot -> {args.metrics_json}")


def _cmd_compress(args: argparse.Namespace) -> int:
    data = _load_trajectory(Path(args.input))
    config = _config_from_args(args)
    with _metrics_scope(args) as rec:
        t0 = time.perf_counter()
        blob = MDZ(config).compress(data)
        elapsed = time.perf_counter() - t0
    Path(args.output).write_bytes(blob)
    raw = data.astype(np.float32).nbytes
    print(
        f"{args.input}: {data.shape[0]} snapshots x {data.shape[1]} atoms "
        f"x {data.shape[2]} axes"
    )
    print(
        f"compressed {raw / 1e6:.2f} MB -> {len(blob) / 1e6:.3f} MB "
        f"(CR {raw / len(blob):.1f}x) in {elapsed:.2f}s"
    )
    _write_metrics(
        args, rec, wall_seconds=elapsed, container_bytes=len(blob), raw_bytes=raw
    )
    return 0


def _parse_members(value: str) -> tuple:
    """Split a ``--methods`` list: comma-separated registered members."""
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _config_from_args(args: argparse.Namespace) -> MDZConfig:
    extra = {}
    members = getattr(args, "methods", None)
    if members:
        extra["adp_members"] = members
    return MDZConfig(
        error_bound=args.error_bound,
        error_bound_mode=args.bound_mode,
        buffer_size=args.buffer_size,
        method=args.method,
        sequence_mode=args.sequence,
        quantization_scale=args.scale,
        entropy_streams=getattr(args, "entropy_streams", None),
        audit_interval=getattr(args, "audit_interval", 32),
        **extra,
    )


def _iter_snapshots(path: Path):
    """Lazily yield (atoms, axes) snapshots from .npy or a text dump."""
    if path.suffix == ".npy":
        return iter(_load_npy(path))
    if path.suffix in (".dump", ".lammpstrj", ".txt"):
        from .io.dump import read_dump

        return (frame.positions for frame in read_dump(path))
    raise ReproError(
        f"unsupported trajectory format {path.suffix!r} "
        "(expected .npy, .dump, or .lammpstrj)"
    )


def _cmd_stream(args: argparse.Namespace) -> int:
    from .stream import StreamingWriter

    snapshots = _iter_snapshots(Path(args.input))
    with _metrics_scope(args) as rec:
        t0 = time.perf_counter()
        with StreamingWriter(
            args.output, _config_from_args(args), workers=args.workers
        ) as writer:
            for snapshot in snapshots:
                writer.feed(snapshot)
            stats = writer.close()
        elapsed = time.perf_counter() - t0
    mode = f"{args.workers} workers" if args.workers > 1 else "serial"
    print(
        f"{args.input}: streamed {stats.snapshots} snapshots "
        f"({stats.buffers} buffers, {mode})"
    )
    print(
        f"compressed {stats.raw_bytes / 1e6:.2f} MB -> "
        f"{stats.bytes_written / 1e6:.3f} MB "
        f"(CR {stats.compression_ratio:.1f}x) in {elapsed:.2f}s "
        f"({stats.raw_bytes / 1e6 / max(elapsed, 1e-9):.1f} MB/s)"
    )
    _write_metrics(
        args,
        rec,
        wall_seconds=elapsed,
        container_bytes=stats.bytes_written,
        raw_bytes=stats.raw_bytes,
        stream=stats.to_dict(),
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        spool_dir=args.spool_dir,
        max_pending=args.max_pending,
        max_body=args.max_body_mb * 1024 * 1024,
        session_ttl=args.session_ttl,
        log_json=args.log_json,
    )
    print(
        f"mdz service on http://{config.host}:{config.port} "
        f"(max-pending {config.max_pending}, session TTL "
        f"{config.session_ttl:.0f}s) — Ctrl-C for graceful shutdown"
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        # Pre-3.11 path: the interrupt escapes asyncio.run after the
        # graceful-shutdown finally block already ran.
        pass
    # On 3.11+ asyncio.run converts Ctrl-C into a task cancellation that
    # serve() absorbs after finalizing sessions, so we land here either way.
    print("shutdown: live sessions finalized")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .top import render_snapshot_file, run

    if args.file:
        print(render_snapshot_file(args.file, color=not args.no_color))
        return 0
    return run(
        args.url,
        interval=args.interval,
        once=args.once,
        color=False if args.no_color else None,
    )


def _format_stage_table(
    snapshot: dict, wall_seconds: float, container_bytes: int
) -> str:
    """Human-readable per-stage breakdown of one telemetry snapshot."""
    lines = []
    # Timers that share a name with a gauge are value *distributions*
    # (quality.ratio, quality.bound_margin, ...) fed through observe(),
    # not durations — keep them out of the wall-clock stage table.
    gauges = snapshot.get("gauges", {})
    timers = {
        name: cell
        for name, cell in snapshot.get("timers", {}).items()
        if name not in gauges
    }
    if timers:
        lines.append(
            f"{'stage':28s}{'calls':>8s}{'seconds':>10s}{'% wall':>8s}"
            f"{'p50 ms':>10s}{'p95 ms':>10s}{'p99 ms':>10s}{'±p95 ms':>9s}"
        )
        for name, cell in sorted(
            timers.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            share = 100.0 * cell["seconds"] / max(wall_seconds, 1e-12)
            quantiles = "".join(
                f"{cell[q] * 1e3:10.3f}" if q in cell else f"{'-':>10s}"
                for q in ("p50", "p95", "p99")
            )
            widths = cell.get("bucket_widths", {})
            width = (
                f"{widths['p95'] * 1e3:9.3f}" if "p95" in widths else f"{'-':>9s}"
            )
            lines.append(
                f"{name:28s}{cell['count']:8d}{cell['seconds']:10.3f}"
                f"{share:7.1f}%{quantiles}{width}"
            )
        lines.append(
            "  (percentiles interpolate within power-of-two histogram "
            "buckets; ±p95 ms is the"
        )
        lines.append(
            "   width of the bucket holding p95 — the quantile's "
            "resolution; all three widths"
        )
        lines.append("   are in the JSON snapshot under bucket_widths)")
    if gauges:
        ages = snapshot.get("gauge_age_seconds", {})
        lines.append("")
        lines.append(f"{'gauge':36s}{'value':>14s}{'age':>8s}")
        for name, value in sorted(gauges.items()):
            age = ages.get(name)
            age_text = f"{age:7.1f}s" if age is not None else f"{'-':>8s}"
            lines.append(f"{name:36s}{value:14.6g}{age_text}")
    windows = snapshot.get("windows", {})
    window_rows = [
        (label, windows[label])
        for label in ("1m", "5m")
        if windows.get(label, {}).get("rates")
    ]
    if window_rows:
        lines.append("")
        lines.append(f"{'counter rate (/s)':36s}" + "".join(
            f"{label:>12s}" for label, _ in window_rows
        ))
        names = sorted({
            name for _, w in window_rows for name in w["rates"]
        })
        for name in names:
            cells = "".join(
                f"{w['rates'].get(name, 0.0):12.2f}" for _, w in window_rows
            )
            lines.append(f"{name:36s}{cells}")
    counters = snapshot.get("counters", {})
    byte_counters = {k: v for k, v in counters.items() if k.endswith("bytes")}
    other_counters = {
        k: v for k, v in counters.items() if not k.endswith("bytes")
    }
    if byte_counters:
        lines.append("")
        lines.append(f"{'bytes':28s}{'total':>14s}{'% container':>12s}")
        for name, value in sorted(byte_counters.items()):
            share = 100.0 * value / max(container_bytes, 1)
            lines.append(f"{name:28s}{value:14d}{share:11.1f}%")
    if other_counters:
        lines.append("")
        lines.append(f"{'counter':40s}{'value':>10s}")
        for name, value in sorted(other_counters.items()):
            lines.append(f"{name:40s}{value:10d}")
    events = snapshot.get("events", [])
    if events:
        lines.append("")
        lines.append(f"events ({len(events)}):")
        for ev in events:
            lines.append(f"  {ev['name']}: {ev['detail']}")
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    from .stream import stream_compress

    snapshots = _iter_snapshots(Path(args.input))
    sink = open(args.output, "wb") if args.output else io.BytesIO()
    try:
        with recording() as rec:
            t0 = time.perf_counter()
            stats = stream_compress(
                snapshots, sink, _config_from_args(args), workers=args.workers
            )
            elapsed = time.perf_counter() - t0
    finally:
        if args.output:
            sink.close()
    if getattr(args, "prom", False):
        from .telemetry import prom

        sys.stdout.write(prom.render(rec.snapshot()))
        if getattr(args, "metrics_json", None):
            _write_metrics(
                args,
                rec,
                wall_seconds=elapsed,
                container_bytes=stats.bytes_written,
                raw_bytes=stats.raw_bytes,
            )
        return 0
    print(
        f"{args.input}: {stats.snapshots} snapshots ({stats.buffers} "
        f"buffers) -> {stats.bytes_written} bytes "
        f"(CR {stats.compression_ratio:.1f}x) in {elapsed:.2f}s"
    )
    print()
    print(_format_stage_table(rec.snapshot(), elapsed, stats.bytes_written))
    if getattr(args, "metrics_json", None):
        _write_metrics(
            args,
            rec,
            wall_seconds=elapsed,
            container_bytes=stats.bytes_written,
            raw_bytes=stats.raw_bytes,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .stream import stream_compress
    from .telemetry.export import write_chrome_trace, write_provenance
    from .telemetry.tracing import TracingRecorder

    snapshots = _iter_snapshots(Path(args.input))
    sink = open(args.container, "wb") if args.container else io.BytesIO()
    recorder = TracingRecorder()
    try:
        with recording(recorder):
            t0 = time.perf_counter()
            with recorder.span(
                "mdz.trace",
                dataset=Path(args.input).name,
                workers=args.workers,
            ):
                stats = stream_compress(
                    snapshots,
                    sink,
                    _config_from_args(args),
                    workers=args.workers,
                )
            elapsed = time.perf_counter() - t0
    finally:
        if args.container:
            sink.close()
    snap = recorder.snapshot()
    write_chrome_trace(args.output, snap)
    mode = f"{args.workers} workers" if args.workers > 1 else "serial"
    print(
        f"{args.input}: traced {stats.snapshots} snapshots "
        f"({stats.buffers} buffers, {mode}, "
        f"CR {stats.compression_ratio:.1f}x) in {elapsed:.2f}s"
    )
    print(
        f"trace: {len(snap['spans'])} spans -> {args.output} "
        "(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    if args.provenance:
        n = write_provenance(args.provenance, snap)
        print(f"provenance: {n} buffer records -> {args.provenance}")
    if getattr(args, "metrics_json", None):
        _write_metrics(
            args,
            recorder,
            wall_seconds=elapsed,
            container_bytes=stats.bytes_written,
            raw_bytes=stats.raw_bytes,
        )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    t0 = time.perf_counter()
    data = MDZ().decompress(blob)
    elapsed = time.perf_counter() - t0
    out = data.astype(np.float32) if args.float32 else data
    np.save(args.output, out)
    print(
        f"decompressed {data.shape[0]} snapshots x {data.shape[1]} atoms "
        f"in {elapsed:.2f}s -> {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    info = read_container_info(Path(args.input).read_bytes())
    print(f"container: {args.input}")
    print(
        f"  snapshots={info.snapshots} atoms={info.atoms} axes={info.axes} "
        f"buffer_size={info.buffer_size}"
    )
    print(
        "  error bounds: "
        + ", ".join(f"{b:.3e}" for b in info.error_bounds)
    )
    line = f"  method={info.method} sequence={info.sequence}"
    if info.members is not None:
        line += f" members={','.join(info.members)}"
    print(line)
    print(f"  buffers={info.n_buffers} payload={info.payload_bytes / 1e3:.1f} KB")
    for axis, methods in enumerate(info.methods_per_axis):
        summary = ", ".join(f"{m}x{c}" for m, c in sorted(methods.items()))
        print(f"  axis {axis}: {summary}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .exceptions import ContainerFormatError
    from .io.container import verify_container

    blob = Path(args.input).read_bytes()
    try:
        report = verify_container(blob)
    except ContainerFormatError as exc:
        raise ReproError(f"{args.input}: {exc}") from exc
    report["path"] = args.input
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2))
    verdict = "intact" if report["intact"] else "DAMAGED"
    print(f"{args.input}: {report['format']} {verdict}")
    print(
        f"  chunks={report['chunks']} snapshots={report['snapshots']}"
        + (
            f" footer={report['footer']} rolling={report['rolling']}"
            if report["format"] == "MDZ2"
            else ""
        )
    )
    for err in report.get("errors", []):
        print(f"  problem: {err}")
    for warning in report.get("warnings", []):
        print(f"  warning: {warning}")
    if not report["intact"] and report["format"] == "MDZ2":
        print(f"  hint: `mdz repair {args.input} <output>` rebuilds the "
              "archive from its intact chunks")
    return 0 if report["intact"] else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .exceptions import ContainerFormatError
    from .io.container import container_version
    from .stream.format import repair_stream
    from .stream.reader import StreamingReader

    blob = Path(args.input).read_bytes()
    try:
        if container_version(blob) != 2:
            raise ReproError(
                f"{args.input}: repair supports chunked MDZ2 archives only "
                "(MDZ1 containers are written atomically; a damaged one "
                "has no per-chunk redundancy to rebuild from)"
            )
        repaired, report = repair_stream(blob)
        salvage = StreamingReader(blob, salvage=True).salvage_report()
    except ContainerFormatError as exc:
        raise ReproError(f"{args.input}: {exc}") from exc
    Path(args.output).write_bytes(repaired)
    print(
        f"{args.input}: kept {report['chunks_kept']} chunks, dropped "
        f"{report['chunks_dropped']} -> {args.output}"
    )
    print(
        f"  snapshots recovered: {salvage.readable_snapshots}"
        + (
            f" of {salvage.expected_snapshots}"
            if salvage.expected_snapshots is not None
            else " (original total unknown: footer lost)"
        )
    )
    if salvage.lost_snapshots:
        print(f"  snapshots lost: {_format_indices(salvage.lost_snapshots)}")
    if salvage.truncated_tail:
        print("  note: file was truncated; snapshots past the damage are gone")
    if args.report:
        payload = salvage.to_json()
        payload["repair"] = report
        Path(args.report).write_text(json.dumps(payload, indent=2))
        print(f"  salvage report -> {args.report}")
    return 0


def _format_indices(indices: list[int]) -> str:
    """Compact ``0-4, 9, 12-14`` rendering of sorted snapshot indices."""
    if not indices:
        return "none"
    runs: list[str] = []
    start = prev = indices[0]
    for i in indices[1:]:
        if i == prev + 1:
            prev = i
            continue
        runs.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = i
    runs.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ", ".join(runs)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .baselines.api import available_compressors
    from .io.batch import run_stream

    data = _load_trajectory(Path(args.input))
    names = [c.strip() for c in args.compressors.split(",") if c.strip()]
    unknown = sorted(set(names) - set(available_compressors()))
    if unknown:
        raise ReproError(
            f"unknown compressor(s): {', '.join(unknown)}; "
            f"registered: {', '.join(available_compressors())}"
        )
    print(
        f"{'compressor':12s} {'CR':>8s} {'comp MB/s':>10s} {'dec MB/s':>10s}"
    )
    for name in names:
        total = raw = comp_s = dec_s = 0
        for axis in range(data.shape[2]):
            stream = data[:, :, axis]
            decoded = run_stream(
                name,
                stream,
                None if name in _LOSSLESS else args.error_bound,
                args.buffer_size,
                decompress=True,
            )
            total += decoded.result.compressed_bytes
            raw += decoded.result.raw_bytes
            comp_s += decoded.result.compress_seconds
            dec_s += decoded.result.decompress_seconds
        mb = raw / 1e6
        print(
            f"{name:12s} {raw / total:8.2f} {mb / comp_s:10.1f} "
            f"{mb / dec_s:10.1f}"
        )
    return 0


_LOSSLESS = {"zstd", "zlib", "brotli", "fpc", "fpzip", "zfp-lossless"}


def build_parser() -> argparse.ArgumentParser:
    """The ``mdz`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="mdz",
        description="MDZ error-bounded lossy compressor for MD trajectories",
    )
    parser.add_argument(
        "--version", action="version", version=f"mdz {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compression_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", help=".npy or LAMMPS-style dump file")
        p.add_argument("output", help="output .mdz container")
        p.add_argument(
            "--error-bound",
            type=float,
            default=1e-3,
            help="epsilon (default 1e-3)",
        )
        p.add_argument(
            "--bound-mode",
            choices=("value_range", "absolute"),
            default="value_range",
        )
        p.add_argument("--buffer-size", type=int, default=10)
        p.add_argument(
            "--method",
            choices=("adp", "vq", "vqt", "mt", "interp", "bitadaptive"),
            default="adp",
        )
        p.add_argument(
            "--methods",
            type=_parse_members,
            default=None,
            metavar="M1,M2,...",
            help="ADP candidate pool (comma-separated registered members; "
            "default vq,vqt,mt; only meaningful with --method adp)",
        )
        p.add_argument("--sequence", choices=("seq1", "seq2"), default="seq2")
        p.add_argument("--scale", type=int, default=1024)
        p.add_argument(
            "--entropy-streams",
            type=int,
            default=None,
            metavar="N",
            help="Huffman sub-stream fan-out: 1 = legacy single-stream "
            "blobs, N > 1 = that many interleaved H2 streams "
            "(default: auto-scale with array size)",
        )
        p.add_argument(
            "--audit-interval",
            type=int,
            default=32,
            metavar="N",
            help="round-trip decode every Nth buffer per axis to verify "
            "the error bound (0 disables; never changes output bytes; "
            "default 32)",
        )
        p.add_argument(
            "--metrics-json",
            metavar="PATH",
            help="enable telemetry and write the snapshot to PATH",
        )

    comp = sub.add_parser(
        "compress", help="compress a trajectory (monolithic MDZ1)"
    )
    add_compression_options(comp)
    comp.set_defaults(func=_cmd_compress)

    stream = sub.add_parser(
        "stream",
        help="stream-compress a trajectory (chunked MDZ2, optional workers)",
    )
    add_compression_options(stream)
    stream.add_argument(
        "--workers",
        type=int,
        default=0,
        help="compression worker processes (default: serial)",
    )
    stream.set_defaults(func=_cmd_stream)

    stats = sub.add_parser(
        "stats",
        help="profile a compression run: per-stage times and byte accounting",
    )
    stats.add_argument("input", help=".npy or LAMMPS-style dump file")
    stats.add_argument(
        "--output",
        help="also keep the compressed MDZ2 container at this path",
    )
    stats.add_argument(
        "--error-bound", type=float, default=1e-3, help="epsilon (default 1e-3)"
    )
    stats.add_argument(
        "--bound-mode",
        choices=("value_range", "absolute"),
        default="value_range",
    )
    stats.add_argument("--buffer-size", type=int, default=10)
    stats.add_argument(
        "--method",
        choices=("adp", "vq", "vqt", "mt", "interp", "bitadaptive"),
        default="adp",
    )
    stats.add_argument(
        "--methods",
        type=_parse_members,
        default=None,
        metavar="M1,M2,...",
        help="ADP candidate pool (comma-separated registered members)",
    )
    stats.add_argument("--sequence", choices=("seq1", "seq2"), default="seq2")
    stats.add_argument("--scale", type=int, default=1024)
    stats.add_argument(
        "--workers",
        type=int,
        default=0,
        help="compression worker processes (default: serial)",
    )
    stats.add_argument(
        "--audit-interval",
        type=int,
        default=32,
        metavar="N",
        help="round-trip decode every Nth buffer per axis (0 disables)",
    )
    stats.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="also write the telemetry snapshot to PATH",
    )
    stats.add_argument(
        "--prom",
        action="store_true",
        help="print the snapshot in Prometheus text format instead of "
        "the stage table",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="trace a compression run: hierarchical spans (Perfetto JSON) "
        "and per-buffer provenance",
    )
    trace.add_argument("input", help=".npy or LAMMPS-style dump file")
    trace.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="Chrome trace-event JSON output (default: trace.json)",
    )
    trace.add_argument(
        "--provenance",
        metavar="PATH",
        help="also dump one JSONL provenance record per compressed buffer",
    )
    trace.add_argument(
        "--container",
        metavar="PATH",
        help="also keep the compressed MDZ2 container at this path",
    )
    trace.add_argument(
        "--error-bound", type=float, default=1e-3, help="epsilon (default 1e-3)"
    )
    trace.add_argument(
        "--bound-mode",
        choices=("value_range", "absolute"),
        default="value_range",
    )
    trace.add_argument("--buffer-size", type=int, default=10)
    trace.add_argument(
        "--method",
        choices=("adp", "vq", "vqt", "mt", "interp", "bitadaptive"),
        default="adp",
    )
    trace.add_argument(
        "--methods",
        type=_parse_members,
        default=None,
        metavar="M1,M2,...",
        help="ADP candidate pool (comma-separated registered members)",
    )
    trace.add_argument("--sequence", choices=("seq1", "seq2"), default="seq2")
    trace.add_argument("--scale", type=int, default=1024)
    trace.add_argument(
        "--workers",
        type=int,
        default=0,
        help="compression worker processes (default: serial)",
    )
    trace.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="also write the aggregate telemetry snapshot to PATH",
    )
    trace.set_defaults(func=_cmd_trace)

    dec = sub.add_parser("decompress", help="decompress a container")
    dec.add_argument("input", help=".mdz container")
    dec.add_argument("output", help="output .npy file")
    dec.add_argument(
        "--float32",
        action="store_true",
        help="store the reconstruction as float32",
    )
    dec.set_defaults(func=_cmd_decompress)

    info = sub.add_parser("info", help="inspect a container")
    info.add_argument("input", help=".mdz container")
    info.set_defaults(func=_cmd_info)

    verify = sub.add_parser(
        "verify",
        help="audit a container's integrity (CRCs, index, rolling chain)",
    )
    verify.add_argument("input", help=".mdz container")
    verify.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full verification report as JSON",
    )
    verify.set_defaults(func=_cmd_verify)

    repair = sub.add_parser(
        "repair",
        help="rebuild a damaged MDZ2 archive from its intact chunks",
    )
    repair.add_argument("input", help="damaged .mdz (MDZ2) container")
    repair.add_argument("output", help="repaired container path")
    repair.add_argument(
        "--report",
        metavar="PATH",
        help="also write the salvage report (lost snapshots) as JSON",
    )
    repair.set_defaults(func=_cmd_repair)

    bench = sub.add_parser("bench", help="compare compressors on a file")
    bench.add_argument("input", help=".npy or dump file")
    bench.add_argument(
        "--compressors",
        default="mdz,sz2,tng,lfzip",
        help="comma-separated registry names",
    )
    bench.add_argument("--error-bound", type=float, default=1e-3)
    bench.add_argument("--buffer-size", type=int, default=10)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the compression service (HTTP API, streaming sessions)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--spool-dir",
        metavar="DIR",
        help="directory for session archives (default: a fresh tempdir)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        help="CPU-bound requests admitted at once; beyond it requests "
        "get 429 + Retry-After (default 16)",
    )
    serve.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="request body cap in MB (default 64)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=300.0,
        help="idle seconds before a streaming session expires (default 300)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (one object per line) on stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a service's /metrics exposition",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="service base URL (default http://127.0.0.1:8321)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (for scripts and CI artifacts)",
    )
    top.add_argument(
        "--file",
        metavar="PATH",
        help="render a --metrics-json snapshot file instead of scraping",
    )
    top.add_argument(
        "--no-color",
        action="store_true",
        help="disable ANSI colors",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # One line, not a traceback; OSError covers missing input,
        # unreadable paths, full disks (FileNotFoundError, ...).  The
        # bracketed code is the same stable string the HTTP service puts
        # in its JSON error bodies, so scripts branch on one vocabulary
        # across both surfaces.
        from .service.errors import error_code

        print(f"error: [{error_code(exc)}] {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
