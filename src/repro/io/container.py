"""The ``.mdz`` container formats.

Two container generations share this read API:

* ``MDZ1`` — the original monolithic layout, written in one piece by
  :func:`write_container`.  All little-endian, sections framed by
  :mod:`repro.serde`::

      magic   : 4 bytes  b"MDZ1"
      header  : JSON     {snapshots, atoms, axes, dtype, buffer_size,
                          error_bounds (per axis), scale, sequence, method}
      index   : JSON     byte offsets of every (buffer, axis) payload within
                          the payload area, buffer-major
      payload : BYTES    concatenation of the per-buffer per-axis blobs

* ``MDZ2`` — the append-only chunked streaming layout produced by
  :class:`repro.stream.writer.StreamingWriter` (see
  :mod:`repro.stream.format`).

:func:`read_container`, :func:`read_container_batch`, and
:func:`read_container_info` sniff the magic and dispatch, so every
consumer (CLI, benchmarks, analysis) handles both generations.

The MDZ1 index enables random access to any buffer; buffers coded by VQ
are fully independent, while VQT/MT buffers additionally need the session
reference (rebuilt by decoding buffer 0 once).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..baselines.api import SessionMeta
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..core.registry import DEFAULT_MEMBERS
from ..telemetry import QualityAuditor
from ..exceptions import (
    CompressionError,
    ContainerFormatError,
    DecompressionError,
)
from ..serde import BlobReader, BlobWriter

MAGIC = b"MDZ1"


def container_version(blob: bytes) -> int:
    """The format generation of a container blob: 1 or 2.

    Raises :class:`ContainerFormatError` for empty input or when the
    blob carries neither magic.  ``MDZ2`` files lead with their raw
    magic; ``MDZ1`` blobs frame it as the first :mod:`repro.serde`
    section.
    """
    from ..stream.format import is_stream_container

    if len(blob) == 0:
        raise ContainerFormatError(
            "container is empty (zero-length input)"
        )
    if is_stream_container(blob):
        return 2
    try:
        magic = BlobReader(blob).read_bytes()
    except DecompressionError as exc:
        raise ContainerFormatError(
            f"not an .mdz container: {exc}"
        ) from exc
    if magic != MAGIC:
        raise ContainerFormatError(
            f"bad container magic {magic!r}; expected {MAGIC!r} or MDZ2"
        )
    return 1


def _axis_bounds(positions: np.ndarray, config: MDZConfig) -> list[float]:
    """Absolute per-axis error bounds from the configured mode."""
    bounds = []
    for a in range(positions.shape[2]):
        axis = positions[:, :, a]
        value_range = float(axis.max() - axis.min())
        bounds.append(config.absolute_bound(value_range))
    return bounds


def _sessions(
    config: MDZConfig,
    bounds: list[float],
    n_atoms: int,
) -> list[MDZAxisCompressor]:
    sessions = []
    for eb in bounds:
        session = MDZAxisCompressor(config)
        session.begin(eb, SessionMeta(n_atoms=n_atoms))
        sessions.append(session)
    return sessions


def write_container(positions: np.ndarray, config: MDZConfig) -> bytes:
    """Compress a (snapshots, atoms, axes) array into a container."""
    positions = np.asarray(positions)
    if positions.ndim != 3:
        raise CompressionError(
            f"expected a (snapshots, atoms, axes) array, got {positions.shape}"
        )
    t_count, n_atoms, n_axes = positions.shape
    if t_count == 0 or n_atoms == 0:
        raise CompressionError("cannot compress an empty trajectory")
    work = positions.astype(np.float64)
    bounds = _axis_bounds(work, config)
    sessions = _sessions(config, bounds, n_atoms)
    bs = config.buffer_size
    auditor = QualityAuditor(config.audit_interval)
    blobs: list[bytes] = []
    offsets: list[int] = []
    cursor = 0
    for t0 in range(0, t_count, bs):
        chunk = work[t0 : t0 + bs]
        buffer_index = t0 // bs
        for a in range(n_axes):
            blob = sessions[a].compress_batch(chunk[:, :, a])
            if auditor.want(buffer_index):
                auditor.audit(
                    sessions[a],
                    blob,
                    chunk[:, :, a],
                    buffer_index=buffer_index,
                    axis=a,
                )
            offsets.append(cursor)
            cursor += len(blob)
            blobs.append(blob)
    writer = BlobWriter()
    writer.write_bytes(MAGIC)
    header = {
        "snapshots": t_count,
        "atoms": n_atoms,
        "axes": n_axes,
        "dtype": np.asarray(positions).dtype.str,
        "buffer_size": bs,
        "error_bounds": bounds,
        "scale": config.quantization_scale,
        "sequence": config.sequence_mode,
        "method": config.method,
        "lossless": config.lossless_backend,
    }
    # A non-default ADP pool is recorded for provenance (`mdz info`);
    # the key is omitted for the default pool so legacy archives stay
    # byte-identical (pinned by tools/legacy_digests.py).
    if config.method == "adp" and config.adp_members != DEFAULT_MEMBERS:
        header["members"] = list(config.adp_members)
    writer.write_json(header)
    payload = b"".join(blobs)
    writer.write_json(
        {
            "offsets": offsets,
            "total": cursor,
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        }
    )
    writer.write_bytes(payload)
    return writer.getvalue()


def _open_container(blob: bytes):
    reader = BlobReader(blob)
    try:
        magic = reader.read_bytes()
        if magic != MAGIC:
            raise ContainerFormatError(
                f"bad container magic {magic!r}; expected {MAGIC!r} or MDZ2"
            )
        header = reader.read_json()
        index = reader.read_json()
        payload = reader.read_bytes()
    except ContainerFormatError:
        raise
    except DecompressionError as exc:
        # Framing-level failures (short frames, wrong tags) mean the file
        # itself is damaged, not one compressed payload inside it.
        raise ContainerFormatError(
            f"truncated or malformed container: {exc}"
        ) from exc
    if int(index["total"]) != len(payload):
        raise ContainerFormatError(
            f"payload length {len(payload)} does not match index total "
            f"{index['total']}"
        )
    expected_crc = index.get("crc32")
    if expected_crc is not None:
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != int(expected_crc):
            raise ContainerFormatError(
                f"payload checksum mismatch (stored {expected_crc:#010x}, "
                f"computed {actual:#010x}): the container is corrupted"
            )
    return header, index, payload


def _config_from_header(header: dict) -> MDZConfig:
    extra = {}
    if "members" in header:
        extra["adp_members"] = tuple(header["members"])
    return MDZConfig(
        error_bound=1.0e-3,  # per-axis absolute bounds travel separately
        buffer_size=int(header["buffer_size"]),
        quantization_scale=int(header["scale"]),
        sequence_mode=str(header["sequence"]),
        method=str(header["method"]),
        lossless_backend=str(header["lossless"]),
        **extra,
    )


def _blob_at(payload: bytes, offsets: list[int], i: int) -> bytes:
    start = offsets[i]
    end = offsets[i + 1] if i + 1 < len(offsets) else len(payload)
    return payload[start:end]


def read_container(blob: bytes) -> np.ndarray:
    """Decompress a full container (``MDZ1`` or ``MDZ2``) to float64."""
    if container_version(blob) == 2:
        from ..stream.reader import StreamingReader

        return StreamingReader(blob).read_all()
    header, index, payload = _open_container(blob)
    t_count = int(header["snapshots"])
    n_atoms = int(header["atoms"])
    n_axes = int(header["axes"])
    bs = int(header["buffer_size"])
    config = _config_from_header(header)
    bounds = [float(b) for b in header["error_bounds"]]
    sessions = _sessions(config, bounds, n_atoms)
    offsets = [int(o) for o in index["offsets"]]
    out = np.empty((t_count, n_atoms, n_axes), dtype=np.float64)
    blob_i = 0
    for t0 in range(0, t_count, bs):
        for a in range(n_axes):
            piece = _blob_at(payload, offsets, blob_i)
            out[t0 : t0 + bs, :, a] = sessions[a].decompress_batch(piece)
            blob_i += 1
    return out


@dataclass(frozen=True)
class ContainerInfo:
    """Structural summary of a container (no payload decoding).

    ``methods_per_axis`` maps, per axis, the method name to the number of
    buffers coded with it — which is how ADP's per-axis choices (Table VI)
    can be inspected post hoc.
    """

    snapshots: int
    atoms: int
    axes: int
    buffer_size: int
    error_bounds: tuple[float, ...]
    method: str
    sequence: str
    n_buffers: int
    payload_bytes: int
    methods_per_axis: tuple[dict[str, int], ...]
    #: The recorded ADP candidate pool; ``None`` for fixed-method
    #: archives and legacy default-pool archives (which omit the key).
    members: tuple[str, ...] | None = None


def read_container_info(blob: bytes) -> ContainerInfo:
    """Inspect a container: header fields plus the per-buffer method tags."""
    from ..core.methods import METHOD_NAMES
    from ..sz.lossless import lossless_decompress

    if container_version(blob) == 2:
        from ..stream.reader import StreamingReader

        return StreamingReader(blob).container_info()
    header, index, payload = _open_container(blob)
    n_axes = int(header["axes"])
    offsets = [int(o) for o in index["offsets"]]
    n_buffers = len(offsets) // n_axes
    methods: list[dict[str, int]] = [dict() for _ in range(n_axes)]
    for i in range(len(offsets)):
        axis = i % n_axes
        piece = _blob_at(payload, offsets, i)
        reader = BlobReader(lossless_decompress(piece))
        method_id = int(reader.read_json()["m"])
        name = METHOD_NAMES.get(method_id, f"?{method_id}")
        methods[axis][name] = methods[axis].get(name, 0) + 1
    return ContainerInfo(
        snapshots=int(header["snapshots"]),
        atoms=int(header["atoms"]),
        axes=n_axes,
        buffer_size=int(header["buffer_size"]),
        error_bounds=tuple(float(b) for b in header["error_bounds"]),
        method=str(header["method"]),
        sequence=str(header["sequence"]),
        n_buffers=n_buffers,
        payload_bytes=len(payload),
        methods_per_axis=tuple(methods),
        members=(
            tuple(str(m) for m in header["members"])
            if "members" in header
            else None
        ),
    )


def read_container_batch(blob: bytes, batch_index: int) -> np.ndarray:
    """Decode one buffer (all axes) from a container.

    Buffer 0 is decoded first when needed to rebuild the MT/VQT session
    reference; VQ-coded containers decode the target buffer directly.
    """
    if container_version(blob) == 2:
        from ..stream.reader import StreamingReader

        return StreamingReader(blob).read_buffer(batch_index)
    header, index, payload = _open_container(blob)
    t_count = int(header["snapshots"])
    n_atoms = int(header["atoms"])
    n_axes = int(header["axes"])
    bs = int(header["buffer_size"])
    n_batches = (t_count + bs - 1) // bs
    if not 0 <= batch_index < n_batches:
        raise ContainerFormatError(
            f"batch {batch_index} out of range (container has {n_batches})"
        )
    config = _config_from_header(header)
    bounds = [float(b) for b in header["error_bounds"]]
    sessions = _sessions(config, bounds, n_atoms)
    offsets = [int(o) for o in index["offsets"]]
    rows = min(bs, t_count - batch_index * bs)
    out = np.empty((rows, n_atoms, n_axes), dtype=np.float64)
    for a in range(n_axes):
        if batch_index > 0:
            # Prime the session reference from buffer 0 of this axis.
            head = _blob_at(payload, offsets, a)
            sessions[a].decompress_batch(head)
        piece = _blob_at(payload, offsets, batch_index * n_axes + a)
        out[:, :, a] = sessions[a].decompress_batch(piece)
    return out


def verify_container(blob: bytes) -> dict:
    """Integrity audit of a container of either generation, no decoding.

    Dispatches on the magic: ``MDZ2`` blobs go through
    :func:`repro.stream.format.verify_stream` (per-chunk CRCs, rolling
    checksum chain, footer/index agreement); ``MDZ1`` blobs are checked
    for frame structure, index/payload agreement, and the whole-payload
    CRC32.

    Returns a JSON-serialisable report.  Common keys:

    * ``format`` — ``"MDZ1"`` or ``"MDZ2"``;
    * ``intact`` — ``True`` only when every check passed;
    * ``errors`` — human-readable failure descriptions (empty if intact).

    Never raises for damaged input: structural failures are folded into
    the report (``intact=False``).  Only a zero-length blob still raises
    :class:`ContainerFormatError`, mirroring :func:`container_version`.
    """
    version = container_version(blob)
    if version == 2:
        from ..stream.format import verify_stream

        return verify_stream(blob)
    report: dict = {
        "format": "MDZ1",
        "intact": False,
        "header": False,
        "chunks": 0,
        "snapshots": 0,
        "errors": [],
    }
    try:
        header, index, payload = _open_container(blob)
    except ContainerFormatError as exc:
        report["errors"].append(str(exc))
        return report
    report["header"] = True
    try:
        report["snapshots"] = int(header["snapshots"])
        offsets = [int(o) for o in index["offsets"]]
    except (KeyError, TypeError, ValueError) as exc:
        report["errors"].append(f"malformed header/index: {exc}")
        return report
    report["chunks"] = len(offsets)
    previous = 0
    for i, off in enumerate(offsets):
        if off < previous or off > len(payload):
            report["errors"].append(
                f"index offset {i} out of order or beyond payload "
                f"({off} / {len(payload)})"
            )
            return report
        previous = off
    n_axes = int(header.get("axes", 0) or 0)
    if n_axes and len(offsets) % n_axes != 0:
        report["errors"].append(
            f"index holds {len(offsets)} blobs, not a multiple of "
            f"{n_axes} axes"
        )
        return report
    report["intact"] = True
    return report
