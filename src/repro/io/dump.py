"""LAMMPS-style text dump reader/writer.

The classic ``dump atom`` format::

    ITEM: TIMESTEP
    1000
    ITEM: NUMBER OF ATOMS
    3137
    ITEM: BOX BOUNDS pp pp pp
    0.0 36.15
    0.0 36.15
    0.0 36.15
    ITEM: ATOMS id x y z
    1 0.000 0.000 0.000
    ...

Used by the quickstart example and the mini-LAMMPS driver so the package
round-trips real trajectory files, not just in-memory arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

import numpy as np

from ..exceptions import ReproError


class DumpFormatError(ReproError):
    """Raised when a dump file deviates from the expected structure."""


@dataclass
class DumpFrame:
    """One snapshot of a dump file."""

    timestep: int
    box: np.ndarray  # (3, 2) lo/hi bounds
    positions: np.ndarray  # (atoms, 3)


def write_dump(
    path: str | Path,
    frames: Iterable[DumpFrame],
) -> int:
    """Write frames to a dump file; returns the number of frames written."""
    count = 0
    with open(path, "w") as fh:
        for frame in frames:
            _write_frame(fh, frame)
            count += 1
    return count


def _write_frame(fh: TextIO, frame: DumpFrame) -> None:
    n = frame.positions.shape[0]
    fh.write("ITEM: TIMESTEP\n")
    fh.write(f"{frame.timestep}\n")
    fh.write("ITEM: NUMBER OF ATOMS\n")
    fh.write(f"{n}\n")
    fh.write("ITEM: BOX BOUNDS pp pp pp\n")
    for lo, hi in frame.box:
        fh.write(f"{lo:.10g} {hi:.10g}\n")
    fh.write("ITEM: ATOMS id x y z\n")
    for i, (x, y, z) in enumerate(frame.positions, start=1):
        fh.write(f"{i} {x:.8g} {y:.8g} {z:.8g}\n")


def read_dump(path: str | Path) -> Iterator[DumpFrame]:
    """Iterate over the frames of a dump file."""
    with open(path) as fh:
        while True:
            line = fh.readline()
            if not line:
                return
            if line.strip() != "ITEM: TIMESTEP":
                raise DumpFormatError(f"expected TIMESTEP item, got {line!r}")
            timestep = int(fh.readline())
            if fh.readline().strip() != "ITEM: NUMBER OF ATOMS":
                raise DumpFormatError("expected NUMBER OF ATOMS item")
            n = int(fh.readline())
            bounds_header = fh.readline()
            if not bounds_header.startswith("ITEM: BOX BOUNDS"):
                raise DumpFormatError("expected BOX BOUNDS item")
            box = np.array(
                [[float(v) for v in fh.readline().split()] for _ in range(3)]
            )
            atoms_header = fh.readline()
            if not atoms_header.startswith("ITEM: ATOMS"):
                raise DumpFormatError("expected ATOMS item")
            positions = np.empty((n, 3))
            for i in range(n):
                parts = fh.readline().split()
                if len(parts) < 4:
                    raise DumpFormatError(
                        f"truncated atom line at frame {timestep}, atom {i}"
                    )
                positions[i] = [float(parts[1]), float(parts[2]), float(parts[3])]
            yield DumpFrame(timestep=timestep, box=box, positions=positions)


def frames_to_array(frames: Iterable[DumpFrame]) -> np.ndarray:
    """Stack frames into a (snapshots, atoms, 3) array."""
    stacked = [frame.positions for frame in frames]
    if not stacked:
        raise DumpFormatError("dump file contains no frames")
    return np.stack(stacked)
