"""Multi-field trajectory compression (positions, velocities, forces...).

MD outputs often carry more per-atom fields than positions.  The paper's
compressor targets positions (Section III-A), but the same machinery
applies to any per-atom float field; this module packs several fields —
each compressed as its own ``.mdz`` container with its own error bound —
into one archive.

Example
-------
>>> from repro.io.fields import compress_fields, decompress_fields
>>> archive = compress_fields(
...     {"positions": pos, "velocities": vel},
...     bounds={"positions": 1e-3, "velocities": 1e-2},
... )
>>> fields = decompress_fields(archive)
>>> fields["velocities"].shape == vel.shape
True
"""

from __future__ import annotations

import numpy as np

from ..core.config import MDZConfig
from ..exceptions import CompressionError, ContainerFormatError
from ..serde import BlobReader, BlobWriter
from .container import read_container, write_container

_MAGIC = b"MDZF"


def compress_fields(
    fields: dict[str, np.ndarray],
    bounds: dict[str, float] | float = 1e-3,
    config: MDZConfig | None = None,
) -> bytes:
    """Compress several per-atom fields into one archive.

    Parameters
    ----------
    fields:
        Mapping of field name to a (snapshots, atoms, components) array
        (2-D arrays are treated as single-component).  All fields must
        share the snapshot and atom counts.
    bounds:
        Value-range-relative error bound per field, or one bound for all.
    config:
        Base MDZ configuration (its ``error_bound`` is overridden per
        field).
    """
    if not fields:
        raise CompressionError("no fields to compress")
    base = config if config is not None else MDZConfig()
    shapes = set()
    writer = BlobWriter()
    writer.write_bytes(_MAGIC)
    writer.write_json(sorted(fields))
    for name in sorted(fields):
        data = np.asarray(fields[name])
        if data.ndim == 2:
            data = data[:, :, None]
        if data.ndim != 3:
            raise CompressionError(
                f"field {name!r} must be (snapshots, atoms[, k]), "
                f"got {np.asarray(fields[name]).shape}"
            )
        shapes.add(data.shape[:2])
        if len(shapes) > 1:
            raise CompressionError(
                f"fields disagree on (snapshots, atoms): {sorted(shapes)}"
            )
        bound = bounds[name] if isinstance(bounds, dict) else bounds
        field_config = MDZConfig(
            error_bound=bound,
            error_bound_mode=base.error_bound_mode,
            buffer_size=base.buffer_size,
            quantization_scale=base.quantization_scale,
            sequence_mode=base.sequence_mode,
            method=base.method,
            adp_members=base.adp_members,
            adaptation_interval=base.adaptation_interval,
            lossless_backend=base.lossless_backend,
            level_seed=base.level_seed,
        )
        writer.write_json({"name": name})
        writer.write_bytes(write_container(data, field_config))
    return writer.getvalue()


def decompress_fields(archive: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`compress_fields`.

    Single-component fields come back as (snapshots, atoms) arrays.
    """
    reader = BlobReader(archive)
    magic = reader.read_bytes()
    if magic != _MAGIC:
        raise ContainerFormatError(
            f"bad field-archive magic {magic!r}; expected {_MAGIC!r}"
        )
    names = [str(n) for n in reader.read_json()]
    out: dict[str, np.ndarray] = {}
    for expected in names:
        head = reader.read_json()
        if str(head["name"]) != expected:
            raise ContainerFormatError(
                f"field order corrupted: expected {expected!r}, "
                f"found {head['name']!r}"
            )
        data = read_container(reader.read_bytes())
        if data.shape[2] == 1:
            data = data[:, :, 0]
        out[expected] = data
    return out
