"""On-disk formats and streaming pipelines.

* :mod:`repro.io.container` — the ``.mdz`` container: header, per-buffer
  per-axis payloads, random batch access;
* :mod:`repro.io.batch` — the streaming harness that drives any registered
  compressor over a (snapshots, atoms) stream in buffers, collecting sizes
  and timings (what every benchmark uses);
* :mod:`repro.io.dump` — LAMMPS-style text dump reader/writer.
"""

from .batch import run_stream, stream_error_bound
from .container import (
    ContainerInfo,
    read_container,
    read_container_batch,
    read_container_info,
    verify_container,
    write_container,
)
from .dump import read_dump, write_dump
from .fields import compress_fields, decompress_fields

__all__ = [
    "ContainerInfo",
    "compress_fields",
    "decompress_fields",
    "read_container",
    "read_container_info",
    "read_container_batch",
    "read_dump",
    "run_stream",
    "stream_error_bound",
    "verify_container",
    "write_container",
    "write_dump",
]
