"""Streaming harness: drive any registered compressor over a stream.

This is the single code path every benchmark and experiment uses to run a
compressor on one coordinate-axis stream, buffer by buffer, so compression
ratios, error metrics, and timings are measured identically for MDZ and
every baseline (Section VII's methodology).

Conventions, matching the paper:

* the *value-range-relative* error bound epsilon resolves to the absolute
  bound ``epsilon * (max - min)`` over the stream
  (:func:`stream_error_bound`);
* the raw size is the stream's canonical storage footprint (float32, the
  SDRBench convention for MD data) unless the array is float64;
* compressed size is the sum of all self-contained per-buffer blobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.api import (
    SessionMeta,
    StreamResult,
    create_compressor,
)


def stream_error_bound(data: np.ndarray, epsilon: float) -> float:
    """Absolute bound from a value-range-relative epsilon."""
    value_range = float(np.max(data) - np.min(data))
    if value_range == 0.0:
        return float(epsilon)
    return float(epsilon) * value_range


@dataclass
class DecodedStream:
    """Reconstruction plus the result bookkeeping."""

    result: StreamResult
    reconstruction: np.ndarray | None = None
    per_batch_sizes: list[int] = field(default_factory=list)


def run_stream(
    compressor_name: str,
    data: np.ndarray,
    epsilon: float | None,
    buffer_size: int,
    decompress: bool = False,
    original_atoms: int | None = None,
    label: str = "",
) -> DecodedStream:
    """Compress (and optionally decompress) one (T, N) stream in buffers.

    Parameters
    ----------
    compressor_name:
        Any name from :func:`repro.baselines.available_compressors`.
    data:
        The (snapshots, atoms) coordinate stream.
    epsilon:
        Value-range-relative error bound; ``None`` for lossless
        compressors.
    buffer_size:
        Snapshots per buffer (the paper's BS).
    decompress:
        Also run decompression, filling ``reconstruction`` and the
        decompression timing.
    original_atoms:
        Paper-scale atom count for capability checks (TNG/HRTC limits).

    Raises
    ------
    UnsupportedDatasetError
        Propagated from compressors that veto the dataset — callers decide
        whether that is an excluded case (benchmarks) or an error (users).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"expected a (snapshots, atoms) stream, got {data.shape}")
    t_count, n_atoms = data.shape
    compressor = create_compressor(compressor_name)
    meta = SessionMeta(
        n_atoms=n_atoms,
        original_atoms=original_atoms,
        value_range=float(data.max() - data.min()),
        label=label,
    )
    error_bound = None
    if not compressor.is_lossless:
        if epsilon is None:
            raise ValueError(f"{compressor_name} requires an error bound")
        error_bound = stream_error_bound(data, epsilon)
    compressor.begin(error_bound, meta)
    blobs: list[bytes] = []
    t_start = time.perf_counter()
    for t0 in range(0, t_count, buffer_size):
        blobs.append(compressor.compress_batch(data[t0 : t0 + buffer_size]))
    compress_seconds = time.perf_counter() - t_start
    raw_bytes = _raw_size(data)
    result = StreamResult(
        compressed_bytes=sum(len(b) for b in blobs),
        raw_bytes=raw_bytes,
        compress_seconds=compress_seconds,
        blobs=blobs,
    )
    decoded = DecodedStream(
        result=result, per_batch_sizes=[len(b) for b in blobs]
    )
    if decompress:
        decoder = create_compressor(compressor_name)
        decoder.begin(error_bound, meta)
        out = np.empty((t_count, n_atoms), dtype=np.float64)
        t_start = time.perf_counter()
        row = 0
        for blob in blobs:
            piece = np.asarray(decoder.decompress_batch(blob), dtype=np.float64)
            if piece.ndim == 1:
                piece = piece[None, :]
            out[row : row + piece.shape[0]] = piece
            row += piece.shape[0]
        result.decompress_seconds = time.perf_counter() - t_start
        decoded.reconstruction = out
    return decoded


def _raw_size(data: np.ndarray) -> int:
    """Canonical raw footprint: float32 unless the input is float64."""
    itemsize = 8 if data.dtype == np.float64 else 4
    return int(data.size) * itemsize
