"""LJ-benchmark driver with an MDZ-enabled dump path (Table VII).

``run_lj_benchmark`` integrates the LAMMPS ``bench/in.lj`` state point
(FCC melt, rho* = 0.8442, T* = 1.44, cutoff 2.5 sigma) with the package's
MD engine and dumps coordinates every ``dump_every`` steps through a
:class:`DumpSink`:

* without MDZ the sink serializes raw float32 coordinates and charges the
  modelled parallel-file-system write time;
* with MDZ the sink buffers ``buffer_size`` snapshots per axis, compresses
  them in situ with :class:`~repro.core.mdz.MDZAxisCompressor`, and charges
  the (much smaller) compressed write.

Compression time is *real* measured time; only the PFS write is modelled
(bytes / bandwidth), because this reproduction has no parallel file system
— the substitution is documented in DESIGN.md.  The paper's conclusion —
output share shrinks at high dump rates, total runtime unchanged — emerges
from the same trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.api import SessionMeta
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..md.lattice import fcc_lattice
from ..md.simulation import MDSimulation, SimulationReport

#: Modelled per-node parallel-file-system write bandwidth (bytes/s).
#:
#: The value is *scaled to this substrate*, preserving the dimensionless
#: ratio that drives Table VII.  From the paper's 64K-atom F=100 row, raw
#: dumping sustains ~18 MB/s per node while MDZ processes ~130 MB/s — the
#: compressor is ~7x faster than the file system.  Our Python MDZ runs at
#: ~4 MB/s, so the modelled PFS is set 7x slower than that; the resulting
#: output-share behaviour (MDZ wins at high dump rates, negligible at low
#: ones) is then directly comparable to the paper's.
PFS_BANDWIDTH = 0.6e6

#: LAMMPS LJ benchmark state point.
LJ_DENSITY = 0.8442
LJ_TEMPERATURE = 1.44


@dataclass
class DumpSink:
    """Dump consumer: raw writes or in-situ MDZ compression.

    Parameters
    ----------
    use_mdz:
        Pipe snapshots through MDZ before the (modelled) PFS write.
    buffer_size:
        Snapshots buffered per compression call (the paper's BS).
    epsilon:
        Value-range-relative error bound for the MDZ path.
    pfs_bandwidth:
        Modelled write bandwidth in bytes/s.
    """

    use_mdz: bool
    buffer_size: int = 10
    epsilon: float = 1e-3
    pfs_bandwidth: float = PFS_BANDWIDTH
    raw_bytes: int = 0
    written_bytes: int = 0
    compress_seconds: float = 0.0
    _buffer: list[np.ndarray] = field(default_factory=list)
    _sessions: list[MDZAxisCompressor] | None = None

    def consume(self, step: int, positions: np.ndarray) -> float:
        """Dump one snapshot; returns modelled write seconds to charge."""
        snapshot = positions.astype(np.float32)
        self.raw_bytes += snapshot.nbytes
        if not self.use_mdz:
            self.written_bytes += snapshot.nbytes
            return snapshot.nbytes / self.pfs_bandwidth
        self._buffer.append(snapshot)
        if len(self._buffer) < self.buffer_size:
            return 0.0
        return self._flush()

    def finish(self) -> float:
        """Flush any buffered snapshots; returns modelled write seconds."""
        if self.use_mdz and self._buffer:
            return self._flush()
        return 0.0

    @property
    def compression_ratio(self) -> float:
        """Achieved raw/written ratio (1.0 for the raw path)."""
        return self.raw_bytes / max(self.written_bytes, 1)

    def _flush(self) -> float:
        batch = np.stack(self._buffer)  # (B, N, 3)
        self._buffer.clear()
        t0 = time.perf_counter()
        if self._sessions is None:
            self._sessions = []
            for a in range(3):
                axis = batch[:, :, a].astype(np.float64)
                bound = self.epsilon * float(axis.max() - axis.min())
                session = MDZAxisCompressor(MDZConfig(method="adp"))
                session.begin(
                    max(bound, 1e-12), SessionMeta(n_atoms=batch.shape[1])
                )
                self._sessions.append(session)
        compressed = 0
        for a in range(3):
            blob = self._sessions[a].compress_batch(
                batch[:, :, a].astype(np.float64)
            )
            compressed += len(blob)
        self.compress_seconds += time.perf_counter() - t0
        self.written_bytes += compressed
        return compressed / self.pfs_bandwidth


@dataclass
class LJBenchmarkResult:
    """Outcome of one Table VII row."""

    n_atoms: int
    dump_every: int
    use_mdz: bool
    report: SimulationReport
    sink: DumpSink

    @property
    def duration_seconds(self) -> float:
        """Total accounted runtime."""
        return self.report.total_seconds

    def row(self) -> dict[str, float]:
        """Table VII row: duration plus Comp/Comm/Output fractions."""
        fractions = self.report.fractions()
        return {
            "atoms": self.n_atoms,
            "dump_every": self.dump_every,
            "mdz": self.use_mdz,
            "duration_s": self.duration_seconds,
            "comp": fractions["comp"],
            "comm": fractions["comm"],
            "output": fractions["output"],
            "output_cr": self.sink.compression_ratio,
        }


def run_lj_benchmark(
    cells: int,
    steps: int,
    dump_every: int,
    use_mdz: bool,
    buffer_size: int = 10,
    epsilon: float = 1e-3,
    equilibration: int = 40,
    seed: int = 11,
    pfs_bandwidth: float = PFS_BANDWIDTH,
) -> LJBenchmarkResult:
    """Run one LJ benchmark configuration (one Table VII row).

    ``cells`` is the FCC cell count per dimension (atoms = 4 * cells^3).
    """
    a = (4.0 / LJ_DENSITY) ** (1.0 / 3.0)
    lattice = fcc_lattice((cells,) * 3, a)
    sim = MDSimulation(
        lattice.positions,
        lattice.box,
        temperature=LJ_TEMPERATURE,
        dt=0.005,
        seed=seed,
    )
    sim.run(equilibration)
    sink = DumpSink(
        use_mdz=use_mdz,
        buffer_size=buffer_size,
        epsilon=epsilon,
        pfs_bandwidth=pfs_bandwidth,
    )
    report = SimulationReport()
    sim.run(
        steps,
        dump_every=dump_every,
        dump_callback=sink.consume,
        report=report,
    )
    report.output_seconds += sink.finish()
    report.dumped_bytes = sink.written_bytes
    return LJBenchmarkResult(
        n_atoms=sim.n_atoms,
        dump_every=dump_every,
        use_mdz=use_mdz,
        report=report,
        sink=sink,
    )
