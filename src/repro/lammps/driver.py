"""LJ-benchmark driver with an MDZ-enabled dump path (Table VII).

``run_lj_benchmark`` integrates the LAMMPS ``bench/in.lj`` state point
(FCC melt, rho* = 0.8442, T* = 1.44, cutoff 2.5 sigma) with the package's
MD engine and dumps coordinates every ``dump_every`` steps through a
:class:`DumpSink`:

* without MDZ the sink serializes raw float32 coordinates and charges the
  modelled parallel-file-system write time;
* with MDZ the sink feeds snapshots to a
  :class:`~repro.stream.writer.StreamingWriter` — the real in-situ
  pipeline, producing a chunked ``MDZ2`` container — and charges the
  (much smaller) compressed writes as chunks reach the file.  Setting
  ``workers > 1`` fans the per-(buffer, axis) compression jobs across the
  streaming subsystem's process pool.

Compression time is *real* measured time; only the PFS write is modelled
(bytes / bandwidth), because this reproduction has no parallel file system
— the substitution is documented in DESIGN.md.  The paper's conclusion —
output share shrinks at high dump rates, total runtime unchanged — emerges
from the same trade-off.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..core.config import MDZConfig
from ..md.lattice import fcc_lattice
from ..md.simulation import MDSimulation, SimulationReport
from ..stream.writer import StreamingWriter

#: Modelled per-node parallel-file-system write bandwidth (bytes/s).
#:
#: The value is *scaled to this substrate*, preserving the dimensionless
#: ratio that drives Table VII.  From the paper's 64K-atom F=100 row, raw
#: dumping sustains ~18 MB/s per node while MDZ processes ~130 MB/s — the
#: compressor is ~7x faster than the file system.  Our Python MDZ runs at
#: ~4 MB/s, so the modelled PFS is set 7x slower than that; the resulting
#: output-share behaviour (MDZ wins at high dump rates, negligible at low
#: ones) is then directly comparable to the paper's.
PFS_BANDWIDTH = 0.6e6

#: LAMMPS LJ benchmark state point.
LJ_DENSITY = 0.8442
LJ_TEMPERATURE = 1.44


@dataclass
class DumpSink:
    """Dump consumer: raw writes or the in-situ streaming pipeline.

    Parameters
    ----------
    use_mdz:
        Pipe snapshots through the MDZ streaming writer before the
        (modelled) PFS write.
    buffer_size:
        Snapshots buffered per compression call (the paper's BS).
    epsilon:
        Value-range-relative error bound for the MDZ path (resolved
        against the first buffer of each axis).
    pfs_bandwidth:
        Modelled write bandwidth in bytes/s.
    workers:
        Worker processes for the streaming compression pool (0 = serial).
    output:
        Destination for the ``MDZ2`` container; defaults to an in-memory
        sink, pass a path to keep the compressed trajectory.
    """

    use_mdz: bool
    buffer_size: int = 10
    epsilon: float = 1e-3
    pfs_bandwidth: float = PFS_BANDWIDTH
    workers: int = 0
    output: str | Path | BinaryIO | None = None
    raw_bytes: int = 0
    written_bytes: int = 0
    compress_seconds: float = 0.0
    _writer: StreamingWriter | None = field(default=None, repr=False)

    def consume(self, step: int, positions: np.ndarray) -> float:
        """Dump one snapshot; returns modelled write seconds to charge."""
        snapshot = positions.astype(np.float32)
        self.raw_bytes += snapshot.nbytes
        if not self.use_mdz:
            self.written_bytes += snapshot.nbytes
            return snapshot.nbytes / self.pfs_bandwidth
        if self._writer is None:
            self._writer = StreamingWriter(
                self.output if self.output is not None else io.BytesIO(),
                MDZConfig(
                    error_bound=self.epsilon,
                    buffer_size=self.buffer_size,
                    method="adp",
                ),
                workers=self.workers,
            )
        before = self._writer.stats.bytes_written
        self._writer.feed(snapshot.astype(np.float64))
        return self._charge(before)

    def finish(self) -> float:
        """Seal the container; returns modelled write seconds to charge."""
        if not (self.use_mdz and self._writer is not None):
            return 0.0
        before = self._writer.stats.bytes_written
        self._writer.close()
        return self._charge(before)

    @property
    def compression_ratio(self) -> float:
        """Achieved raw/written ratio (1.0 for the raw path)."""
        return self.raw_bytes / max(self.written_bytes, 1)

    def _charge(self, before: int) -> float:
        """Account for container bytes that just reached the file."""
        stats = self._writer.stats
        self.compress_seconds = stats.compress_seconds
        delta = stats.bytes_written - before
        self.written_bytes += delta
        return delta / self.pfs_bandwidth


@dataclass
class LJBenchmarkResult:
    """Outcome of one Table VII row."""

    n_atoms: int
    dump_every: int
    use_mdz: bool
    report: SimulationReport
    sink: DumpSink

    @property
    def duration_seconds(self) -> float:
        """Total accounted runtime."""
        return self.report.total_seconds

    def row(self) -> dict[str, float]:
        """Table VII row: duration plus Comp/Comm/Output fractions."""
        fractions = self.report.fractions()
        return {
            "atoms": self.n_atoms,
            "dump_every": self.dump_every,
            "mdz": self.use_mdz,
            "duration_s": self.duration_seconds,
            "comp": fractions["comp"],
            "comm": fractions["comm"],
            "output": fractions["output"],
            "output_cr": self.sink.compression_ratio,
        }


def run_lj_benchmark(
    cells: int,
    steps: int,
    dump_every: int,
    use_mdz: bool,
    buffer_size: int = 10,
    epsilon: float = 1e-3,
    equilibration: int = 40,
    seed: int = 11,
    pfs_bandwidth: float = PFS_BANDWIDTH,
) -> LJBenchmarkResult:
    """Run one LJ benchmark configuration (one Table VII row).

    ``cells`` is the FCC cell count per dimension (atoms = 4 * cells^3).
    """
    a = (4.0 / LJ_DENSITY) ** (1.0 / 3.0)
    lattice = fcc_lattice((cells,) * 3, a)
    sim = MDSimulation(
        lattice.positions,
        lattice.box,
        temperature=LJ_TEMPERATURE,
        dt=0.005,
        seed=seed,
    )
    sim.run(equilibration)
    sink = DumpSink(
        use_mdz=use_mdz,
        buffer_size=buffer_size,
        epsilon=epsilon,
        pfs_bandwidth=pfs_bandwidth,
    )
    report = SimulationReport()
    sim.run(
        steps,
        dump_every=dump_every,
        dump_callback=sink.consume,
        report=report,
    )
    report.output_seconds += sink.finish()
    report.dumped_bytes = sink.written_bytes
    return LJBenchmarkResult(
        n_atoms=sim.n_atoms,
        dump_every=dump_every,
        use_mdz=use_mdz,
        report=report,
        sink=sink,
    )
