"""Mini-LAMMPS integration (Section VII-D, Table VII).

The paper integrates MDZ into LAMMPS's dump subsystem and measures the
runtime breakdown of the Lennard-Jones benchmark with and without in-situ
compression.  :mod:`repro.lammps.driver` reproduces the experiment against
this package's MD engine: the dump path either writes raw coordinates to a
modelled parallel file system or pipes them through MDZ first;
:mod:`repro.lammps.breakdown` formats the Comp/Comm/Output rows.
"""

from .driver import DumpSink, LJBenchmarkResult, run_lj_benchmark
from .breakdown import breakdown_row, format_breakdown_table

__all__ = [
    "DumpSink",
    "LJBenchmarkResult",
    "breakdown_row",
    "format_breakdown_table",
    "run_lj_benchmark",
]
