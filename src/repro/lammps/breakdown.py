"""Formatting of the Table VII runtime-breakdown rows."""

from __future__ import annotations

from .driver import LJBenchmarkResult


def breakdown_row(result: LJBenchmarkResult) -> str:
    """One formatted Table VII row."""
    row = result.row()
    option = "w MDZ  " if row["mdz"] else "w/o MDZ"
    return (
        f"F={row['dump_every']:>5d}  atoms={row['atoms']:>7d}  {option}  "
        f"duration={row['duration_s']:7.2f}s  "
        f"comp={row['comp']:6.1%}  comm={row['comm']:6.1%}  "
        f"output={row['output']:7.2%}  output-CR={row['output_cr']:6.1f}"
    )


def format_breakdown_table(results: list[LJBenchmarkResult]) -> str:
    """The full Table VII, one line per configuration."""
    header = (
        "Runtime breakdown of the LJ benchmark "
        "(F: dump frequency; output includes compression + modelled PFS write)"
    )
    return "\n".join([header] + [breakdown_row(r) for r in results])
