"""SZ-Interp baseline: dynamic spline-interpolation prediction.

The paper's introduction (Section II) notes that even state-of-the-art
general scientific compressors like SZ-Interp [Zhao et al., ICDE 2021 —
reference 31, the authors' own prior work] are sub-optimal on MD data
because they are designed for smooth structured meshes.  This module
implements that compressor so the claim can be measured
(``benchmarks/test_ext_sz_interp.py``).

Algorithm: a multi-level binary cascade along the time axis.  Anchor
snapshots at stride ``2^L`` are coded first (the stride-top level via
previous-anchor prediction); each subsequent level halves the stride and
predicts the midpoints from the already-reconstructed neighbours with
either **linear** or **cubic** (4-point, Catmull-Rom-like) interpolation —
per batch, both are tried and the better one kept, which is the "dynamic"
part of the original.  Residuals go through the standard SZ quantize /
Huffman / DEFLATE stages.

All predictions use *reconstructed* values, and each level's predictions
depend only on previously-decoded levels, so the whole cascade is
vectorized level by level while staying exactly error-bounded.
"""

from __future__ import annotations

import numpy as np

from ..baselines.api import Compressor, register_compressor
from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from .lossless import lossless_compress, lossless_decompress
from .pipeline import decode_int_stream, encode_int_stream
from .predictors import lorenzo_1d_codes, lorenzo_1d_reconstruct
from .quantizer import DEFAULT_SCALE, LinearQuantizer


def level_plan(t_count: int) -> list[tuple[int, np.ndarray, bool]]:
    """The interpolation cascade: [(stride, indices, is_anchor), ...].

    Index 0 is the root; every other index appears in exactly one level.
    Anchor levels (``is_anchor``) carry one coarse snapshot each, predicted
    from the previous anchor; midpoint levels interpolate between the
    already-reconstructed neighbours at ``i - s`` and ``i + s``.
    """
    if t_count <= 1:
        return []
    stride = 1
    while stride * 2 < t_count:
        stride *= 2
    plan: list[tuple[int, np.ndarray, bool]] = []
    # Coarsest pass: anchors at multiples of `stride` beyond the root.
    # Each coarse anchor is its own level (it is predicted from the
    # previous anchor, which must already be reconstructed).
    for anchor in range(stride, t_count, stride):
        plan.append((stride, np.array([anchor]), True))
    while stride > 1:
        half = stride // 2
        mids = np.arange(half, t_count, stride)
        mids = mids[mids % stride == half]
        if mids.size:
            plan.append((half, mids, False))
        stride = half
    return plan


def interpolate(
    recon: np.ndarray, idx: np.ndarray, stride: int, order: str, is_anchor: bool
) -> np.ndarray:
    """Predictions for snapshots ``idx`` from reconstructed neighbours."""
    t_count = recon.shape[0]
    if is_anchor:
        # Coarsest anchors: predict from the previous anchor.
        return recon[idx - stride]
    left = recon[idx - stride]
    right_idx = np.minimum(idx + stride, t_count - 1)
    usable = idx + stride < t_count
    right = np.where(usable[:, None], recon[right_idx], left)
    if order == "linear":
        return 0.5 * (left + right)
    # Cubic: use two extra anchors at +-3*stride where available.
    far_left_idx = np.maximum(idx - 3 * stride, 0)
    far_right_idx = np.minimum(idx + 3 * stride, t_count - 1)
    have_fl = idx - 3 * stride >= 0
    have_fr = (idx + 3 * stride < t_count) & usable
    cubic_ok = have_fl & have_fr
    far_left = recon[far_left_idx]
    far_right = recon[far_right_idx]
    cubic = (-far_left + 9.0 * left + 9.0 * right - far_right) / 16.0
    linear = 0.5 * (left + right)
    return np.where(cubic_ok[:, None], cubic, linear)


def reconstruct_level(block, pred, quantizer) -> np.ndarray:
    """Apply a level's decoded residual block on top of its predictions.

    Out-of-scope points (marker codes) are restored from the absolute
    varint side channel, anchored at 0.0 — the same convention the
    encoder used when it quantized them with ``grid_levels(batch, 0.0)``.
    """
    values = pred + block.codes * quantizer.bin_width
    mask = block.codes == block.marker
    n_mask = int(mask.sum())
    if n_mask != block.wide.size:
        raise DecompressionError(
            "interp out-of-scope mismatch "
            f"({n_mask} markers vs {block.wide.size} literals)"
        )
    if n_mask:
        values_t = values.T
        values_t[mask.T] = quantizer.dequantize_levels(block.wide, 0.0)
        values = values_t.T
    return values


class SZInterpCompressor(Compressor):
    """Dynamic spline-interpolation compressor along the time axis."""

    name = "sz-interp"
    is_lossless = False

    def __init__(self, scale: int = DEFAULT_SCALE) -> None:
        self.scale = scale

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        candidates = {}
        for order in ("linear", "cubic"):
            candidates[order] = self._encode(batch, order)
        best = min(candidates, key=lambda k: len(candidates[k]))
        writer = BlobWriter()
        writer.write_json({"order": best})
        writer.write_bytes(candidates[best])
        return lossless_compress(writer.getvalue())

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        order = str(reader.read_json()["order"])
        return self._decode(reader.read_bytes(), order)

    # -- internals ------------------------------------------------------

    def _encode(self, batch: np.ndarray, order: str) -> bytes:
        quantizer = LinearQuantizer(self.error_bound, self.scale)
        t_count, n = batch.shape
        writer = BlobWriter()
        writer.write_json({"shape": [t_count, n], "eb": self.error_bound,
                           "scale": self.scale})
        anchor = float(batch[0, 0])
        root = lorenzo_1d_codes(batch[0], quantizer, anchor)
        writer.write_json({"anchor": anchor})
        writer.write_bytes(encode_int_stream(root, "C",
                                             alphabet_hint=self.scale + 1))
        recon = np.zeros_like(batch)
        recon[0] = lorenzo_1d_reconstruct(root, quantizer, anchor)
        for stride, idx, is_anchor in level_plan(t_count):
            pred = interpolate(recon, idx, stride, order, is_anchor)
            codes = np.rint((batch[idx] - pred) / quantizer.bin_width).astype(
                np.int64
            )
            absolute = quantizer.grid_levels(batch[idx], 0.0)
            block = quantizer.split(codes, absolute, order="F")
            writer.write_bytes(
                encode_int_stream(block, "F", alphabet_hint=self.scale + 1)
            )
            recon[idx] = reconstruct_level(block, pred, quantizer)
        return writer.getvalue()

    def _decode(self, payload: bytes, order: str) -> np.ndarray:
        reader = BlobReader(payload)
        meta = reader.read_json()
        t_count, n = (int(x) for x in meta["shape"])
        quantizer = LinearQuantizer(float(meta["eb"]), int(meta["scale"]))
        anchor = float(reader.read_json()["anchor"])
        root = decode_int_stream(reader.read_bytes())
        recon = np.zeros((t_count, n))
        recon[0] = lorenzo_1d_reconstruct(root, quantizer, anchor)
        for stride, idx, is_anchor in level_plan(t_count):
            block = decode_int_stream(reader.read_bytes())
            pred = interpolate(recon, idx, stride, order, is_anchor)
            recon[idx] = reconstruct_level(block, pred, quantizer)
        return recon


register_compressor("sz-interp", SZInterpCompressor)
