"""Bit-level stream I/O with vectorized helpers.

Two layers are provided:

* :class:`BitWriter` / :class:`BitReader` — scalar bit streams used by the
  baseline coders (FPC, Gorilla, ZFP-like) where code layout is inherently
  sequential.
* :func:`pack_codes` / :func:`unpack_codes` — fully vectorized packing of
  per-symbol variable-length codes, used by the Huffman encoder where the
  (code, length) pairs for the whole symbol array are known up front.

Also included are LEB128 varints (:func:`write_varint` and friends) and the
zigzag mapping between signed and unsigned integers that several integer
coders in this package share.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError


class BitWriter:
    """Appends individual bit fields to a growing byte buffer (MSB first)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0  # pending bits, left-aligned in an int
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the lowest ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        value &= (1 << nbits) - 1
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._bytes.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write(bit & 1, 1)

    def getvalue(self) -> bytes:
        """Return the stream, zero-padding the final partial byte."""
        out = bytes(self._bytes)
        if self._nbits:
            out += bytes([(self._acc << (8 - self._nbits)) & 0xFF])
        return out

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._bytes) + self._nbits


class BitReader:
    """Reads bit fields from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit cursor

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits (MSB first) and return them as an int."""
        if nbits == 0:
            return 0
        end = self._pos + nbits
        if end > 8 * len(self._data):
            raise DecompressionError("bit stream exhausted")
        value = 0
        pos = self._pos
        data = self._data
        remaining = nbits
        while remaining > 0:
            byte_idx, bit_idx = divmod(pos, 8)
            take = min(8 - bit_idx, remaining)
            chunk = data[byte_idx] >> (8 - bit_idx - take)
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    @property
    def bits_left(self) -> int:
        """Number of unread bits (includes any trailing padding)."""
        return 8 * len(self._data) - self._pos


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2... -> 0,1,2,3,4..."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(
        np.int64
    )


def encode_varints(values: np.ndarray) -> bytes:
    """LEB128-encode an array of unsigned integers (vectorized).

    Every value is split into 7-bit groups, little-endian, with the high bit
    of each byte marking continuation.  The whole array is processed with
    numpy; no per-element Python loop is involved.
    """
    u = np.asarray(values, dtype=np.uint64)
    if u.size == 0:
        return b""
    # Number of 7-bit groups per value (at least one).
    nbits = np.maximum(1, 64 - clz64(u))
    ngroups = (nbits + 6) // 7
    total = int(ngroups.sum())
    out = np.empty(total, dtype=np.uint8)
    offsets = np.concatenate(([0], np.cumsum(ngroups)[:-1]))
    max_groups = int(ngroups.max())
    shifted = u.copy()
    for g in range(max_groups):
        active = ngroups > g
        if not active.any():
            break
        idx = offsets[active] + g
        byte = (shifted[active] & np.uint64(0x7F)).astype(np.uint8)
        more = (ngroups[active] - 1) > g
        out[idx] = byte | (more.astype(np.uint8) << 7)
        shifted[active] >>= np.uint64(7)
    return out.tobytes()


def varint_size(values: np.ndarray) -> int:
    """Exact byte length of ``encode_varints(values)`` without encoding.

    One byte per 7-bit group; pure array arithmetic, so sizing a side
    channel for an estimate costs a fraction of materializing it.
    """
    u = np.asarray(values, dtype=np.uint64)
    if u.size == 0:
        return 0
    nbits = np.maximum(1, 64 - clz64(u))
    return int(((nbits + 6) // 7).sum())


def decode_varints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` LEB128 varints from ``data`` (vectorized)."""
    raw = np.frombuffer(data, dtype=np.uint8)
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    is_last = (raw & 0x80) == 0
    ends = np.flatnonzero(is_last)
    if ends.size < count:
        raise DecompressionError("varint stream truncated")
    ends = ends[:count]
    starts = np.concatenate(([0], ends[:-1] + 1))
    lengths = ends - starts + 1
    if (lengths > 10).any():
        raise DecompressionError("varint longer than 64 bits")
    values = np.zeros(count, dtype=np.uint64)
    max_len = int(lengths.max())
    for g in range(max_len):
        active = lengths > g
        idx = starts[active] + g
        values[active] |= (raw[idx] & np.uint64(0x7F)).astype(np.uint64) << np.uint64(
            7 * g
        )
    return values


def clz64(u: np.ndarray) -> np.ndarray:
    """Count leading zeros of uint64 values (vectorized).

    Implemented with one ``frexp`` call: the float64 exponent of ``u`` is
    the bit length, except that rounding to 53 bits of mantissa can push a
    value just below ``2**k`` up to exactly ``2**k`` (overstating the bit
    length by one).  A single shift test detects and undoes that, so the
    result is exact over the full uint64 range — including ``2**64 - 1``,
    which rounds to ``2**64`` (exponent 65, clamped before the check).
    """
    u = np.asarray(u).astype(np.uint64)
    _, exponent = np.frexp(u.astype(np.float64))
    bit_length = np.minimum(exponent.astype(np.int64), 64)
    shift = np.where(bit_length > 0, bit_length - 1, 0).astype(np.uint64)
    overshoot = (bit_length > 0) & ((u >> shift) == 0)
    return 64 - (bit_length - overshoot.astype(np.int64))


#: Symbols per chunk in :func:`pack_codes`.  Bounds the transient
#: per-symbol work arrays (a handful of uint64/int64 vectors of this
#: length, ~50 MB at 4 Mi symbols) no matter how large the input is.
PACK_CHUNK = 1 << 22


def _merge_pairs(
    codes: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate adjacent (code, length) pairs into single wider codes.

    Bit-string concatenation is associative, so replacing symbols
    ``2i, 2i+1`` with ``(code[2i] << len[2i+1]) | code[2i+1]`` leaves the
    packed output unchanged while halving the number of elements every
    later stage has to touch.  Callers must guarantee the merged length
    fits 64 bits.
    """
    if codes.size % 2:
        codes = np.append(codes, np.uint64(0))
        lengths = np.append(lengths, np.int64(0))
    merged = (codes[0::2] << lengths[1::2].astype(np.uint64)) | codes[1::2]
    return merged, lengths[0::2] + lengths[1::2]


def _place_codes(
    words: np.ndarray, codes: np.ndarray, lengths: np.ndarray, base_bit: int
) -> None:
    """OR ``codes`` (< 64 bits each, pre-masked) into the 64-bit word
    array at consecutive bit offsets starting at ``base_bit``.

    Each code lands in at most two words (MSB-first).  Per-word
    contributions never share bits, so the segmented OR over each word's
    contributions equals a segmented *sum* — computed as a difference of
    the running cumulative sum (exact even when the modular cumsum wraps),
    which avoids the much slower ``ufunc.reduceat``/``ufunc.at`` paths.
    """
    ends = np.cumsum(lengths) + base_bit
    offsets = ends - lengths
    word_idx = offsets >> 6
    # Trailing zero-length codes sit at offset == total bits, which lands
    # one word past the end when total is a multiple of 64.  They carry no
    # bits, so clamping keeps indexing valid (and word_idx monotonic).
    np.minimum(word_idx, np.int64(words.size - 1), out=word_idx)
    bit_end = (offsets & 63) + lengths  # <= 63 + 64
    fits = bit_end <= 64
    shift = np.where(fits, 64 - bit_end, bit_end - 64)
    np.minimum(shift, 63, out=shift)  # len==0 at bit 0: harmless 0 << 63
    ushift = shift.astype(np.uint64)
    w1 = np.where(fits, codes << ushift, codes >> ushift)
    csum = np.cumsum(w1)
    starts = np.flatnonzero(np.diff(word_idx, prepend=np.int64(-1)))
    seg_ends = np.append(starts[1:] - 1, w1.size - 1)
    seg = csum[seg_ends]
    seg[1:] -= csum[starts[1:] - 1]
    words[word_idx[starts]] |= seg
    spill = np.flatnonzero(~fits)
    if spill.size:
        # Spill words are strictly increasing (a code that crosses a word
        # boundary pushes the next code past it), so plain |= is safe.
        words[word_idx[spill] + 1] |= codes[spill] << (
            np.uint64(128) - bit_end[spill].astype(np.uint64)
        )


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> bytes:
    """Pack per-symbol variable-length codes into a contiguous bit string.

    Parameters
    ----------
    codes:
        Unsigned integer code values, one per symbol, right-aligned.
    lengths:
        Bit length of each code; must satisfy ``0 <= length <= 57``.  A
        zero-length entry contributes no bits (the multi-stream Huffman
        framer uses them as byte-alignment placeholders).

    The packer works on cumulative bit offsets: adjacent codes are first
    merged pairwise while the widest merged code still fits 64 bits
    (Huffman codebooks are <= 16 bits, so typical inputs shrink 4x), then
    every merged code is ORed into a 64-bit word array at its cumulative
    offset in one vectorized pass (:func:`_place_codes`).  Input is
    processed in :data:`PACK_CHUNK`-symbol chunks so transient memory is
    bounded regardless of array size.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.size == 0:
        return b""
    if int(lengths.min()) < 0:
        raise ValueError("code lengths must be non-negative")
    max_len = int(lengths.max())
    if max_len > 57:
        raise ValueError("pack_codes supports code lengths up to 57 bits")
    total = int(lengths.sum())
    if total == 0:
        return b""
    words = np.zeros((total + 63) >> 6, dtype=np.uint64)
    base_bit = 0
    for i in range(0, codes.size, PACK_CHUNK):
        chunk_codes = codes[i : i + PACK_CHUNK]
        chunk_lens = lengths[i : i + PACK_CHUNK]
        ulen = chunk_lens.astype(np.uint64)
        masked = chunk_codes & ((np.uint64(1) << ulen) - np.uint64(1))
        chunk_bits = int(chunk_lens.sum())
        merged_max = max_len
        while merged_max <= 32 and masked.size > 1:
            masked, chunk_lens = _merge_pairs(masked, chunk_lens)
            merged_max *= 2
        _place_codes(words, masked, chunk_lens, base_bit)
        base_bit += chunk_bits
    return words.astype(">u8").tobytes()[: (total + 7) >> 3]


def unpack_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into an array of bits (uint8, MSB first)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))
