"""Bit-level stream I/O with vectorized helpers.

Two layers are provided:

* :class:`BitWriter` / :class:`BitReader` — scalar bit streams used by the
  baseline coders (FPC, Gorilla, ZFP-like) where code layout is inherently
  sequential.
* :func:`pack_codes` / :func:`unpack_codes` — fully vectorized packing of
  per-symbol variable-length codes, used by the Huffman encoder where the
  (code, length) pairs for the whole symbol array are known up front.

Also included are LEB128 varints (:func:`write_varint` and friends) and the
zigzag mapping between signed and unsigned integers that several integer
coders in this package share.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError


class BitWriter:
    """Appends individual bit fields to a growing byte buffer (MSB first)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0  # pending bits, left-aligned in an int
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the lowest ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        value &= (1 << nbits) - 1
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._bytes.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write(bit & 1, 1)

    def getvalue(self) -> bytes:
        """Return the stream, zero-padding the final partial byte."""
        out = bytes(self._bytes)
        if self._nbits:
            out += bytes([(self._acc << (8 - self._nbits)) & 0xFF])
        return out

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._bytes) + self._nbits


class BitReader:
    """Reads bit fields from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit cursor

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits (MSB first) and return them as an int."""
        if nbits == 0:
            return 0
        end = self._pos + nbits
        if end > 8 * len(self._data):
            raise DecompressionError("bit stream exhausted")
        value = 0
        pos = self._pos
        data = self._data
        remaining = nbits
        while remaining > 0:
            byte_idx, bit_idx = divmod(pos, 8)
            take = min(8 - bit_idx, remaining)
            chunk = data[byte_idx] >> (8 - bit_idx - take)
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    @property
    def bits_left(self) -> int:
        """Number of unread bits (includes any trailing padding)."""
        return 8 * len(self._data) - self._pos


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2... -> 0,1,2,3,4..."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(
        np.int64
    )


def encode_varints(values: np.ndarray) -> bytes:
    """LEB128-encode an array of unsigned integers (vectorized).

    Every value is split into 7-bit groups, little-endian, with the high bit
    of each byte marking continuation.  The whole array is processed with
    numpy; no per-element Python loop is involved.
    """
    u = np.asarray(values, dtype=np.uint64)
    if u.size == 0:
        return b""
    # Number of 7-bit groups per value (at least one).
    nbits = np.maximum(1, 64 - clz64(u))
    ngroups = (nbits + 6) // 7
    total = int(ngroups.sum())
    out = np.empty(total, dtype=np.uint8)
    offsets = np.concatenate(([0], np.cumsum(ngroups)[:-1]))
    max_groups = int(ngroups.max())
    shifted = u.copy()
    for g in range(max_groups):
        active = ngroups > g
        if not active.any():
            break
        idx = offsets[active] + g
        byte = (shifted[active] & np.uint64(0x7F)).astype(np.uint8)
        more = (ngroups[active] - 1) > g
        out[idx] = byte | (more.astype(np.uint8) << 7)
        shifted[active] >>= np.uint64(7)
    return out.tobytes()


def decode_varints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` LEB128 varints from ``data`` (vectorized)."""
    raw = np.frombuffer(data, dtype=np.uint8)
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    is_last = (raw & 0x80) == 0
    ends = np.flatnonzero(is_last)
    if ends.size < count:
        raise DecompressionError("varint stream truncated")
    ends = ends[:count]
    starts = np.concatenate(([0], ends[:-1] + 1))
    lengths = ends - starts + 1
    if (lengths > 10).any():
        raise DecompressionError("varint longer than 64 bits")
    values = np.zeros(count, dtype=np.uint64)
    max_len = int(lengths.max())
    for g in range(max_len):
        active = lengths > g
        idx = starts[active] + g
        values[active] |= (raw[idx] & np.uint64(0x7F)).astype(np.uint64) << np.uint64(
            7 * g
        )
    return values


def clz64(u: np.ndarray) -> np.ndarray:
    """Count leading zeros of uint64 values (vectorized).

    Implemented with one ``frexp`` call: the float64 exponent of ``u`` is
    the bit length, except that rounding to 53 bits of mantissa can push a
    value just below ``2**k`` up to exactly ``2**k`` (overstating the bit
    length by one).  A single shift test detects and undoes that, so the
    result is exact over the full uint64 range — including ``2**64 - 1``,
    which rounds to ``2**64`` (exponent 65, clamped before the check).
    """
    u = np.asarray(u).astype(np.uint64)
    _, exponent = np.frexp(u.astype(np.float64))
    bit_length = np.minimum(exponent.astype(np.int64), 64)
    shift = np.where(bit_length > 0, bit_length - 1, 0).astype(np.uint64)
    overshoot = (bit_length > 0) & ((u >> shift) == 0)
    return 64 - (bit_length - overshoot.astype(np.int64))


#: Symbols per chunk in :func:`pack_codes`.  Bounds the transient
#: ``chunk x max_len`` bit-expansion matrix (~8 MB at 64 Ki symbols and
#: 16-bit codes) no matter how large the input array is.
PACK_CHUNK = 1 << 16


def _code_bits(codes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand one chunk of (code, length) pairs into a flat 0/1 bit array."""
    max_len = int(lengths.max())
    if max_len == 0:
        return np.empty(0, dtype=np.uint8)
    # bit k of symbol i (MSB first within the code) lives at column
    # max_len - lengths[i] + k ... simpler: left-align codes to max_len.
    aligned = codes << (max_len - lengths).astype(np.uint64)
    cols = np.arange(max_len, dtype=np.uint64)
    bits = (aligned[:, None] >> (np.uint64(max_len - 1) - cols)[None, :]) & np.uint64(1)
    valid = cols[None, :] < lengths[:, None].astype(np.uint64)
    return bits[valid].astype(np.uint8)


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> bytes:
    """Pack per-symbol variable-length codes into a contiguous bit string.

    Parameters
    ----------
    codes:
        Unsigned integer code values, one per symbol, right-aligned.
    lengths:
        Bit length of each code; must satisfy ``0 <= length <= 57``.  A
        zero-length entry contributes no bits (the multi-stream Huffman
        framer uses them as byte-alignment placeholders).

    The implementation expands codes into individual bits with numpy
    broadcasting and compacts them with :func:`numpy.packbits`, processed
    in :data:`PACK_CHUNK`-symbol chunks so the bit-expansion temporary is
    bounded regardless of array size.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.size == 0:
        return b""
    if int(lengths.min()) < 0:
        raise ValueError("code lengths must be non-negative")
    if int(lengths.max()) > 57:
        raise ValueError("pack_codes supports code lengths up to 57 bits")
    if codes.size <= PACK_CHUNK:
        return np.packbits(_code_bits(codes, lengths)).tobytes()
    pieces = [
        _code_bits(codes[i : i + PACK_CHUNK], lengths[i : i + PACK_CHUNK])
        for i in range(0, codes.size, PACK_CHUNK)
    ]
    return np.packbits(np.concatenate(pieces)).tobytes()


def unpack_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into an array of bits (uint8, MSB first)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))
