"""Prediction stages for the SZ pipeline, in grid-anchored form.

Every predictor here is *exact*: the emitted codes are identical to what a
sequential encoder feeding reconstructed values back into the predictor
would produce.  The key identity is ``round(x - n) == round(x) - n`` for
integer ``n``: expressing each value as an absolute grid level
``s = round((d - anchor) / bin_width)`` makes the reconstruction
``anchor + s * bin_width`` independent of the coding history, so

* the 1D Lorenzo chain code is simply ``diff(s)``,
* the 2D Lorenzo code is the second mixed difference of ``s``,
* the time-wise chain code is ``diff(s, axis=time)``,

all computable with vectorized numpy while preserving the error bound at
every point (see :meth:`repro.sz.quantizer.LinearQuantizer.grid_levels`).

Out-of-scope codes are replaced by a marker and their absolute level stored
in the side channel; reconstruction handles the resets (vectorized for
chains, raster-order rectangle fixes for 2D Lorenzo).

Each predictor also exposes a fused ``*_encode`` kernel returning
``(block, reconstruction)`` in one pass.  On the encode side the absolute
grid levels ``s`` are already in hand, and the decoder's reconstruction is
*provably* ``anchor + s * bin_width`` (chains rebuild exact level
differences between resets, and resets restore the stored level verbatim),
so the fused kernels skip the ``chain_reconstruct`` /
``merge_independent`` replay entirely — the quantize, predict, residual,
and reconstruction stages share a single pass over the data with the
out-of-scope mask computed once.
"""

from __future__ import annotations

import numpy as np

from .quantizer import LinearQuantizer, QuantizedBlock


# ---------------------------------------------------------------------------
# 1D Lorenzo (previous-neighbour prediction within a snapshot)
# ---------------------------------------------------------------------------

def lorenzo_1d_codes(
    data: np.ndarray, quantizer: LinearQuantizer, anchor: float
) -> QuantizedBlock:
    """Encode a 1D array with previous-value (Lorenzo order-1) prediction."""
    data = np.asarray(data, dtype=np.float64).ravel()
    s = quantizer.grid_levels(data, anchor)
    codes = np.diff(s, prepend=np.int64(0))
    return quantizer.split(codes, s, order="C")


def lorenzo_1d_encode(
    data: np.ndarray, quantizer: LinearQuantizer, anchor: float
) -> tuple[QuantizedBlock, np.ndarray]:
    """Fused :func:`lorenzo_1d_codes` + exact reconstruction."""
    data = np.asarray(data, dtype=np.float64).ravel()
    s = quantizer.grid_levels(data, anchor)
    codes = np.diff(s, prepend=np.int64(0))
    block, _ = quantizer.split_with_mask(codes, s, order="C")
    return block, quantizer.dequantize_levels(s, anchor)


def lorenzo_1d_reconstruct(
    block: QuantizedBlock, quantizer: LinearQuantizer, anchor: float
) -> np.ndarray:
    """Inverse of :func:`lorenzo_1d_codes`."""
    s = quantizer.chain_reconstruct(block, axis=block.codes.ndim - 1)
    return quantizer.dequantize_levels(s, anchor)


# ---------------------------------------------------------------------------
# 2D Lorenzo (SZ2's 2D mode: snapshot index x particle index)
# ---------------------------------------------------------------------------

def lorenzo_2d_codes(
    data: np.ndarray, quantizer: LinearQuantizer, anchor: float
) -> QuantizedBlock:
    """Encode a 2D array with the order-1 2D Lorenzo predictor.

    Prediction: ``d[i,j] ~ r[i-1,j] + r[i,j-1] - r[i-1,j-1]`` with the
    out-of-grid neighbours treated as level 0 (the anchor).  In grid levels
    the code is the second mixed difference of ``s``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("lorenzo_2d_codes expects a 2D array")
    s = quantizer.grid_levels(data, anchor)
    padded = np.zeros((s.shape[0] + 1, s.shape[1] + 1), dtype=np.int64)
    padded[1:, 1:] = s
    codes = (
        padded[1:, 1:] - padded[:-1, 1:] - padded[1:, :-1] + padded[:-1, :-1]
    )
    return quantizer.split(codes, s, order="C")


def lorenzo_2d_reconstruct(
    block: QuantizedBlock, quantizer: LinearQuantizer, anchor: float
) -> np.ndarray:
    """Inverse of :func:`lorenzo_2d_codes`.

    Marker positions are fixed up in raster order; each fix shifts the
    dependent rectangle, reproducing the sequential decoder exactly.
    """
    codes = block.codes
    mask = codes == block.marker
    plain = np.where(mask, 0, codes)
    s = plain.cumsum(axis=0).cumsum(axis=1)
    if mask.any():
        rows, cols = np.nonzero(mask)
        for a, i, j in zip(block.wide, rows, cols):
            delta = a - s[i, j]
            if delta:
                s[i:, j:] += delta
    return quantizer.dequantize_levels(s, anchor)


# ---------------------------------------------------------------------------
# Time-wise chain prediction (VQT / MT interiors)
# ---------------------------------------------------------------------------

def timewise_codes(
    batch: np.ndarray, quantizer: LinearQuantizer, base: np.ndarray
) -> QuantizedBlock:
    """Encode snapshots ``batch[(T, N)]`` against a reconstructed base.

    Each atom's trajectory is chained: snapshot ``t`` is predicted from the
    reconstruction of snapshot ``t - 1`` (the base vector for ``t = 0``).
    The side channel uses Fortran order so each atom's chain is contiguous.
    """
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim != 2:
        raise ValueError("timewise_codes expects a (T, N) array")
    s = quantizer.grid_levels(batch, np.asarray(base, dtype=np.float64)[None, :])
    codes = np.diff(s, axis=0, prepend=np.zeros((1, s.shape[1]), dtype=np.int64))
    return quantizer.split(codes, s, order="F")


def timewise_encode(
    batch: np.ndarray, quantizer: LinearQuantizer, base: np.ndarray
) -> tuple[QuantizedBlock, np.ndarray]:
    """Fused :func:`timewise_codes` + exact reconstruction."""
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim != 2:
        raise ValueError("timewise_encode expects a (T, N) array")
    anchor = np.asarray(base, dtype=np.float64)[None, :]
    s = quantizer.grid_levels(batch, anchor)
    codes = np.diff(s, axis=0, prepend=np.zeros((1, s.shape[1]), dtype=np.int64))
    block, _ = quantizer.split_with_mask(codes, s, order="F")
    return block, quantizer.dequantize_levels(s, anchor)


def timewise_reconstruct(
    block: QuantizedBlock, quantizer: LinearQuantizer, base: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`timewise_codes`; returns the (T, N) reconstruction."""
    s = quantizer.chain_reconstruct(block, axis=0)
    return quantizer.dequantize_levels(
        s, np.asarray(base, dtype=np.float64)[None, :]
    )


# ---------------------------------------------------------------------------
# Reference (initial-snapshot) prediction — the (T) box of Figure 6
# ---------------------------------------------------------------------------

def reference_codes(
    snapshot: np.ndarray, quantizer: LinearQuantizer, reference: np.ndarray
) -> QuantizedBlock:
    """Encode one snapshot predicted point-wise from a reference snapshot.

    This is MT's *initial-time-based* prediction: the first snapshot of a
    buffer is predicted from the reconstruction of the dataset's snapshot 0,
    exploiting the strong similarity shown in Figure 8.
    """
    snapshot = np.asarray(snapshot, dtype=np.float64).ravel()
    s = quantizer.grid_levels(snapshot, np.asarray(reference, dtype=np.float64))
    return quantizer.split(s, s, order="C")


def reference_encode(
    snapshot: np.ndarray, quantizer: LinearQuantizer, reference: np.ndarray
) -> tuple[QuantizedBlock, np.ndarray]:
    """Fused :func:`reference_codes` + exact reconstruction."""
    snapshot = np.asarray(snapshot, dtype=np.float64).ravel()
    anchor = np.asarray(reference, dtype=np.float64)
    s = quantizer.grid_levels(snapshot, anchor)
    block, _ = quantizer.split_with_mask(s, s, order="C")
    return block, quantizer.dequantize_levels(s, anchor)


def reference_reconstruct(
    block: QuantizedBlock, quantizer: LinearQuantizer, reference: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`reference_codes`."""
    s = quantizer.merge_independent(block)
    return quantizer.dequantize_levels(
        s, np.asarray(reference, dtype=np.float64)
    )
