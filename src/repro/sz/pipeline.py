"""Serialization glue between quantized blocks and byte streams.

This module turns a :class:`~repro.sz.quantizer.QuantizedBlock` into a
self-describing byte blob (Huffman-coded codes plus a varint side channel)
and back.  The trailing dictionary-coder stage is *not* applied here — the
batch assemblers compress the concatenation of all their sections once, as
the SZ framework does (Huffman output, then Zstd/DEFLATE).

The ``layout`` parameter implements the paper's quantization-sequence
optimization (Section VI-C2): ``"C"`` stores codes snapshot-major (Seq-1)
and ``"F"`` particle-major (Seq-2).  Seq-2 groups each particle's codes
from all snapshots of the batch together, handing the dictionary coder the
long stable runs that temporally smooth data produces — worth ~35-40 % of
compression ratio on Helium-B (Table III).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..telemetry import get_recorder
from .bitio import (
    decode_varints,
    encode_varints,
    varint_size,
    zigzag_decode,
    zigzag_encode,
)
from .huffman import HuffmanCodec, estimate_encoded_bytes
from .quantizer import QuantizedBlock


def encode_int_stream(
    block: QuantizedBlock,
    layout: str = "C",
    alphabet_hint: int | None = None,
    streams: int | None = None,
) -> bytes:
    """Serialize a quantized block (codes + out-of-scope literals).

    ``layout`` selects the flattening order of the code array before
    entropy coding: ``"C"`` = Seq-1 (snapshot-major), ``"F"`` = Seq-2
    (particle-major).  ``alphabet_hint`` (typically ``scale + 1``) makes
    the Huffman stage use SZ's dense codebook representation — see
    :meth:`repro.sz.huffman.HuffmanCodec.encode`.  ``streams`` passes the
    H2 sub-stream fan-out through to the Huffman stage (``None`` = auto).
    """
    if layout not in ("C", "F"):
        raise ValueError(f"layout must be 'C' or 'F', got {layout!r}")
    writer = BlobWriter()
    writer.write_json(
        {
            "shape": list(block.codes.shape),
            "marker": int(block.marker),
            "order": block.order,
            "layout": layout,
            "wide_n": int(block.wide.size),
        }
    )
    flat = block.codes.ravel(order=layout)
    writer.write_bytes(
        HuffmanCodec.encode(flat, alphabet_hint=alphabet_hint, streams=streams)
    )
    side = encode_varints(zigzag_encode(block.wide))
    writer.write_bytes(side)
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("sz.oos.points", block.wide.size)
        recorder.count("sz.oos.bytes", len(side))
        # Quality-adjacent signal for the audit plane: the fraction of
        # points that fell outside the quantizer's representable range.
        # A drifting/exploding simulation shows up here long before it
        # hurts ratios enough to notice.
        if block.codes.size:
            recorder.gauge(
                "quality.oos_fraction", block.wide.size / block.codes.size
            )
        recorder.annotate(
            quant_codes=int(block.codes.size),
            oos_points=int(block.wide.size),
            oos_bytes=len(side),
            layout=layout,
        )
    return writer.getvalue()


def estimate_int_stream_bytes(
    block: QuantizedBlock,
    layout: str = "C",
    alphabet_hint: int | None = None,
    streams: int | None = None,
) -> int:
    """Predicted :func:`encode_int_stream` size without serializing.

    The Huffman stage is sized from the code histogram and cached codebook
    (see :func:`~repro.sz.huffman.estimate_encoded_bytes`) and the varint
    side channel from pure bit-length arithmetic; neither depends on the
    flattening order, so the codes are read in their native layout with no
    transposed copy.  Only the JSON/blob framing is approximated.
    """
    return (
        estimate_encoded_bytes(
            block.codes.ravel(), alphabet_hint=alphabet_hint, streams=streams
        )
        + varint_size(zigzag_encode(block.wide))
        + 96  # two JSON headers + section framing
    )


def decode_int_stream(blob: bytes) -> QuantizedBlock:
    """Inverse of :func:`encode_int_stream`."""
    reader = BlobReader(blob)
    meta = reader.read_json()
    shape = tuple(int(x) for x in meta["shape"])
    layout = str(meta.get("layout", "C"))
    if layout not in ("C", "F"):
        raise DecompressionError(f"corrupt layout tag {layout!r}")
    flat = HuffmanCodec.decode(reader.read_bytes())
    codes = flat.reshape(shape, order=layout)
    wide = zigzag_decode(decode_varints(reader.read_bytes(), int(meta["wide_n"])))
    return QuantizedBlock(
        codes=np.ascontiguousarray(codes),
        wide=wide.astype(np.int64),
        marker=int(meta["marker"]),
        order=str(meta["order"]),
    )
