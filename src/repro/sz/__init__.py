"""SZ error-bounded lossy compression framework substrate.

The paper's compressor (Section III-B) builds on the SZ framework
[Di & Cappello 2016; Tao et al. 2017]: prediction, linear-scale quantization,
entropy coding (Huffman), and a trailing dictionary coder (Zstd in the paper,
DEFLATE here).  This subpackage provides each stage as a reusable component
plus the SZ2 baseline compressor assembled from them.
"""

from .bitio import BitReader, BitWriter
from .huffman import HuffmanCodec
from .lossless import available_backends, lossless_compress, lossless_decompress
from .quantizer import LinearQuantizer, QuantizedBlock
from .predictors import (
    lorenzo_1d_codes,
    lorenzo_1d_reconstruct,
    lorenzo_2d_codes,
    lorenzo_2d_reconstruct,
    reference_codes,
    reference_reconstruct,
    timewise_codes,
    timewise_reconstruct,
)
from .pipeline import decode_int_stream, encode_int_stream
from .interp import SZInterpCompressor
from .sz2 import SZ2Compressor

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCodec",
    "LinearQuantizer",
    "QuantizedBlock",
    "SZ2Compressor",
    "SZInterpCompressor",
    "available_backends",
    "decode_int_stream",
    "encode_int_stream",
    "lorenzo_1d_codes",
    "lorenzo_1d_reconstruct",
    "lorenzo_2d_codes",
    "lorenzo_2d_reconstruct",
    "lossless_compress",
    "lossless_decompress",
    "reference_codes",
    "reference_reconstruct",
    "timewise_codes",
    "timewise_reconstruct",
]
