"""Bit-adaptive serialization of quantized blocks (per-region bit depth).

An alternative to the Huffman stage of :mod:`repro.sz.pipeline`: the
flattened code array is cut into fixed-size *regions* and each region is
stored as ``(offset, width)`` plus its codes packed at exactly ``width``
bits per value, where ``width`` is the smallest bit depth that spans the
region's local ``[min, max]`` range.  The idea follows the bit-adaptive
particle-compression approach (arXiv 2404.02826): particle data is
locally homogeneous but globally mixed, so a *per-region* bit depth
beats a single global code table whenever the local code ranges differ —
a Huffman codebook must spend bits distinguishing which regime a symbol
came from, while the region table amortizes that over
:data:`REGION_SIZE` values at once (and a quiet region of constant codes
costs zero payload bits).

The wire layout mirrors :func:`repro.sz.pipeline.encode_int_stream`
(same JSON header fields plus the region geometry, same varint
side channel for out-of-scope literals), so the two are drop-in
alternatives behind the encoder-stage registry
(:data:`repro.core.registry.ENCODERS`).

Packing reuses the vectorized :func:`repro.sz.bitio.pack_codes` kernel
with a uniform per-region length vector; unpacking is a fused gather
over 64-bit big-endian words (:func:`unpack_uniform`), so neither
direction loops over symbols.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..telemetry import get_recorder
from .bitio import (
    decode_varints,
    encode_varints,
    pack_codes,
    varint_size,
    zigzag_decode,
    zigzag_encode,
)
from .quantizer import QuantizedBlock

#: Values per region.  Large enough that the per-region table (one
#: varint offset + one width byte) is noise, small enough that a local
#: regime change lands in its own region.  Stored in the blob header, so
#: this default can move without breaking old archives.
REGION_SIZE = 4096

#: Widths are stored in one byte; codes are int64 offsets from the
#: region minimum, so 57 bits (the :func:`pack_codes` ceiling) bounds
#: the representable spread.  Quantization codes live well below this.
_MAX_WIDTH = 57


def _span_widths(spans: np.ndarray) -> np.ndarray:
    """Per-region bit widths: ``ceil(log2(span + 1))``, vectorized.

    ``np.log2`` is exact on values below ``2**53`` so the floor is safe
    for any quantization-scale-bounded spread (codes never approach it).
    """
    widths = np.zeros(spans.size, dtype=np.int64)
    nz = spans > 0
    widths[nz] = (
        np.floor(np.log2(spans[nz].astype(np.float64))).astype(np.int64) + 1
    )
    return widths


def bitpack_encode(
    block: QuantizedBlock, layout: str = "C", region: int = REGION_SIZE
) -> bytes:
    """Serialize a quantized block with per-region bit depths."""
    if layout not in ("C", "F"):
        raise ValueError(f"layout must be 'C' or 'F', got {layout!r}")
    if region < 1:
        raise ValueError(f"region size must be >= 1, got {region}")
    flat = block.codes.ravel(order=layout).astype(np.int64, copy=False)
    n = int(flat.size)
    n_regions = (n + region - 1) // region
    if n:
        starts = np.arange(0, n, region)
        counts = np.diff(np.r_[starts, n])
        lows = np.minimum.reduceat(flat, starts)
        highs = np.maximum.reduceat(flat, starts)
        widths = _span_widths(highs - lows)
        if int(widths.max(initial=0)) > _MAX_WIDTH:
            raise ValueError(
                f"region code spread needs {int(widths.max())} bits "
                f"(> {_MAX_WIDTH}); codes are not quantization-scale bounded"
            )
        lengths = np.repeat(widths, counts)
        payload = pack_codes(
            (flat - np.repeat(lows, counts)).astype(np.uint64), lengths
        )
    else:
        lows = np.zeros(0, dtype=np.int64)
        widths = np.zeros(0, dtype=np.int64)
        payload = b""
    writer = BlobWriter()
    writer.write_json(
        {
            "shape": list(block.codes.shape),
            "marker": int(block.marker),
            "order": block.order,
            "layout": layout,
            "wide_n": int(block.wide.size),
            "region": int(region),
        }
    )
    writer.write_bytes(np.asarray(widths, dtype=np.uint8).tobytes())
    writer.write_bytes(encode_varints(zigzag_encode(lows)))
    writer.write_bytes(payload)
    side = encode_varints(zigzag_encode(block.wide))
    writer.write_bytes(side)
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("sz.bitpack.regions", int(widths.size))
        recorder.count("sz.bitpack.payload_bytes", len(payload))
        if widths.size:
            recorder.gauge("sz.bitpack.mean_width", float(widths.mean()))
    return writer.getvalue()


def bitpack_estimate(
    block: QuantizedBlock, layout: str = "C", region: int = REGION_SIZE
) -> int:
    """Predicted :func:`bitpack_encode` size without packing a bit.

    Exact for the payload (widths are derived the same way) and the
    region tables; only the JSON/blob framing is approximated.  The
    flattening order does not change any region's min/max when regions
    are re-cut over the same multiset — it does in general, so the codes
    are read in the *requested* layout to stay faithful.
    """
    flat = block.codes.ravel(order=layout).astype(np.int64, copy=False)
    n = int(flat.size)
    if n == 0:
        return 96
    starts = np.arange(0, n, region)
    lows = np.minimum.reduceat(flat, starts)
    highs = np.maximum.reduceat(flat, starts)
    widths = _span_widths(highs - lows)
    counts = np.diff(np.r_[starts, n])
    payload_bits = int((widths * counts).sum())
    return (
        (payload_bits + 7) // 8
        + widths.size  # one width byte per region
        + varint_size(zigzag_encode(lows))
        + varint_size(zigzag_encode(block.wide))
        + 112  # JSON header + section framing
    )


def unpack_uniform(data: bytes, lengths: np.ndarray) -> np.ndarray:
    """Unpack per-symbol bit fields packed by :func:`pack_codes`.

    ``lengths`` gives each symbol's bit width (0..57); zero-width symbols
    decode to 0 and consume no bits.  Vectorized: the byte string is
    viewed as big-endian 64-bit words and every symbol's window is
    gathered with two shifts — no per-symbol Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = int(lengths.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if int(lengths.min()) < 0 or int(lengths.max()) > _MAX_WIDTH:
        raise DecompressionError(
            f"corrupt bitpack widths (range {lengths.min()}..{lengths.max()})"
        )
    total_bits = int(lengths.sum())
    if total_bits > 8 * len(data):
        raise DecompressionError(
            f"bitpack payload exhausted: need {total_bits} bits, "
            f"have {8 * len(data)}"
        )
    if total_bits == 0:
        return np.zeros(n, dtype=np.int64)
    # Pad to whole 64-bit words plus one spill word for the final gather.
    n_words = (total_bits + 63) // 64 + 1
    buf = data[: (total_bits + 7) // 8]
    padded = buf + b"\x00" * (n_words * 8 - len(buf))
    words = np.frombuffer(padded, dtype=">u8").astype(np.uint64)
    offsets = np.concatenate(
        ([0], np.cumsum(lengths)[:-1])
    ).astype(np.uint64)
    w = (offsets >> np.uint64(6)).astype(np.int64)
    b = offsets & np.uint64(63)
    left = words[w] << b
    right = (words[w + 1] >> np.uint64(1)) >> (np.uint64(63) - b)
    window = left | right
    out = np.zeros(n, dtype=np.uint64)
    nz = lengths > 0
    out[nz] = window[nz] >> (np.uint64(64) - lengths[nz].astype(np.uint64))
    return out.astype(np.int64)


def bitpack_decode(blob: bytes) -> QuantizedBlock:
    """Inverse of :func:`bitpack_encode`."""
    reader = BlobReader(blob)
    meta = reader.read_json()
    shape = tuple(int(x) for x in meta["shape"])
    layout = str(meta.get("layout", "C"))
    if layout not in ("C", "F"):
        raise DecompressionError(f"corrupt layout tag {layout!r}")
    region = int(meta["region"])
    if region < 1:
        raise DecompressionError(f"corrupt region size {region}")
    n = 1
    for dim in shape:
        n *= dim
    n_regions = (n + region - 1) // region
    widths = np.frombuffer(reader.read_bytes(), dtype=np.uint8).astype(
        np.int64
    )
    if widths.size != n_regions:
        raise DecompressionError(
            f"bitpack region table mismatch: {widths.size} widths for "
            f"{n_regions} regions"
        )
    lows = zigzag_decode(decode_varints(reader.read_bytes(), n_regions))
    payload = reader.read_bytes()
    if n:
        starts = np.arange(0, n, region)
        counts = np.diff(np.r_[starts, n])
        lengths = np.repeat(widths, counts)
        values = unpack_uniform(payload, lengths)
        flat = values + np.repeat(lows.astype(np.int64), counts)
    else:
        flat = np.zeros(0, dtype=np.int64)
    codes = flat.reshape(shape, order=layout)
    wide = zigzag_decode(
        decode_varints(reader.read_bytes(), int(meta["wide_n"]))
    )
    return QuantizedBlock(
        codes=np.ascontiguousarray(codes),
        wide=wide.astype(np.int64),
        marker=int(meta["marker"]),
        order=str(meta["order"]),
    )
