"""Registry entries for the sz-layer pipeline stages.

Importing this module populates the three stage registries
(:data:`repro.core.registry.PREDICTORS` / ``QUANTIZERS`` / ``ENCODERS``)
with the building blocks the compression members compose.  The factories
are the real runtime callables — members resolve stages through
``PREDICTORS.get(name).factory`` rather than private imports, and
``tools/list_stages.py`` renders the documentation tables from the same
entries, so the docs cannot drift from what the code dispatches.

Encoder stages bundle the three pipeline verbs (``encode`` /
``estimate`` / ``decode``) into one namespace object so a member can
swap its whole entropy backend with a single registry lookup — compare
:data:`HUFFMAN_INT_STREAM` (global Huffman codebook, Seq-1/Seq-2 aware)
with :data:`BITPACK` (per-region bit depths, arXiv 2404.02826 style).
"""

from __future__ import annotations

from types import SimpleNamespace

from ..core.levels import SessionLevelModel
from ..core.registry import ENCODERS, PREDICTORS, QUANTIZERS
from . import bitpack as _bitpack
from . import interp as _interp
from . import pipeline as _pipeline
from .predictors import (
    lorenzo_1d_encode,
    reference_encode,
    timewise_encode,
)
from .quantizer import LinearQuantizer

#: Huffman entropy backend: the original MDZ serialization
#: (:mod:`repro.sz.pipeline`) — one global codebook over the flattened
#: code array, optional H2 sub-stream fan-out, varint side channel.
HUFFMAN_INT_STREAM = SimpleNamespace(
    encode=_pipeline.encode_int_stream,
    estimate=_pipeline.estimate_int_stream_bytes,
    decode=_pipeline.decode_int_stream,
)

#: Bit-adaptive backend: per-region offset + bit-width fixed packing
#: (:mod:`repro.sz.bitpack`).  Same QuantizedBlock in/out contract as
#: the Huffman backend; extra keyword arguments are accepted and
#: ignored so the two are call-compatible behind the registry.
BITPACK = SimpleNamespace(
    encode=lambda block, layout="C", alphabet_hint=None, streams=None: (
        _bitpack.bitpack_encode(block, layout)
    ),
    estimate=lambda block, layout="C", alphabet_hint=None, streams=None: (
        _bitpack.bitpack_estimate(block, layout)
    ),
    decode=_bitpack.bitpack_decode,
)


QUANTIZERS.register(
    "linear",
    LinearQuantizer,
    description=(
        "Grid-anchored linear-scale quantizer: bin width 2*eb, marker "
        "code for out-of-scope points, exact round(x-n)==round(x)-n "
        "identity so chained predictors vectorize"
    ),
    ref="sz/quantizer.py",
)

PREDICTORS.register(
    "level",
    SessionLevelModel,
    description=(
        "MDZ level prediction: k-means-style centroids fitted per "
        "session; each value predicted by its nearest level (adds a "
        "relative level-index stream)"
    ),
    ref="core/levels.py",
)
PREDICTORS.register(
    "timewise",
    timewise_encode,
    description=(
        "Previous-snapshot chain prediction along time (fused "
        "quantize+predict kernel; exact on the quantization grid)"
    ),
    ref="sz/predictors.py",
)
PREDICTORS.register(
    "reference",
    reference_encode,
    description=(
        "First-snapshot reference prediction: codes a snapshot against "
        "the reconstruction of the session's snapshot 0"
    ),
    ref="sz/predictors.py",
)
PREDICTORS.register(
    "lorenzo1d",
    lorenzo_1d_encode,
    description=(
        "1-D Lorenzo (previous-neighbour) prediction along the particle "
        "axis; used for cascade roots with no temporal context"
    ),
    ref="sz/predictors.py",
)
PREDICTORS.register(
    "interp-linear",
    lambda recon, idx, stride, is_anchor: _interp.interpolate(
        recon, idx, stride, "linear", is_anchor
    ),
    description=(
        "SZ3-style midpoint interpolation: predict t from the "
        "reconstructed neighbours at t-s and t+s, 0.5*(l+r)"
    ),
    ref="sz/interp.py",
)
PREDICTORS.register(
    "interp-cubic",
    lambda recon, idx, stride, is_anchor: _interp.interpolate(
        recon, idx, stride, "cubic", is_anchor
    ),
    description=(
        "SZ3-style 4-point cubic spline interpolation "
        "((-fl + 9l + 9r - fr)/16, Catmull-Rom-like); falls back to "
        "linear at the cascade edges"
    ),
    ref="sz/interp.py",
)

ENCODERS.register(
    "huffman-int-stream",
    lambda: HUFFMAN_INT_STREAM,
    description=(
        "Global Huffman codebook over the flattened codes (Seq-1/Seq-2 "
        "layout aware, optional H2 sub-stream fan-out) + varint "
        "out-of-scope side channel"
    ),
    ref="sz/pipeline.py",
)
ENCODERS.register(
    "bitpack",
    lambda: BITPACK,
    description=(
        "Per-region bit-adaptive fixed-width packing: each 4096-value "
        "region stores (min offset, bit width) and packs codes at "
        "exactly that depth"
    ),
    ref="sz/bitpack.py",
)
