"""Trailing lossless (dictionary-coder) stage of the SZ pipeline.

The paper uses Zstandard.  Zstd is unavailable in this offline environment,
so DEFLATE (``zlib``) is the default backend and LZMA/BZ2 are offered as
alternatives; all three are LZ-family dictionary coders playing the same
role: squeezing residual redundancy out of the Huffman streams and rewarding
the Seq-2 reordering (Section VI-C2).  The substitution is documented in
DESIGN.md.

Blobs are framed with a one-byte backend id so decompression is
self-describing.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from ..exceptions import DecompressionError
from ..telemetry import get_recorder

#: backend name -> (id byte, compress fn, decompress fn)
_BACKENDS = {
    "zlib": (1, lambda d, lvl: zlib.compress(d, lvl), zlib.decompress),
    "lzma": (
        2,
        lambda d, lvl: lzma.compress(d, preset=min(lvl, 9)),
        lzma.decompress,
    ),
    "bz2": (3, lambda d, lvl: bz2.compress(d, min(max(lvl, 1), 9)), bz2.decompress),
}
_BY_ID = {ident: (name, comp, dec) for name, (ident, comp, dec) in _BACKENDS.items()}

DEFAULT_BACKEND = "zlib"
DEFAULT_LEVEL = 6


def available_backends() -> list[str]:
    """Names of the lossless backends usable on this system."""
    return sorted(_BACKENDS)


def lossless_compress(
    data: bytes, backend: str = DEFAULT_BACKEND, level: int = DEFAULT_LEVEL
) -> bytes:
    """Compress ``data`` with the chosen dictionary coder.

    The returned blob starts with a backend-id byte so
    :func:`lossless_decompress` needs no side information.
    """
    try:
        ident, comp, _ = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown lossless backend {backend!r}; "
            f"choose from {available_backends()}"
        ) from None
    recorder = get_recorder()
    with recorder.span("sz.lossless.compress", backend=backend), \
            recorder.timer("sz.lossless.compress"):
        blob = bytes([ident]) + comp(data, level)
    if recorder.enabled:
        recorder.count("sz.lossless.bytes_in", len(data))
        recorder.count("sz.lossless.bytes_out", len(blob))
        recorder.annotate(
            lossless_backend=backend,
            lossless_in=len(data),
            lossless_out=len(blob),
        )
    return blob


def lossless_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lossless_compress`."""
    if not blob:
        raise DecompressionError("empty lossless blob")
    ident = blob[0]
    try:
        _, _, dec = _BY_ID[ident]
    except KeyError:
        raise DecompressionError(f"unknown lossless backend id {ident}") from None
    try:
        with get_recorder().timer("sz.lossless.decompress"):
            return dec(blob[1:])
    except Exception as exc:
        raise DecompressionError(f"lossless payload corrupt: {exc}") from exc
