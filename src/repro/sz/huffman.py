"""Canonical Huffman coding for integer symbol streams.

This is the entropy-coding stage of the SZ framework (Section III-B of the
paper): quantization codes are Huffman-encoded before the trailing
dictionary coder.  The implementation here is self-contained:

* code lengths come from a standard heap-built Huffman tree over the symbol
  histogram, with an iterative count-halving pass that limits the maximum
  code length to :data:`MAX_CODE_LENGTH` bits (keeping the decode table
  small and the vectorized encoder within its 57-bit budget);
* codes are assigned canonically, so the decoder only needs the per-symbol
  code *lengths* to rebuild the exact codebook;
* encoding is fully vectorized (numpy gather + bit packing);
* decoding is vectorized too: the "H2" blob format splits the symbol array
  round-robin into N independent byte-aligned sub-streams, and the decoder
  runs a round-based numpy state machine — one flat-table (or canonical
  searchsorted) lookup per round advances all N stream cursors at once, so
  an n-symbol payload decodes in ~n/N vectorized rounds instead of n
  Python-loop steps.  Legacy single-stream blobs keep decoding bit-exactly
  through the original scalar table walker.

Because MDZ re-encodes near-identical symbol alphabets every buffer (one
session per axis, one histogram per snapshot batch), both the encoder
codebook (lengths + canonical codes) and the decoder lookup structures are
memoized in small LRU caches keyed by a histogram digest — see
:func:`clear_codebook_caches` and the ``sz.huffman.cache.hit/miss``
telemetry counters.

The public entry point is :class:`HuffmanCodec` with ``encode`` / ``decode``
class methods that produce and consume self-contained byte blobs (codebook
included).
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import threading
from collections import OrderedDict

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..telemetry import get_recorder
from .bitio import pack_codes

#: Hard cap on Huffman code length produced by *this* encoder.  Chosen so
#: the flat decode table is at most 2^16 entries and the vectorized bit
#: packer never sees codes wider than 57 bits.
MAX_CODE_LENGTH = 16

#: Widest code the decoder accepts from a blob.  Matches the
#: :func:`~repro.sz.bitio.pack_codes` budget: a (possibly foreign) blob
#: claiming longer codes cannot have been produced by this format.
MAX_CODE_WIDTH = 57

#: Cap on the flat ``2**max_len`` decode table.  Codebooks deeper than
#: this (possible only in foreign/corrupt blobs — our encoder stops at
#: :data:`MAX_CODE_LENGTH`) decode through the canonical searchsorted
#: path instead, which needs O(alphabet) memory rather than O(2**depth).
FLAT_TABLE_BITS = 16

#: Minimum sub-stream count of an H2 blob (the base fan-out); the encoder
#: scales the count up with the symbol count so large arrays decode in few
#: vectorized rounds.
DEFAULT_STREAMS = 8

#: Upper bound on H2 sub-streams.  Keeps the per-stream length table small
#: relative to the payload and bounds the decoder's state matrices.
MAX_STREAMS = 2048

#: Target symbols per sub-stream when auto-selecting the H2 fan-out.
_SYMBOLS_PER_STREAM = 256

#: Below this many symbols the blob stays in the legacy single-stream
#: format: the scalar decoder is already fast at this size and the H2
#: framing (per-stream length table) would cost more than it saves.
_H2_MIN_SYMBOLS = 4096


def _tree_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Return Huffman code lengths for strictly-positive ``counts``.

    Uses the standard two-queue/heap construction.  For a single-symbol
    alphabet the length is 1 (a degenerate tree still needs one bit so the
    decoder can count symbols).
    """
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap of (count, tiebreak, node). Leaves are ints; internal nodes are
    # [left, right] lists.  Depth assignment happens in a second pass.
    heap: list[tuple[int, int, object]] = [
        (int(c), i, i) for i, c in enumerate(counts)
    ]
    heapq.heapify(heap)
    tiebreak = n
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (c1 + c2, tiebreak, [n1, n2]))
        tiebreak += 1
    lengths = np.zeros(n, dtype=np.int64)
    # Iterative DFS to assign depths (recursion would overflow on skewed
    # trees with large alphabets).
    stack: list[tuple[object, int]] = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, list):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)
    return lengths


def code_lengths(counts: np.ndarray, max_length: int = MAX_CODE_LENGTH) -> np.ndarray:
    """Huffman code lengths limited to ``max_length`` bits.

    Length limiting uses the pragmatic count-halving heuristic: if the
    optimal tree is deeper than the cap, the histogram is flattened
    (``ceil(count/2)``) and the tree rebuilt.  The result stays a valid
    prefix code and is within a fraction of a bit of optimal for the
    distributions produced by quantization.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if (counts <= 0).any():
        raise ValueError("all symbol counts must be positive")
    work = counts.copy()
    while True:
        lengths = _tree_code_lengths(work)
        if lengths.max() <= max_length:
            return lengths
        work = (work + 1) // 2


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes given per-symbol code lengths.

    Symbols are ranked by (length, symbol index); codes are consecutive
    integers within each length class.  The decoder rebuilds the identical
    assignment from the lengths alone.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = lengths.size
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    order = np.lexsort((np.arange(n), lengths))
    l_sorted = lengths[order]
    max_len = int(l_sorted[-1])
    hist = np.bincount(l_sorted, minlength=max_len + 1)
    # First code of each length class: the standard canonical recurrence
    # ``first[l] = (first[l-1] + hist[l-1]) << 1``.  O(max_len) scalar
    # steps; everything per-symbol below is array arithmetic.
    first = np.zeros(max_len + 1, dtype=np.uint64)
    code = 0
    for length in range(1, max_len + 1):
        code = (code + int(hist[length - 1])) << 1
        first[length] = code
    class_start = np.zeros(max_len + 1, dtype=np.int64)
    np.cumsum(hist[:-1], out=class_start[1:])
    rank = np.arange(n, dtype=np.int64) - class_start[l_sorted]
    codes = np.empty(n, dtype=np.uint64)
    codes[order] = first[l_sorted] + rank.astype(np.uint64)
    return codes


# -- codebook / decode-table caching ------------------------------------


class _LRUCache:
    """Tiny thread-safe LRU keyed by bytes digests, with telemetry.

    ``metric`` names the counter pair (``<metric>.hit`` / ``<metric>.miss``)
    this cache reports under.
    """

    def __init__(self, capacity: int, metric: str = "sz.huffman.cache") -> None:
        self.capacity = capacity
        self.metric = metric
        self._lock = threading.Lock()
        self._data: OrderedDict[bytes, object] = OrderedDict()

    def get(self, key: bytes):
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count(
                f"{self.metric}.hit" if value is not None
                else f"{self.metric}.miss"
            )
        return value

    def put(self, key: bytes, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_ENCODE_CACHE = _LRUCache(64)
_DECODE_CACHE = _LRUCache(64)
_TABLE_CACHE = _LRUCache(64, metric="sz.huffman.encode_table")


def clear_codebook_caches() -> None:
    """Drop the memoized encoder codebooks and decoder lookup tables."""
    _ENCODE_CACHE.clear()
    _DECODE_CACHE.clear()
    _TABLE_CACHE.clear()


def _digest(tag: bytes, *parts: np.ndarray) -> bytes:
    h = hashlib.blake2b(tag, digest_size=16)
    for part in parts:
        h.update(part.tobytes())
    return h.digest()


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


def _cached_codebook(
    symbols: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(lengths, codes) for one histogram, memoized by digest.

    Per-buffer, per-axis MDZ sessions re-encode near-identical alphabets
    every snapshot batch; the heap tree build and the canonical-code
    assignment are the only Python-loop stages left in ``encode``, so
    caching them removes the per-buffer codebook cost entirely on repeats.
    """
    key = _digest(b"enc", symbols, counts)
    cached = _ENCODE_CACHE.get(key)
    if cached is not None:
        return cached
    lengths = code_lengths(counts)
    codes = canonical_codes(lengths)
    value = (_freeze(lengths), _freeze(codes))
    _ENCODE_CACHE.put(key, value)
    return value


#: Hard cap on the dense packed encode table (8 MB of uint64 entries).
_DENSE_TABLE_SPAN_CAP = 1 << 20

#: Below this span a dense table is always worthwhile, regardless of how
#: sparse the alphabet is within it.
_DENSE_TABLE_SPAN_FLOOR = 1 << 16


def _packed_encode_table(
    symbols: np.ndarray,
    counts: np.ndarray,
    lengths: np.ndarray,
    codes: np.ndarray,
) -> tuple[int | None, np.ndarray]:
    """Fused (code << 6 | length) lookup table for one codebook, memoized.

    Returns ``(base, table)``.  When ``base`` is an int the table is
    *dense*: entry ``v - base`` holds the packed code/length for symbol
    value ``v``, so encoding is a single gather straight off the raw
    values — no ``unique``/``searchsorted`` index pass.  When ``base`` is
    ``None`` the value span was too wide to materialize and the table is
    per-*symbol* (same order as ``symbols``); callers index it with the
    inverse mapping instead.

    Six low bits hold the code length (max 57 < 64); the code sits above.
    Keyed by the same BLAKE2b histogram digest as the codebook cache but
    tracked separately (``sz.huffman.encode_table.hit/miss``).
    """
    key = _digest(b"tab", symbols, counts)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    fused = (codes << np.uint64(6)) | lengths.astype(np.uint64)
    lo = int(symbols[0])
    span = int(symbols[-1]) - lo + 1
    if span <= max(_DENSE_TABLE_SPAN_FLOOR, 4 * symbols.size) and (
        span <= _DENSE_TABLE_SPAN_CAP
    ):
        table = np.zeros(span, dtype=np.uint64)
        table[symbols - lo] = fused
        value = (lo, _freeze(table))
    else:
        value = (None, _freeze(fused))
    _TABLE_CACHE.put(key, value)
    return value


class _DecodeTable:
    """Prepared decode structures for one canonical codebook.

    Two lookup strategies behind one surface:

    * ``max_len <= FLAT_TABLE_BITS`` — the classic flat ``2**max_len``
      (symbol, length) table; O(1) per lookup.
    * deeper codebooks — canonical codes left-aligned to ``max_len`` form
      a strictly increasing sequence whose spans tile the window space, so
      ``searchsorted`` on the span starts resolves a window in
      O(log alphabet) with O(alphabet) memory.  This is what caps the
      table: a (corrupt or foreign) blob claiming 50-bit codes can no
      longer force a ``2**50``-entry allocation.
    """

    __slots__ = (
        "max_len",
        "flat_sym",
        "flat_len",
        "bounds",
        "sorted_sym",
        "sorted_len",
        "_scalar",
    )

    def __init__(self, symbols: np.ndarray, lengths: np.ndarray) -> None:
        if lengths.size == 0 or int(lengths.min()) < 1:
            raise DecompressionError("corrupt Huffman codebook: bad length")
        max_len = int(lengths.max())
        if max_len > MAX_CODE_WIDTH:
            raise DecompressionError(
                f"Huffman code length {max_len} exceeds the "
                f"{MAX_CODE_WIDTH}-bit format budget"
            )
        # Exact Kraft check over the length histogram: a canonical codebook
        # must tile the window space exactly.  A deficit means holes (the
        # old table builder's corruption check); a surplus means
        # overlapping spans that would decode silently wrong.
        hist = np.bincount(lengths, minlength=max_len + 1).tolist()
        kraft = sum(c << (max_len - l) for l, c in enumerate(hist) if l and c)
        if kraft != 1 << max_len:
            raise DecompressionError("incomplete Huffman codebook")
        codes = canonical_codes(lengths)
        self.max_len = max_len
        self._scalar = None
        if max_len <= FLAT_TABLE_BITS:
            size = 1 << max_len
            flat_sym = np.zeros(size, dtype=np.int64)
            flat_len = np.zeros(size, dtype=np.int64)
            for sym_value, length, code in zip(symbols, lengths, codes):
                length = int(length)
                shift = max_len - length
                start = int(code) << shift
                flat_sym[start : start + (1 << shift)] = sym_value
                flat_len[start : start + (1 << shift)] = length
            self.flat_sym = _freeze(flat_sym)
            self.flat_len = _freeze(flat_len)
            self.bounds = self.sorted_sym = self.sorted_len = None
        else:
            order = np.lexsort((np.arange(lengths.size), lengths))
            self.bounds = _freeze(
                codes[order] << (max_len - lengths[order]).astype(np.uint64)
            )
            self.sorted_sym = _freeze(symbols[order].copy())
            self.sorted_len = _freeze(lengths[order].copy())
            self.flat_sym = self.flat_len = None

    def lookup(self, windows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (symbols, lengths) for ``max_len``-bit windows."""
        if self.flat_sym is not None:
            idx = windows.astype(np.int64)
            return self.flat_sym[idx], self.flat_len[idx]
        idx = np.searchsorted(self.bounds, windows, side="right") - 1
        return self.sorted_sym[idx], self.sorted_len[idx]

    def scalar_tables(self):
        """Python-list lookup structures for the scalar legacy decoder."""
        if self._scalar is None:
            if self.flat_sym is not None:
                self._scalar = (self.flat_sym.tolist(), self.flat_len.tolist())
            else:
                self._scalar = (
                    self.bounds.tolist(),
                    self.sorted_sym.tolist(),
                    self.sorted_len.tolist(),
                )
        return self._scalar


def _cached_decode_table(
    symbols: np.ndarray, lengths: np.ndarray
) -> _DecodeTable:
    key = _digest(b"dec", symbols, lengths)
    cached = _DECODE_CACHE.get(key)
    if cached is not None:
        return cached
    table = _DecodeTable(symbols, lengths)
    _DECODE_CACHE.put(key, table)
    return table


# -- the codec -----------------------------------------------------------


def _resolve_streams(n: int, streams: int | None) -> int:
    """Sub-stream count for one blob: explicit, or scaled with ``n``."""
    if streams is not None:
        count = int(streams)
        if count < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        return min(count, MAX_STREAMS)
    if n < _H2_MIN_SYMBOLS:
        return 1
    return max(DEFAULT_STREAMS, min(MAX_STREAMS, n // _SYMBOLS_PER_STREAM))


def _histogram(
    flat: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, int, int]:
    """(symbols, counts, inverse, lo, hi) for a non-empty int64 array.

    Narrow value spans take a dense ``bincount`` over the range — one pass,
    no sort — whose nonzero bins reproduce exactly the sorted
    (symbols, counts) pair ``np.unique`` would return, so codebook cache
    digests are identical on both paths.  ``inverse`` is only materialized
    on the wide-span fallback; dense-span callers index by value instead.
    """
    lo, hi = int(flat.min()), int(flat.max())
    span = hi - lo + 1
    if span <= max(1 << 16, 4 * flat.size) and span <= _DENSE_TABLE_SPAN_CAP:
        full = np.bincount(flat - lo, minlength=span)
        present = np.flatnonzero(full)
        return present + lo, full[present], None, lo, hi
    symbols, inverse = np.unique(flat, return_inverse=True)
    counts = np.bincount(inverse, minlength=symbols.size)
    return symbols, counts, inverse, lo, hi


def estimate_encoded_bytes(
    values: np.ndarray,
    alphabet_hint: int | None = None,
    streams: int | None = None,
) -> int:
    """Predicted size of :meth:`HuffmanCodec.encode`'s blob, without packing.

    The Huffman payload length is exact — ``sum(counts * lengths)`` bits
    over the (cached) codebook — so the only approximations are the H2
    per-stream byte padding (taken at its 4-bit average) and the JSON/blob
    framing overhead.  Costs one histogram pass plus a codebook-cache
    lookup; no gather, no bit packing, no payload allocation.
    """
    arr = np.asarray(values)
    flat = arr.astype(np.int64, copy=False).ravel()
    if flat.size == 0:
        return 24
    symbols, counts, _, lo, hi = _histogram(flat)
    lengths, _ = _cached_codebook(symbols, counts)
    payload_bits = int((counts * lengths).sum())
    n_streams = _resolve_streams(flat.size, streams)
    if alphabet_hint is not None and hi - lo < alphabet_hint:
        codebook_bytes = int(alphabet_hint)
    else:
        codebook_bytes = _compact_symbols(symbols).nbytes + symbols.size
    total = 56 + codebook_bytes + (payload_bits + 7) // 8
    if n_streams > 1:
        # Per-stream byte padding (~4 bits each) plus the sizes table.
        total += (n_streams * 4) // 8 + _compact_unsigned(
            np.array([max(payload_bits // 8, 1)], dtype=np.uint64)
        ).itemsize * n_streams
    return total


def _compact_unsigned(values: np.ndarray) -> np.ndarray:
    """Store an unsigned array in the narrowest dtype that fits."""
    hi = int(values.max()) if values.size else 0
    for dtype in (np.uint8, np.uint16, np.uint32):
        if hi <= np.iinfo(dtype).max:
            return values.astype(dtype)
    return values.astype(np.uint64)


def _h2_payload(
    sym_codes: np.ndarray, sym_lens: np.ndarray, n_streams: int
) -> tuple[bytes, np.ndarray]:
    """Pack codes into N round-robin sub-streams; returns (payload, sizes).

    Stream ``k`` carries symbols ``k, k+N, k+2N, ...`` and is padded with
    zero bits to a byte boundary, so the concatenated payload is exactly
    the per-stream :func:`pack_codes` outputs back to back.  The whole
    reshuffle is a transpose plus one vectorized pack: byte alignment is
    expressed as zero-length/pad-length pseudo-codes appended per stream.
    """
    n = sym_codes.size
    rounds = -(-n // n_streams)
    total = rounds * n_streams
    grid_codes = np.zeros(total, dtype=np.uint64)
    grid_codes[:n] = sym_codes
    grid_lens = np.zeros(total, dtype=np.int64)
    grid_lens[:n] = sym_lens
    # Round-major (rounds, N) -> stream-major (N, rounds); absent tail
    # elements keep length 0 and contribute no bits.  The transpose lands
    # straight in a preallocated (N, rounds+1) grid whose last column is
    # the per-stream byte-alignment pseudo-code, so the pack below reads
    # one contiguous array with no further copies.
    rm_codes = grid_codes.reshape(rounds, n_streams)
    rm_lens = grid_lens.reshape(rounds, n_streams)
    stream_bits = rm_lens.sum(axis=0)
    pad_bits = (-stream_bits) % 8
    ext_codes = np.zeros((n_streams, rounds + 1), dtype=np.uint64)
    ext_lens = np.zeros((n_streams, rounds + 1), dtype=np.int64)
    ext_codes[:, :rounds] = rm_codes.T
    ext_lens[:, :rounds] = rm_lens.T
    ext_lens[:, rounds] = pad_bits
    payload = pack_codes(ext_codes.ravel(), ext_lens.ravel())
    sizes = (stream_bits + pad_bits) // 8
    return payload, sizes


class HuffmanCodec:
    """Self-contained canonical Huffman encoder/decoder for integer arrays.

    ``encode`` returns a blob embedding the codebook (distinct symbol values
    and their code lengths) followed by the packed bit stream; ``decode``
    needs nothing but that blob and the symbol count.
    """

    @staticmethod
    def encode(
        values: np.ndarray,
        alphabet_hint: int | None = None,
        streams: int | None = None,
    ) -> bytes:
        """Encode an integer array into a self-describing Huffman blob.

        ``alphabet_hint`` emulates SZ's dense codebook handling: the C
        implementation allocates and serializes tree structures sized to
        the *quantization scale*, not to the observed alphabet, which is
        exactly why large scales slow it down (Figure 9).  When a hint is
        given (and the symbols fit in ``[0, hint)`` after centering), the
        codebook is stored as a dense per-symbol length table of that size.

        ``streams`` controls the H2 sub-stream fan-out: ``None`` (default)
        scales the count with the array size (single-stream below
        ``_H2_MIN_SYMBOLS``, then ~one stream per ``_SYMBOLS_PER_STREAM``
        symbols up to :data:`MAX_STREAMS`); ``1`` forces the legacy
        single-stream format (bit-identical to historical blobs); any
        larger value forces that H2 fan-out.
        """
        arr = np.asarray(values)
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError("HuffmanCodec encodes integer arrays only")
        recorder = get_recorder()
        dtype_tag = arr.dtype.str
        flat = arr.astype(np.int64, copy=False).ravel()
        writer = BlobWriter()
        if flat.size == 0:
            writer.write_json({"n": 0, "dt": dtype_tag})
            return writer.getvalue()
        with recorder.span("sz.huffman.encode", symbols=int(flat.size)), \
                recorder.timer("sz.huffman.encode"):
            with recorder.timer("sz.huffman.encode.histogram"):
                symbols, counts, inverse, lo, hi = _histogram(flat)
            with recorder.timer("sz.huffman.encode.table"):
                lengths, codes = _cached_codebook(symbols, counts)
                base, table = _packed_encode_table(
                    symbols, counts, lengths, codes
                )
            with recorder.timer("sz.huffman.encode.pack"):
                if base is not None:
                    entries = table[flat - base]
                else:
                    if inverse is None:
                        inverse = np.searchsorted(symbols, flat)
                    entries = table[inverse]
                sym_codes = entries >> np.uint64(6)
                sym_lens = (entries & np.uint64(63)).astype(np.int64)
                n_streams = _resolve_streams(flat.size, streams)
                if n_streams == 1:
                    payload = pack_codes(sym_codes, sym_lens)
                    sizes = None
                else:
                    payload, sizes = _h2_payload(sym_codes, sym_lens, n_streams)
            with recorder.timer("sz.huffman.encode.write"):
                dense_base: int | None = None
                if alphabet_hint is not None and hi - lo < alphabet_hint:
                    dense_base = lo
                meta = {"n": int(flat.size), "dense": dense_base, "dt": dtype_tag}
                if n_streams > 1:
                    meta["v"] = 2
                    meta["ns"] = n_streams
                writer.write_json(meta)
                if dense_base is None:
                    writer.write_array(_compact_symbols(symbols))
                    writer.write_array(lengths.astype(np.uint8))
                else:
                    dense = np.zeros(int(alphabet_hint), dtype=np.uint8)
                    dense[symbols - dense_base] = lengths
                    writer.write_array(dense)
                if sizes is not None:
                    writer.write_array(_compact_unsigned(sizes))
                writer.write_bytes(payload)
        blob = writer.getvalue()
        if recorder.enabled:
            recorder.count("sz.huffman.encode.symbols", flat.size)
            recorder.count("sz.huffman.encode.alphabet", symbols.size)
            recorder.count("sz.huffman.encode.bytes", len(blob))
            recorder.annotate(
                entropy_streams=n_streams,
                alphabet=int(symbols.size),
                huffman_bytes=len(blob),
            )
        return blob

    @staticmethod
    def decode(blob: bytes) -> np.ndarray:
        """Decode a blob produced by :meth:`encode`.

        The symbol dtype recorded at encode time is restored, so an
        ``int32`` array comes back ``int32``; blobs written before the
        dtype tag existed decode as ``int64`` (the historical behaviour).
        H2 blobs (``"v": 2``) run the vectorized multi-stream decoder;
        anything else takes the legacy scalar path, bit-exactly.
        """
        recorder = get_recorder()
        reader = BlobReader(blob)
        meta = reader.read_json()
        n = int(meta["n"])
        dtype = np.dtype(str(meta.get("dt", "<i8")))
        if n == 0:
            return np.empty(0, dtype=dtype)
        version = int(meta.get("v", 1))
        if version not in (1, 2):
            raise DecompressionError(f"unsupported Huffman blob version {version}")
        with recorder.span("sz.huffman.decode", symbols=n), \
                recorder.timer("sz.huffman.decode"):
            dense_base = meta.get("dense")
            if dense_base is None:
                symbols = reader.read_array().astype(np.int64)
                lengths = reader.read_array().astype(np.int64)
            else:
                dense = reader.read_array().astype(np.int64)
                present = np.nonzero(dense)[0]
                symbols = present + int(dense_base)
                lengths = dense[present]
            if symbols.size == 1:
                # Degenerate single-symbol alphabet: the 1-bit codes carry
                # no information beyond the count.
                out = np.full(n, symbols[0], dtype=np.int64)
            else:
                table = _cached_decode_table(symbols, lengths)
                if version == 2:
                    n_streams = int(meta.get("ns", 0))
                    sizes = reader.read_array()
                    payload = reader.read_bytes()
                    out = _decode_streams(payload, sizes, n, n_streams, table)
                else:
                    payload = reader.read_bytes()
                    out = _decode_stream(payload, n, table)
        if recorder.enabled:
            recorder.count("sz.huffman.decode.symbols", n)
        return out.astype(dtype, copy=False)


def _compact_symbols(symbols: np.ndarray) -> np.ndarray:
    """Store the symbol table in the narrowest dtype that fits."""
    lo, hi = int(symbols.min()), int(symbols.max())
    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return symbols.astype(dtype)
    return symbols.astype(np.int64)


def _decode_streams(
    payload: bytes,
    sizes: np.ndarray,
    n: int,
    n_streams: int,
    table: _DecodeTable,
) -> np.ndarray:
    """Round-based vectorized decode of an H2 multi-stream payload.

    All N stream cursors advance together: each round gathers one 64-bit
    window per stream from a precombined sliding-word matrix, resolves all
    of them with one table lookup, writes the symbols of round ``r`` to
    ``out[r*N : r*N + N]`` (round-robin is contiguous in round-major
    order), and bumps the cursors by the decoded code lengths.  Runaway
    cursors (truncated/corrupt streams) read zero padding, overrun their
    stream's bit budget, and are rejected by the final exhaustion check.
    """
    if n_streams < 1 or n_streams > MAX_STREAMS:
        raise DecompressionError(f"corrupt H2 stream count {n_streams}")
    sizes = np.asarray(sizes).astype(np.int64)
    if sizes.size != n_streams:
        raise DecompressionError(
            f"H2 stream table has {sizes.size} entries for {n_streams} streams"
        )
    if (sizes < 0).any() or int(sizes.sum()) != len(payload):
        raise DecompressionError("H2 stream sizes disagree with payload length")
    width = int(sizes.max()) + 16
    # A valid round-robin split is balanced; reject degenerate size tables
    # before they can inflate the (streams x width) state matrices.
    if n_streams * width > 2 * len(payload) + 64 * n_streams + 4096:
        raise DecompressionError("unbalanced H2 stream sizes")
    mat = np.zeros((n_streams, width), dtype=np.uint8)
    raw = np.frombuffer(payload, dtype=np.uint8)
    if raw.size:
        row_idx = np.repeat(np.arange(n_streams), sizes)
        offsets = np.cumsum(sizes) - sizes
        col_idx = np.arange(raw.size, dtype=np.int64) - np.repeat(offsets, sizes)
        mat[row_idx, col_idx] = raw
    # Precombine: word[k, p] = bytes p..p+7 of stream k, big-endian, so a
    # round's window gather is a single fancy index into a flat array.
    word_cols = width - 7
    words = np.zeros((n_streams, word_cols), dtype=np.uint64)
    for j in range(8):
        words <<= np.uint64(8)
        words |= mat[:, j : j + word_cols]
    flat_words = words.ravel()
    row_base = np.arange(n_streams, dtype=np.int64) * word_cols
    need = np.uint64(64 - table.max_len)
    mask = np.uint64((1 << table.max_len) - 1)
    out = np.empty(n, dtype=np.int64)
    cursors = np.zeros(n_streams, dtype=np.int64)
    full_rounds, remainder = divmod(n, n_streams)
    rounds = full_rounds + (1 if remainder else 0)
    byte_cap = word_cols - 1
    for r in range(rounds):
        active = n_streams if r < full_rounds else remainder
        cur = cursors[:active]
        byte_idx = np.minimum(cur >> 3, byte_cap)
        window = (
            flat_words[row_base[:active] + byte_idx]
            >> (need - (cur & 7).astype(np.uint64))
        ) & mask
        sym, length = table.lookup(window)
        out[r * n_streams : r * n_streams + active] = sym
        cur += length
    if (cursors > sizes * 8).any():
        raise DecompressionError("Huffman stream exhausted before count")
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("sz.huffman.decode.h2_blobs")
        recorder.count("sz.huffman.decode.rounds", rounds)
        recorder.count("sz.huffman.decode.streams", n_streams)
    return out


def _decode_stream(payload: bytes, n: int, table: _DecodeTable) -> np.ndarray:
    """Scalar sequential decode of ``n`` symbols (legacy v1 blobs).

    Flat-table codebooks walk the original Python-int bit accumulator
    loop; deeper codebooks substitute a ``bisect`` over the canonical span
    starts for the table index, keeping memory at O(alphabet) instead of
    O(2**max_len) — see the satellite cap in :class:`_DecodeTable`.
    """
    max_len = table.max_len
    if table.flat_sym is not None:
        table_sym, table_len = table.scalar_tables()
        lookup = None
    else:
        bounds, sorted_sym, sorted_len = table.scalar_tables()

        def lookup(window: int) -> int:
            return bisect.bisect_right(bounds, window) - 1

    out: list[int] = []
    append = out.append
    acc = 0
    nbits = 0
    mask = (1 << max_len) - 1
    remaining = n
    for byte in payload:
        acc = ((acc << 8) | byte) & 0xFFFFFFFFFFFFFFFF
        nbits += 8
        while nbits >= max_len and remaining:
            window = (acc >> (nbits - max_len)) & mask
            if lookup is None:
                length = table_len[window]
                append(table_sym[window])
            else:
                idx = lookup(window)
                length = sorted_len[idx]
                append(sorted_sym[idx])
            nbits -= length
            remaining -= 1
        if not remaining:
            break
    # Flush: trailing symbols whose codes are shorter than max_len may sit
    # in fewer than max_len leftover bits; zero-pad the window.
    while remaining:
        if nbits <= 0:
            raise DecompressionError("Huffman stream exhausted before count")
        window = ((acc << (max_len - nbits)) & mask) if nbits < max_len else (
            (acc >> (nbits - max_len)) & mask
        )
        if lookup is None:
            length = table_len[window]
            symbol = table_sym[window]
        else:
            idx = lookup(window)
            length = sorted_len[idx]
            symbol = sorted_sym[idx]
        if length > nbits:
            raise DecompressionError("Huffman stream exhausted mid-code")
        append(symbol)
        nbits -= length
        remaining -= 1
    return np.asarray(out, dtype=np.int64)
