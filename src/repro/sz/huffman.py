"""Canonical Huffman coding for integer symbol streams.

This is the entropy-coding stage of the SZ framework (Section III-B of the
paper): quantization codes are Huffman-encoded before the trailing
dictionary coder.  The implementation here is self-contained:

* code lengths come from a standard heap-built Huffman tree over the symbol
  histogram, with an iterative count-halving pass that limits the maximum
  code length to :data:`MAX_CODE_LENGTH` bits (keeping the decode table
  small and the vectorized encoder within its 57-bit budget);
* codes are assigned canonically, so the decoder only needs the per-symbol
  code *lengths* to rebuild the exact codebook;
* encoding is fully vectorized (numpy gather + bit packing);
* decoding walks the bit stream with a flat ``2**maxlen`` lookup table — the
  classic table-driven decoder — using plain Python integers for the bit
  accumulator, which profiles fastest on CPython.

The public entry point is :class:`HuffmanCodec` with ``encode`` / ``decode``
class methods that produce and consume self-contained byte blobs (codebook
included).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..telemetry import get_recorder
from .bitio import pack_codes

#: Hard cap on Huffman code length.  Chosen so the flat decode table is at
#: most 2^16 entries and the vectorized bit packer never sees codes wider
#: than 57 bits.
MAX_CODE_LENGTH = 16


def _tree_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Return Huffman code lengths for strictly-positive ``counts``.

    Uses the standard two-queue/heap construction.  For a single-symbol
    alphabet the length is 1 (a degenerate tree still needs one bit so the
    decoder can count symbols).
    """
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap of (count, tiebreak, node). Leaves are ints; internal nodes are
    # [left, right] lists.  Depth assignment happens in a second pass.
    heap: list[tuple[int, int, object]] = [
        (int(c), i, i) for i, c in enumerate(counts)
    ]
    heapq.heapify(heap)
    tiebreak = n
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (c1 + c2, tiebreak, [n1, n2]))
        tiebreak += 1
    lengths = np.zeros(n, dtype=np.int64)
    # Iterative DFS to assign depths (recursion would overflow on skewed
    # trees with large alphabets).
    stack: list[tuple[object, int]] = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, list):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)
    return lengths


def code_lengths(counts: np.ndarray, max_length: int = MAX_CODE_LENGTH) -> np.ndarray:
    """Huffman code lengths limited to ``max_length`` bits.

    Length limiting uses the pragmatic count-halving heuristic: if the
    optimal tree is deeper than the cap, the histogram is flattened
    (``ceil(count/2)``) and the tree rebuilt.  The result stays a valid
    prefix code and is within a fraction of a bit of optimal for the
    distributions produced by quantization.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if (counts <= 0).any():
        raise ValueError("all symbol counts must be positive")
    work = counts.copy()
    while True:
        lengths = _tree_code_lengths(work)
        if lengths.max() <= max_length:
            return lengths
        work = (work + 1) // 2


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes given per-symbol code lengths.

    Symbols are ranked by (length, symbol index); codes are consecutive
    integers within each length class.  The decoder rebuilds the identical
    assignment from the lengths alone.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


@dataclass(frozen=True)
class _Codebook:
    symbols: np.ndarray  # int64, the distinct symbol values
    lengths: np.ndarray  # int64, code length per symbol
    codes: np.ndarray  # uint64, canonical code per symbol


class HuffmanCodec:
    """Self-contained canonical Huffman encoder/decoder for integer arrays.

    ``encode`` returns a blob embedding the codebook (distinct symbol values
    and their code lengths) followed by the packed bit stream; ``decode``
    needs nothing but that blob and the symbol count.
    """

    @staticmethod
    def encode(values: np.ndarray, alphabet_hint: int | None = None) -> bytes:
        """Encode an integer array into a self-describing Huffman blob.

        ``alphabet_hint`` emulates SZ's dense codebook handling: the C
        implementation allocates and serializes tree structures sized to
        the *quantization scale*, not to the observed alphabet, which is
        exactly why large scales slow it down (Figure 9).  When a hint is
        given (and the symbols fit in ``[0, hint)`` after centering), the
        codebook is stored as a dense per-symbol length table of that size.
        """
        arr = np.asarray(values)
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError("HuffmanCodec encodes integer arrays only")
        recorder = get_recorder()
        dtype_tag = arr.dtype.str
        flat = arr.astype(np.int64, copy=False).ravel()
        writer = BlobWriter()
        if flat.size == 0:
            writer.write_json({"n": 0, "dt": dtype_tag})
            return writer.getvalue()
        with recorder.timer("sz.huffman.encode"):
            symbols, inverse = np.unique(flat, return_inverse=True)
            counts = np.bincount(inverse, minlength=symbols.size)
            lengths = code_lengths(counts)
            codes = canonical_codes(lengths)
            payload = pack_codes(codes[inverse], lengths[inverse])
            dense_base: int | None = None
            if alphabet_hint is not None:
                lo, hi = int(symbols.min()), int(symbols.max())
                if hi - lo < alphabet_hint:
                    dense_base = lo
            writer.write_json(
                {"n": int(flat.size), "dense": dense_base, "dt": dtype_tag}
            )
            if dense_base is None:
                writer.write_array(_compact_symbols(symbols))
                writer.write_array(lengths.astype(np.uint8))
            else:
                dense = np.zeros(int(alphabet_hint), dtype=np.uint8)
                dense[symbols - dense_base] = lengths
                writer.write_array(dense)
            writer.write_bytes(payload)
        blob = writer.getvalue()
        if recorder.enabled:
            recorder.count("sz.huffman.encode.symbols", flat.size)
            recorder.count("sz.huffman.encode.alphabet", symbols.size)
            recorder.count("sz.huffman.encode.bytes", len(blob))
        return blob

    @staticmethod
    def decode(blob: bytes) -> np.ndarray:
        """Decode a blob produced by :meth:`encode`.

        The symbol dtype recorded at encode time is restored, so an
        ``int32`` array comes back ``int32``; blobs written before the
        dtype tag existed decode as ``int64`` (the historical behaviour).
        """
        recorder = get_recorder()
        reader = BlobReader(blob)
        meta = reader.read_json()
        n = int(meta["n"])
        dtype = np.dtype(str(meta.get("dt", "<i8")))
        if n == 0:
            return np.empty(0, dtype=dtype)
        with recorder.timer("sz.huffman.decode"):
            dense_base = meta.get("dense")
            if dense_base is None:
                symbols = reader.read_array().astype(np.int64)
                lengths = reader.read_array().astype(np.int64)
            else:
                dense = reader.read_array().astype(np.int64)
                present = np.nonzero(dense)[0]
                symbols = present + int(dense_base)
                lengths = dense[present]
            payload = reader.read_bytes()
            if symbols.size == 1:
                # Degenerate single-symbol alphabet: the 1-bit codes carry
                # no information beyond the count.
                out = np.full(n, symbols[0], dtype=np.int64)
            else:
                codes = canonical_codes(lengths)
                max_len = int(lengths.max())
                table_sym, table_len = _build_flat_table(
                    symbols, lengths, codes, max_len
                )
                out = _decode_stream(payload, n, table_sym, table_len, max_len)
        if recorder.enabled:
            recorder.count("sz.huffman.decode.symbols", n)
        return out.astype(dtype, copy=False)


def _compact_symbols(symbols: np.ndarray) -> np.ndarray:
    """Store the symbol table in the narrowest dtype that fits."""
    lo, hi = int(symbols.min()), int(symbols.max())
    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return symbols.astype(dtype)
    return symbols.astype(np.int64)


def _build_flat_table(
    symbols: np.ndarray,
    lengths: np.ndarray,
    codes: np.ndarray,
    max_len: int,
) -> tuple[list[int], list[int]]:
    """Build the flat ``2**max_len`` decode table (symbol, length) lists."""
    size = 1 << max_len
    table_sym = np.zeros(size, dtype=np.int64)
    table_len = np.zeros(size, dtype=np.int64)
    for sym_value, length, code in zip(symbols, lengths, codes):
        length = int(length)
        shift = max_len - length
        start = int(code) << shift
        end = start + (1 << shift)
        table_sym[start:end] = sym_value
        table_len[start:end] = length
    if (table_len == 0).any():
        # Canonical codebooks always tile the space; a hole means corruption.
        raise DecompressionError("incomplete Huffman codebook")
    return table_sym.tolist(), table_len.tolist()


def _decode_stream(
    payload: bytes,
    n: int,
    table_sym: list[int],
    table_len: list[int],
    max_len: int,
) -> np.ndarray:
    """Table-driven sequential decode of ``n`` symbols."""
    out: list[int] = []
    append = out.append
    acc = 0
    nbits = 0
    mask = (1 << max_len) - 1
    remaining = n
    for byte in payload:
        acc = ((acc << 8) | byte) & 0xFFFFFFFFFFFFFFFF
        nbits += 8
        while nbits >= max_len and remaining:
            window = (acc >> (nbits - max_len)) & mask
            length = table_len[window]
            append(table_sym[window])
            nbits -= length
            remaining -= 1
        if not remaining:
            break
    # Flush: trailing symbols whose codes are shorter than max_len may sit
    # in fewer than max_len leftover bits; zero-pad the window.
    while remaining:
        if nbits <= 0:
            raise DecompressionError("Huffman stream exhausted before count")
        window = ((acc << (max_len - nbits)) & mask) if nbits < max_len else (
            (acc >> (nbits - max_len)) & mask
        )
        length = table_len[window]
        if length > nbits:
            raise DecompressionError("Huffman stream exhausted mid-code")
        append(table_sym[window])
        nbits -= length
        remaining -= 1
    return np.asarray(out, dtype=np.int64)
