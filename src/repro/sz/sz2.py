"""SZ2 baseline compressor (Section III-B, Table IV).

SZ2 [Liang et al. 2018] is the classic prediction-based error-bounded lossy
compressor: Lorenzo prediction, linear-scale quantization, Huffman coding,
and a trailing dictionary coder.  The paper evaluates it in two modes:

* **1D** — the batch is flattened into one long stream and predicted from
  the preceding value;
* **2D** — the batch is treated as a (snapshots x atoms) plane and predicted
  with the order-1 2D Lorenzo stencil, exploiting space and time
  correlation simultaneously.  Table IV shows 2D winning by up to ~2x,
  which is why the paper (and our benchmarks) run SZ2 in 2D mode.

Batches are independent, matching how SZ is applied to buffered snapshots.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from .lossless import lossless_compress, lossless_decompress
from .pipeline import decode_int_stream, encode_int_stream
from .predictors import (
    lorenzo_1d_codes,
    lorenzo_1d_reconstruct,
    lorenzo_2d_codes,
    lorenzo_2d_reconstruct,
)
from .quantizer import DEFAULT_SCALE, LinearQuantizer
from ..baselines.api import Compressor, register_compressor


class SZ2Compressor(Compressor):
    """SZ2 with selectable prediction dimensionality.

    Parameters
    ----------
    mode:
        ``"1d"`` or ``"2d"`` (the paper's Table IV comparison).
    scale:
        Linear quantization scale; SZ2's default matches MDZ's (1024).
    """

    is_lossless = False

    def __init__(self, mode: str = "2d", scale: int = DEFAULT_SCALE) -> None:
        if mode not in ("1d", "2d"):
            raise ValueError(f"SZ2 mode must be '1d' or '2d', got {mode!r}")
        self.mode = mode
        self.scale = scale
        self.name = f"sz2-{mode}"

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        quantizer = LinearQuantizer(self.error_bound, self.scale)
        anchor = float(batch.flat[0])
        if self.mode == "1d":
            block = lorenzo_1d_codes(batch.ravel(), quantizer, anchor)
        else:
            block = lorenzo_2d_codes(batch, quantizer, anchor)
        writer = BlobWriter()
        writer.write_json(
            {
                "mode": self.mode,
                "shape": list(batch.shape),
                "anchor": anchor,
                "eb": self.error_bound,
                "scale": self.scale,
            }
        )
        writer.write_bytes(
            encode_int_stream(block, alphabet_hint=self.scale + 1)
        )
        return lossless_compress(writer.getvalue())

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        reader = BlobReader(lossless_decompress(blob))
        meta = reader.read_json()
        if meta["mode"] != self.mode:
            raise DecompressionError(
                f"blob was produced in mode {meta['mode']!r}, "
                f"decoder is {self.mode!r}"
            )
        quantizer = LinearQuantizer(float(meta["eb"]), int(meta["scale"]))
        block = decode_int_stream(reader.read_bytes())
        shape = tuple(int(x) for x in meta["shape"])
        anchor = float(meta["anchor"])
        if self.mode == "1d":
            flat = lorenzo_1d_reconstruct(block, quantizer, anchor)
            return flat.reshape(shape)
        return lorenzo_2d_reconstruct(block, quantizer, anchor)


register_compressor("sz2-1d", lambda: SZ2Compressor(mode="1d"))
register_compressor("sz2-2d", lambda: SZ2Compressor(mode="2d"))
register_compressor("sz2", lambda: SZ2Compressor(mode="2d"))
