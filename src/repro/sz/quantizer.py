"""Linear-scale quantization with out-of-scope literals (Section VI-C1).

The SZ framework maps every prediction residual onto an integer grid of bin
width ``2 * error_bound``; reconstructing ``prediction + code * bin_width``
then guarantees ``|reconstructed - original| <= error_bound`` everywhere.

The *quantization scale* bounds the range of the emitted integers: codes are
confined to ``(-scale/2, scale/2)`` and any residual falling outside is
replaced by a reserved marker symbol while its exact grid level is stored in
a side array ("out-of-scope" points, stored separately per the paper).  A
small scale inflates the side array; a large scale inflates the Huffman
codebook and slows coding — the trade-off the paper sweeps in Figure 9 and
resolves at the default of 1024.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, DecompressionError

DEFAULT_SCALE = 1024


@dataclass
class QuantizedBlock:
    """Quantization codes plus the out-of-scope side channel.

    Attributes
    ----------
    codes:
        int64 array, original shape preserved.  In-scope entries hold the
        small signed quantization code; out-of-scope entries hold the
        reserved ``marker`` value.
    wide:
        int64 array of the absolute grid levels of the out-of-scope points,
        in the traversal order of ``order`` over ``codes``.
    marker:
        The reserved integer marking out-of-scope positions.
    order:
        'C' or 'F': the flattening order used to extract ``wide``.  Chain
        (time-wise) coders use Fortran order so that each atom's trajectory
        is contiguous.
    """

    codes: np.ndarray
    wide: np.ndarray
    marker: int
    order: str = "C"

    @property
    def n_out_of_scope(self) -> int:
        """Number of points stored through the side channel."""
        return int(self.wide.size)


class LinearQuantizer:
    """Uniform quantizer with bin width ``2 * error_bound``.

    Parameters
    ----------
    error_bound:
        Absolute error bound; must be positive.
    scale:
        Quantization scale (number of representable integers); in-scope
        codes satisfy ``|code| < scale // 2``.
    """

    def __init__(self, error_bound: float, scale: int = DEFAULT_SCALE) -> None:
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ConfigurationError(
                f"error bound must be a positive finite number, got {error_bound}"
            )
        if scale < 4:
            raise ConfigurationError(f"quantization scale too small: {scale}")
        self.error_bound = float(error_bound)
        self.scale = int(scale)
        self.bin_width = 2.0 * self.error_bound
        self.radius = self.scale // 2
        #: reserved symbol for out-of-scope points
        self.marker = self.radius

    def grid_levels(self, values: np.ndarray, anchor: np.ndarray | float) -> np.ndarray:
        """Absolute grid level of every value relative to ``anchor``.

        ``anchor + level * bin_width`` reproduces each value to within the
        error bound.  This is the core of the *grid-anchored* formulation:
        because ``round(x - n) == round(x) - n`` for integer ``n``, chained
        predictors (Lorenzo, time-wise) can be encoded exactly — including
        the feedback of reconstructed values — without a sequential loop.
        """
        values = np.asarray(values, dtype=np.float64)
        return np.rint((values - anchor) / self.bin_width).astype(np.int64)

    def dequantize_levels(
        self, levels: np.ndarray, anchor: np.ndarray | float
    ) -> np.ndarray:
        """Reconstruct values from absolute grid levels."""
        return np.asarray(anchor, dtype=np.float64) + self.bin_width * np.asarray(
            levels, dtype=np.float64
        )

    def split(
        self, codes: np.ndarray, absolute: np.ndarray, order: str = "C"
    ) -> QuantizedBlock:
        """Separate in-scope codes from out-of-scope literals.

        Parameters
        ----------
        codes:
            Candidate per-point quantization codes (deltas for chain coders,
            residual levels for independent predictors).
        absolute:
            Absolute grid level per point — what the decoder should use
            verbatim when the delta does not fit the scale.
        order:
            Flattening order for the side channel (see
            :class:`QuantizedBlock`).
        """
        block, _ = self.split_with_mask(codes, absolute, order)
        return block

    def split_with_mask(
        self, codes: np.ndarray, absolute: np.ndarray, order: str = "C"
    ) -> tuple[QuantizedBlock, np.ndarray]:
        """:meth:`split`, but also return the out-of-scope boolean mask.

        Fused encode kernels reuse the mask to build the encoder-side
        reconstruction without re-deriving it from the marker codes.
        """
        codes = np.asarray(codes, dtype=np.int64)
        absolute = np.asarray(absolute, dtype=np.int64)
        mask = np.abs(codes) >= self.radius
        out = np.where(mask, np.int64(self.marker), codes)
        if order == "F":
            wide = absolute.T[mask.T]
        elif order == "C":
            wide = absolute[mask]
        else:
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        block = QuantizedBlock(
            codes=out, wide=wide, marker=self.marker, order=order
        )
        return block, mask

    def merge_independent(self, block: QuantizedBlock) -> np.ndarray:
        """Restore absolute codes for an *independent* predictor.

        For independent predictions (VQ residuals, reference prediction)
        the stored wide values are directly the full codes, so merging is a
        masked scatter.
        """
        codes = block.codes.astype(np.int64, copy=True)
        mask = codes == block.marker
        n_mask = int(mask.sum())
        if n_mask != block.wide.size:
            raise DecompressionError(
                f"out-of-scope mismatch: {n_mask} markers vs "
                f"{block.wide.size} literals"
            )
        if n_mask:
            if block.order == "F":
                codes_t = codes.T
                codes_t[mask.T] = block.wide
                codes = codes_t.T
            else:
                codes[mask] = block.wide
        return codes

    def chain_reconstruct(self, block: QuantizedBlock, axis: int = 0) -> np.ndarray:
        """Rebuild absolute grid levels from chained delta codes.

        ``codes`` hold first differences of the absolute levels along
        ``axis``; marker positions are *resets* whose absolute level comes
        from the side channel.  The reconstruction is vectorized: resets are
        folded in as corrective deltas whose within-chain prefix sums
        reproduce "latest reset wins" semantics.
        """
        codes = block.codes
        if codes.ndim == 1:
            levels = self._chain_rows(codes[None, :], block)
            return levels[0]
        if axis == 0:
            # chains run down axis 0; transpose so each chain is a row
            rows = self._chain_rows_from(codes.T, block)
            return rows.T
        if axis == codes.ndim - 1:
            return self._chain_rows_from(codes, block)
        raise ValueError("chain_reconstruct supports the first or last axis only")

    # -- internals -----------------------------------------------------

    def _chain_rows_from(self, codes_rows: np.ndarray, block: QuantizedBlock) -> np.ndarray:
        return self._chain_rows(np.ascontiguousarray(codes_rows), block)

    def _chain_rows(self, codes: np.ndarray, block: QuantizedBlock) -> np.ndarray:
        """Chains along the last axis of a contiguous 2D array."""
        mask = codes == block.marker
        n_mask = int(mask.sum())
        if n_mask != block.wide.size:
            raise DecompressionError(
                f"out-of-scope mismatch: {n_mask} markers vs "
                f"{block.wide.size} literals"
            )
        plain = np.where(mask, 0, codes)
        s_plain = np.cumsum(plain, axis=-1)
        if n_mask == 0:
            return s_plain
        flat_idx = np.flatnonzero(mask.ravel())
        chain_len = codes.shape[-1]
        row_id = flat_idx // chain_len
        e = block.wide - s_plain.ravel()[flat_idx]
        deltas = e.copy()
        same_row = row_id[1:] == row_id[:-1]
        deltas[1:][same_row] -= e[:-1][same_row]
        corr = np.zeros(codes.size, dtype=np.int64)
        corr[flat_idx] = deltas
        corr = corr.reshape(codes.shape).cumsum(axis=-1)
        return s_plain + corr
