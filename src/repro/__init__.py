"""MDZ: an efficient error-bounded lossy compressor for molecular dynamics.

A from-scratch Python reproduction of *MDZ* (Zhao, Di, Perez, Liang, Chen,
Cappello — ICDE 2022), including the SZ compression substrate, the optimal
1-D k-means level detector, every lossy/lossless baseline of the paper's
evaluation, an MD simulation engine used as the data source, synthetic
analogs of the paper's datasets, and the analysis toolkit (rate-distortion,
RDF, similarity).

Quickstart
----------
>>> import numpy as np
>>> from repro import MDZ, MDZConfig
>>> positions = np.random.default_rng(0).normal(size=(20, 100, 3))
>>> mdz = MDZ(MDZConfig(error_bound=1e-3, buffer_size=10))
>>> blob = mdz.compress(positions)
>>> restored = mdz.decompress(blob)
>>> bound = mdz.config.error_bound * float(positions.max() - positions.min())
>>> bool(np.abs(restored - positions).max() <= bound)
True
"""

from .baselines import (
    Compressor,
    SessionMeta,
    available_compressors,
    create_compressor,
)
from .core import MDZ, MDZAxisCompressor, MDZConfig
from .exceptions import (
    CompressionError,
    ConfigurationError,
    ContainerFormatError,
    DecompressionError,
    ReproError,
    SimulationError,
    UnsupportedDatasetError,
)
from .io.batch import run_stream, stream_error_bound
from .telemetry import (
    MetricsRecorder,
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from .stream import (
    ParallelExecutor,
    StreamingReader,
    StreamingWriter,
    StreamStats,
    stream_compress,
    stream_compress_dump,
    stream_decompress,
)

__version__ = "1.0.0"

__all__ = [
    "Compressor",
    "CompressionError",
    "ConfigurationError",
    "ContainerFormatError",
    "DecompressionError",
    "MDZ",
    "MDZAxisCompressor",
    "MDZConfig",
    "MetricsRecorder",
    "NullRecorder",
    "ParallelExecutor",
    "Recorder",
    "ReproError",
    "SessionMeta",
    "SimulationError",
    "StreamStats",
    "StreamingReader",
    "StreamingWriter",
    "UnsupportedDatasetError",
    "available_compressors",
    "create_compressor",
    "get_recorder",
    "recording",
    "run_stream",
    "set_recorder",
    "stream_compress",
    "stream_compress_dump",
    "stream_decompress",
    "stream_error_bound",
    "__version__",
]
