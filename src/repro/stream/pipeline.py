"""High-level entry points for the streaming pipeline.

These glue the writer/reader pair to the package's data sources: in-memory
arrays, arbitrary snapshot iterators (the in-situ case), and LAMMPS-style
text dumps — the latter streamed frame by frame, so a multi-gigabyte dump
is compressed in bounded memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterable

import numpy as np

from ..core.config import MDZConfig
from .reader import StreamingReader
from .writer import StreamingWriter, StreamStats


def stream_compress(
    snapshots: Iterable[np.ndarray] | np.ndarray,
    target: str | Path | BinaryIO,
    config: MDZConfig | None = None,
    workers: int = 0,
) -> StreamStats:
    """Compress an iterable of ``(atoms, axes)`` snapshots to ``target``.

    ``snapshots`` may also be a ``(T, N, axes)`` array, which is iterated
    along its first dimension.
    """
    with StreamingWriter(target, config=config, workers=workers) as writer:
        writer.feed_many(snapshots)
        return writer.close()


def stream_decompress(
    source: bytes | str | Path, recover: bool = False
) -> np.ndarray:
    """Decode an ``MDZ2`` container to a ``(T, N, axes)`` float64 array."""
    return StreamingReader(source, recover=recover).read_all()


def stream_compress_dump(
    dump_path: str | Path,
    target: str | Path | BinaryIO,
    config: MDZConfig | None = None,
    workers: int = 0,
) -> StreamStats:
    """Compress a LAMMPS-style text dump file, one frame at a time."""
    from ..io.dump import read_dump

    frames = (frame.positions for frame in read_dump(dump_path))
    return stream_compress(frames, target, config=config, workers=workers)
