"""Reader for ``MDZ2`` streaming containers.

Supports three access patterns:

* :meth:`StreamingReader.read_all` — sequential full decode, sessions
  carried across buffers exactly like the writer's;
* :meth:`StreamingReader.read_buffer` — random access to one buffer; VQ
  streams decode it directly, other methods first decode buffer 0 to
  restore the session reference (same contract as ``MDZ1`` batch reads);
* :meth:`StreamingReader.iter_buffers` — incremental consumption with
  bounded memory (the analysis-side half of the in-situ pipeline).

Opened with ``recover=True``, a footer-less file (crashed writer,
truncated copy) is re-indexed by a linear scan and every *complete*
buffer — all axes present and CRC-intact — is readable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..baselines.api import SessionMeta
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..exceptions import ContainerFormatError
from . import format as fmt


class StreamingReader:
    """Random-access and sequential decoder for one ``MDZ2`` stream.

    Parameters
    ----------
    source:
        Container bytes, or a path to read them from.
    recover:
        Accept files without an intact footer by scanning for surviving
        chunk frames.  Off by default so silent truncation is an error.
    """

    def __init__(
        self, source: bytes | str | Path, recover: bool = False
    ) -> None:
        if isinstance(source, (str, Path)):
            self._blob = Path(source).read_bytes()
        else:
            self._blob = bytes(source)
        self._layout = fmt.parse_stream(self._blob, recover=recover)
        header = self._layout.header
        try:
            self.atoms = int(header["atoms"])
            self.axes = int(header["axes"])
            self.buffer_size = int(header["buffer_size"])
            self.error_bounds = tuple(
                float(b) for b in header["error_bounds"]
            )
            self.method = str(header["method"])
            self.sequence = str(header["sequence"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ContainerFormatError(
                f"stream header is missing required fields: {exc}"
            ) from exc
        self._chunk_map: dict[tuple[int, int], fmt.ChunkEntry] = {}
        for entry in self._layout.chunks:
            self._chunk_map[(entry.buffer_index, entry.axis)] = entry
        self._n_complete = self._count_complete_buffers()

    # -- structure ------------------------------------------------------

    @property
    def recovered(self) -> bool:
        """True when the index was rebuilt by the recovery scan."""
        return not self._layout.complete

    @property
    def chunks(self) -> list[fmt.ChunkEntry]:
        """Index entries of every readable chunk, in file order."""
        return list(self._layout.chunks)

    @property
    def n_buffers(self) -> int:
        """Number of *complete* buffers (every axis chunk present)."""
        return self._n_complete

    @property
    def snapshots(self) -> int:
        """Snapshots covered by the complete buffers."""
        return sum(
            self._chunk_map[(b, 0)].rows for b in range(self._n_complete)
        )

    def _count_complete_buffers(self) -> int:
        count = 0
        while all(
            (count, a) in self._chunk_map for a in range(self.axes)
        ):
            count += 1
        return count

    # -- decoding -------------------------------------------------------

    def _sessions(self) -> list[MDZAxisCompressor]:
        config = MDZConfig(
            error_bound=1.0,  # absolute per-axis bounds travel in begin()
            error_bound_mode="absolute",
            buffer_size=self.buffer_size,
            quantization_scale=int(self._layout.header["scale"]),
            sequence_mode=self.sequence,
            method=self.method,
            lossless_backend=str(self._layout.header["lossless"]),
        )
        sessions = []
        for bound in self.error_bounds:
            session = MDZAxisCompressor(config)
            session.begin(bound, SessionMeta(n_atoms=self.atoms))
            sessions.append(session)
        return sessions

    def _payload(self, buffer_index: int, axis: int) -> bytes:
        entry = self._chunk_map.get((buffer_index, axis))
        if entry is None:
            raise ContainerFormatError(
                f"chunk (buffer {buffer_index}, axis {axis}) is missing "
                "from the stream"
            )
        return fmt.chunk_payload(self._blob, entry)

    def read_buffer(self, buffer_index: int) -> np.ndarray:
        """Decode one complete buffer to a ``(rows, atoms, axes)`` array.

        VQ streams decode the target buffer directly; for the stateful
        methods buffer 0 is decoded first to restore the reference.
        """
        if not 0 <= buffer_index < self._n_complete:
            raise ContainerFormatError(
                f"buffer {buffer_index} out of range (stream has "
                f"{self._n_complete} complete buffers)"
            )
        sessions = self._sessions()
        rows = self._chunk_map[(buffer_index, 0)].rows
        out = np.empty((rows, self.atoms, self.axes), dtype=np.float64)
        for a in range(self.axes):
            if buffer_index > 0 and self.method != "vq":
                sessions[a].decompress_batch(self._payload(0, a))
            out[:, :, a] = sessions[a].decompress_batch(
                self._payload(buffer_index, a)
            )
        return out

    def iter_buffers(self) -> Iterator[np.ndarray]:
        """Yield every complete buffer in order, with persistent sessions."""
        sessions = self._sessions()
        for b in range(self._n_complete):
            rows = self._chunk_map[(b, 0)].rows
            out = np.empty((rows, self.atoms, self.axes), dtype=np.float64)
            for a in range(self.axes):
                out[:, :, a] = sessions[a].decompress_batch(
                    self._payload(b, a)
                )
            yield out

    def read_all(self) -> np.ndarray:
        """Decode every complete buffer into one ``(T, N, axes)`` array."""
        parts = list(self.iter_buffers())
        if not parts:
            return np.empty((0, self.atoms, self.axes), dtype=np.float64)
        return np.concatenate(parts, axis=0)

    # -- inspection -----------------------------------------------------

    def container_info(self):
        """Structural summary in the shared ``ContainerInfo`` shape."""
        from ..core.methods import METHOD_NAMES
        from ..io.container import ContainerInfo
        from ..serde import BlobReader
        from ..sz.lossless import lossless_decompress

        methods: list[dict[str, int]] = [dict() for _ in range(self.axes)]
        payload_bytes = 0
        for entry in self._layout.chunks:
            payload_bytes += entry.length
            blob = fmt.chunk_payload(self._blob, entry)
            reader = BlobReader(lossless_decompress(blob))
            method_id = int(reader.read_json()["m"])
            name = METHOD_NAMES.get(method_id, f"?{method_id}")
            per_axis = methods[entry.axis]
            per_axis[name] = per_axis.get(name, 0) + 1
        return ContainerInfo(
            snapshots=self.snapshots,
            atoms=self.atoms,
            axes=self.axes,
            buffer_size=self.buffer_size,
            error_bounds=self.error_bounds,
            method=self.method,
            sequence=self.sequence,
            n_buffers=self._n_complete,
            payload_bytes=payload_bytes,
            methods_per_axis=tuple(methods),
        )
