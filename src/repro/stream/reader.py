"""Reader for ``MDZ2`` streaming containers.

Supports three access patterns:

* :meth:`StreamingReader.read_all` — sequential full decode, sessions
  carried across buffers exactly like the writer's;
* :meth:`StreamingReader.read_buffer` — random access to one buffer; VQ
  streams decode it directly, other methods first decode buffer 0 to
  restore the session reference (same contract as ``MDZ1`` batch reads);
* :meth:`StreamingReader.iter_buffers` — incremental consumption with
  bounded memory (the analysis-side half of the in-situ pipeline).

Opened with ``recover=True``, a footer-less file (crashed writer,
truncated copy) is re-indexed by a linear scan and every *complete*
buffer — all axes present and CRC-intact — is readable up to the first
damaged frame.

Opened with ``salvage=True``, damaged frames are *skipped* instead of
ending the scan: quarantined chunks are excluded from the index, every
decodable buffer anywhere in the file is readable, and
:meth:`StreamingReader.salvage_report` accounts for exactly which
snapshot indices were lost.  The salvage guarantees (what "lost" means)
are documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..baselines.api import SessionMeta
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..exceptions import ContainerFormatError
from . import format as fmt


@dataclass(frozen=True)
class BufferStatus:
    """Salvage-time status of one buffer of the stream.

    ``rows_assumed`` is True when every chunk of the buffer was lost and
    the row count is the header's ``buffer_size`` (exact for all buffers
    except a partial final one, which a salvage report flags through
    ``SalvageReport.truncated_tail`` anyway).
    """

    index: int
    rows: int
    rows_assumed: bool
    present_axes: tuple[int, ...]
    decodable: bool
    #: Global snapshot range ``[start, stop)`` this buffer covers.
    snapshot_range: tuple[int, int]

    def to_json(self) -> dict:
        """JSON-serializable form used by ``mdz verify --json``."""
        return {
            "buffer": self.index,
            "rows": self.rows,
            "rows_assumed": self.rows_assumed,
            "present_axes": list(self.present_axes),
            "decodable": self.decodable,
            "snapshots": list(self.snapshot_range),
        }


@dataclass
class SalvageReport:
    """Exact accounting of what a salvage read can and cannot recover.

    The contract: every snapshot the stream ever contained is either

    * *readable* — its buffer is decodable and its global index appears
      in one of the ``buffers`` entries with ``decodable=True``; or
    * *lost* — its global index is listed in ``lost_snapshots``; or
    * part of the *unaccounted tail* — only when ``truncated_tail`` is
      True (footer-less files, where frames after the last surviving
      byte are unknowable).

    There is no fourth state: ``readable_snapshots +
    len(lost_snapshots)`` equals the stream's snapshot count whenever
    the footer survived (``expected_snapshots`` is then that count).
    """

    path: str | None
    footer_intact: bool
    #: The footer's snapshot-count claim; None when the footer was lost.
    expected_snapshots: int | None
    readable_snapshots: int
    #: Global indices of snapshots in undecodable buffers, ascending.
    lost_snapshots: list[int]
    buffers: list[BufferStatus]
    quarantined: list[fmt.Quarantine]
    #: True when the stream may have continued past the surviving bytes
    #: (no footer), i.e. zero or more trailing snapshots are unaccounted.
    truncated_tail: bool

    @property
    def intact(self) -> bool:
        """True when nothing was lost and the footer survived."""
        return (
            self.footer_intact
            and not self.lost_snapshots
            and not self.quarantined
        )

    def to_json(self) -> dict:
        """JSON-serializable form (written by ``mdz repair --report``)."""
        return {
            "path": self.path,
            "footer_intact": self.footer_intact,
            "expected_snapshots": self.expected_snapshots,
            "readable_snapshots": self.readable_snapshots,
            "lost_snapshots": self.lost_snapshots,
            "truncated_tail": self.truncated_tail,
            "intact": self.intact,
            "buffers": [b.to_json() for b in self.buffers],
            "quarantined": [q.to_json() for q in self.quarantined],
        }


class StreamingReader:
    """Random-access and sequential decoder for one ``MDZ2`` stream.

    Parameters
    ----------
    source:
        Container bytes, or a path to read them from.
    recover:
        Accept files without an intact footer by scanning for surviving
        chunk frames.  Off by default so silent truncation is an error.
    salvage:
        Implies ``recover``; additionally *skip* damaged chunk frames
        (quarantine) instead of stopping at the first one, making every
        decodable buffer in the file readable and
        :meth:`salvage_report` available with full loss accounting.

    Raises
    ------
    ContainerFormatError
        For empty input, a bad magic, a damaged header, a header missing
        required fields, or (strict mode) a missing footer.  When
        ``source`` is a path, the message names it.
    OSError
        When the path cannot be read.
    """

    def __init__(
        self,
        source: bytes | str | Path,
        recover: bool = False,
        salvage: bool = False,
    ) -> None:
        if isinstance(source, (str, Path)):
            self._path: str | None = str(source)
            self._blob = Path(source).read_bytes()
        else:
            self._path = None
            self._blob = bytes(source)
        self._salvage = bool(salvage)
        try:
            self._layout = fmt.parse_stream(
                self._blob, recover=recover or salvage, salvage=salvage
            )
        except struct.error as exc:
            # Defensive: framing bugs must never leak struct internals.
            raise self._named(
                ContainerFormatError(f"not a valid MDZ2 stream: {exc}")
            ) from exc
        except ContainerFormatError as exc:
            raise self._named(exc) from exc
        header = self._layout.header
        try:
            self.atoms = int(header["atoms"])
            self.axes = int(header["axes"])
            self.buffer_size = int(header["buffer_size"])
            self.error_bounds = tuple(
                float(b) for b in header["error_bounds"]
            )
            self.method = str(header["method"])
            self.sequence = str(header["sequence"])
        except (KeyError, TypeError, ValueError) as exc:
            raise self._named(
                ContainerFormatError(
                    f"stream header is missing required fields: {exc}"
                )
            ) from exc
        self._chunk_map: dict[tuple[int, int], fmt.ChunkEntry] = {}
        for entry in self._layout.chunks:
            self._chunk_map[(entry.buffer_index, entry.axis)] = entry
        self._n_complete = self._count_complete_buffers()

    def _named(self, exc: ContainerFormatError) -> ContainerFormatError:
        """Prefix a format error with the source path, when one exists."""
        if self._path is None:
            return exc
        return ContainerFormatError(f"{self._path}: {exc}")

    # -- structure ------------------------------------------------------

    @property
    def recovered(self) -> bool:
        """True when the index was rebuilt by the recovery scan."""
        return not self._layout.complete

    @property
    def chunks(self) -> list[fmt.ChunkEntry]:
        """Index entries of every readable chunk, in file order."""
        return list(self._layout.chunks)

    @property
    def n_buffers(self) -> int:
        """Number of *complete* buffers (every axis chunk present)."""
        return self._n_complete

    @property
    def snapshots(self) -> int:
        """Snapshots covered by the complete buffers."""
        return sum(
            self._chunk_map[(b, 0)].rows for b in range(self._n_complete)
        )

    def _count_complete_buffers(self) -> int:
        count = 0
        while all(
            (count, a) in self._chunk_map for a in range(self.axes)
        ):
            count += 1
        return count

    # -- decoding -------------------------------------------------------

    def _sessions(self) -> list[MDZAxisCompressor]:
        extra = {}
        if "members" in self._layout.header:
            extra["adp_members"] = tuple(self._layout.header["members"])
        config = MDZConfig(
            error_bound=1.0,  # absolute per-axis bounds travel in begin()
            error_bound_mode="absolute",
            buffer_size=self.buffer_size,
            quantization_scale=int(self._layout.header["scale"]),
            sequence_mode=self.sequence,
            method=self.method,
            lossless_backend=str(self._layout.header["lossless"]),
            **extra,
        )
        sessions = []
        for bound in self.error_bounds:
            session = MDZAxisCompressor(config)
            session.begin(bound, SessionMeta(n_atoms=self.atoms))
            sessions.append(session)
        return sessions

    def _payload(self, buffer_index: int, axis: int) -> bytes:
        entry = self._chunk_map.get((buffer_index, axis))
        if entry is None:
            raise ContainerFormatError(
                f"chunk (buffer {buffer_index}, axis {axis}) is missing "
                "from the stream"
            )
        return fmt.chunk_payload(self._blob, entry)

    def _decode_buffer(self, buffer_index: int) -> np.ndarray:
        """Decode one buffer whose chunks are all present (no range check).

        VQ streams decode the target buffer directly; for the stateful
        methods buffer 0 is decoded first to restore the reference.
        """
        sessions = self._sessions()
        rows = self._chunk_map[(buffer_index, 0)].rows
        out = np.empty((rows, self.atoms, self.axes), dtype=np.float64)
        for a in range(self.axes):
            if buffer_index > 0 and self.method != "vq":
                sessions[a].decompress_batch(self._payload(0, a))
            out[:, :, a] = sessions[a].decompress_batch(
                self._payload(buffer_index, a)
            )
        return out

    def read_buffer(self, buffer_index: int) -> np.ndarray:
        """Decode one complete buffer to a ``(rows, atoms, axes)`` array.

        Raises :class:`ContainerFormatError` when ``buffer_index`` is
        outside the stream's complete-buffer prefix.
        """
        if not 0 <= buffer_index < self._n_complete:
            raise ContainerFormatError(
                f"buffer {buffer_index} out of range (stream has "
                f"{self._n_complete} complete buffers)"
            )
        return self._decode_buffer(buffer_index)

    def iter_buffers(self) -> Iterator[np.ndarray]:
        """Yield every complete buffer in order, with persistent sessions."""
        sessions = self._sessions()
        for b in range(self._n_complete):
            rows = self._chunk_map[(b, 0)].rows
            out = np.empty((rows, self.atoms, self.axes), dtype=np.float64)
            for a in range(self.axes):
                out[:, :, a] = sessions[a].decompress_batch(
                    self._payload(b, a)
                )
            yield out

    def read_all(self) -> np.ndarray:
        """Decode every readable buffer into one ``(T, N, axes)`` array.

        In normal/recover mode this is the complete-buffer prefix.  In
        salvage mode every *decodable* buffer is included — also ones
        after a damaged region — so the result's time axis may skip lost
        snapshots; :meth:`salvage_report` maps rows back to global
        snapshot indices.
        """
        if self._salvage:
            parts = [array for _, _, array in self.iter_salvaged()]
        else:
            parts = list(self.iter_buffers())
        if not parts:
            return np.empty((0, self.atoms, self.axes), dtype=np.float64)
        return np.concatenate(parts, axis=0)

    # -- salvage --------------------------------------------------------

    def _buffer_statuses(self) -> list[BufferStatus]:
        """Per-buffer presence/decodability over every *known* buffer.

        A buffer is known when any chunk or quarantined frame names its
        index; buffers in between with nothing surviving are included
        with ``rows_assumed=True`` (the header's ``buffer_size``).
        """
        known_rows: dict[int, int] = {}
        present: dict[int, set[int]] = {}
        for entry in self._layout.chunks:
            known_rows.setdefault(entry.buffer_index, entry.rows)
            present.setdefault(entry.buffer_index, set()).add(entry.axis)
        for q in self._layout.quarantined:
            if q.buffer_index is not None and q.rows is not None:
                known_rows.setdefault(q.buffer_index, q.rows)
        n_known = max(known_rows, default=-1) + 1
        buffer0_complete = len(present.get(0, ())) == self.axes
        statuses: list[BufferStatus] = []
        start = 0
        for b in range(n_known):
            rows = known_rows.get(b)
            assumed = rows is None
            if assumed:
                rows = self.buffer_size
            axes_present = tuple(sorted(present.get(b, ())))
            complete = len(axes_present) == self.axes
            decodable = complete and (
                b == 0 or self.method == "vq" or buffer0_complete
            )
            statuses.append(
                BufferStatus(
                    index=b,
                    rows=rows,
                    rows_assumed=assumed,
                    present_axes=axes_present,
                    decodable=decodable,
                    snapshot_range=(start, start + rows),
                )
            )
            start += rows
        return statuses

    def salvage_report(self) -> SalvageReport:
        """Account for every snapshot: readable, lost, or unaccounted tail.

        Available in any mode (on an intact stream it reports zero
        losses); meaningful primarily with ``salvage=True``, where
        quarantined chunks make buffers undecodable.  See
        :class:`SalvageReport` for the exact guarantees.
        """
        statuses = self._buffer_statuses()
        lost: list[int] = []
        readable = 0
        for status in statuses:
            if status.decodable:
                readable += status.rows
            else:
                lost.extend(range(*status.snapshot_range))
        known = statuses[-1].snapshot_range[1] if statuses else 0
        expected = (
            self._layout.snapshots if self._layout.complete else None
        )
        if expected is not None and expected > known:
            # Footer claims snapshots no surviving or quarantined frame
            # covers (should not happen — the footer indexes everything —
            # but account rather than under-report).
            lost.extend(range(known, expected))
        return SalvageReport(
            path=self._path,
            footer_intact=self._layout.complete,
            expected_snapshots=expected,
            readable_snapshots=readable,
            lost_snapshots=lost,
            buffers=statuses,
            quarantined=list(self._layout.quarantined),
            truncated_tail=not self._layout.complete,
        )

    def iter_salvaged(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(buffer_index, first_snapshot, array)`` per decodable buffer.

        Decodes every buffer the salvage scan left intact — including
        buffers *after* a damaged region (stateful methods re-prime from
        buffer 0 per buffer, so a mid-stream gap does not poison what
        follows).  ``first_snapshot`` is the buffer's global snapshot
        offset from :meth:`salvage_report`.
        """
        for status in self._buffer_statuses():
            if status.decodable:
                yield (
                    status.index,
                    status.snapshot_range[0],
                    self._decode_buffer(status.index),
                )

    # -- inspection -----------------------------------------------------

    def container_info(self):
        """Structural summary in the shared ``ContainerInfo`` shape."""
        from ..core.methods import METHOD_NAMES
        from ..io.container import ContainerInfo
        from ..serde import BlobReader
        from ..sz.lossless import lossless_decompress

        methods: list[dict[str, int]] = [dict() for _ in range(self.axes)]
        payload_bytes = 0
        for entry in self._layout.chunks:
            payload_bytes += entry.length
            blob = fmt.chunk_payload(self._blob, entry)
            reader = BlobReader(lossless_decompress(blob))
            method_id = int(reader.read_json()["m"])
            name = METHOD_NAMES.get(method_id, f"?{method_id}")
            per_axis = methods[entry.axis]
            per_axis[name] = per_axis.get(name, 0) + 1
        return ContainerInfo(
            snapshots=self.snapshots,
            atoms=self.atoms,
            axes=self.axes,
            buffer_size=self.buffer_size,
            error_bounds=self.error_bounds,
            method=self.method,
            sequence=self.sequence,
            n_buffers=self._n_complete,
            payload_bytes=payload_bytes,
            methods_per_axis=tuple(methods),
            members=(
                tuple(str(m) for m in self._layout.header["members"])
                if "members" in self._layout.header
                else None
            ),
        )
