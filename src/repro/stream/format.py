"""The ``MDZ2`` append-only chunked container format.

Unlike the monolithic ``MDZ1`` layout (header + index + one payload area,
assembled in memory), ``MDZ2`` is written incrementally and is safe against
a writer that dies mid-stream.  Layout (all integers little-endian)::

    magic    : 4 bytes  b"MDZ2"
    header   : b"HDR2" | u32 len | JSON | u32 crc32(JSON)
    chunk*   : b"CHNK" | u32 buffer | u32 axis | u32 rows
               | u64 len | u32 crc32(payload) | payload
    footer   : b"FTRX" | u32 len | JSON index | u32 crc32(JSON)
    trailer  : u64 footer_offset | b"2ZDM"

Every chunk frame is *self-delimiting* and carries its own CRC, so a file
whose footer was never written (crashed writer, torn copy) can be
recovered by a linear scan: every fully written chunk is still decodable,
and the scan stops at the first truncated or corrupted frame.  The footer
(written at close) is an index of all chunk frames plus the final snapshot
count, giving O(1) open and random access on intact files.  Index rows
additionally carry a *rolling* CRC — ``crc32`` chained over the payload
bytes of every chunk up to and including the row's own — which lets
:func:`verify_stream` prove both per-chunk integrity and chunk ordering
in one pass.  Rows written before the rolling column existed have six
columns instead of seven and are still accepted.

Three parsing strictness levels build on the frame CRCs:

* strict (default) — an intact footer is required;
* ``recover=True`` — a missing footer is tolerated; chunks are re-indexed
  by a linear scan that stops at the first damaged frame;
* ``salvage=True`` — damaged frames are *skipped*: the scan re-syncs on
  the next chunk marker and every damaged region is reported as a
  :class:`Quarantine` entry, so a reader can account for exactly which
  chunks were lost instead of silently dropping the tail.

A chunk's payload is exactly one :class:`~repro.core.mdz.MDZAxisCompressor`
batch blob — the same bytes the ``MDZ1`` payload area concatenates — for
buffer ``buffer`` of axis ``axis`` covering ``rows`` snapshots.
The full byte-level specification (with a worked hex dump) lives in
``docs/formats.md``.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO

from ..exceptions import ContainerFormatError

#: File magic of the streaming container.
STREAM_MAGIC = b"MDZ2"
#: Frame markers.
HEADER_MAGIC = b"HDR2"
CHUNK_MAGIC = b"CHNK"
FOOTER_MAGIC = b"FTRX"
#: End-of-file marker (magic reversed) preceded by the footer offset.
END_MAGIC = b"2ZDM"

_SECTION_HEAD = struct.Struct("<4sI")  # marker, body length
_CHUNK_HEAD = struct.Struct("<4sIIIQI")  # marker, buffer, axis, rows, len, crc
_TRAILER = struct.Struct("<Q4s")  # footer offset, end magic
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class ChunkEntry:
    """Location and identity of one chunk frame inside a stream.

    ``rolling`` is the cumulative CRC32 of every chunk payload up to and
    including this one (``crc32(payload_k, rolling_{k-1})``, seeded with
    0); it is ``None`` for index rows written before the rolling column
    existed and for entries rebuilt by a recovery scan.
    """

    buffer_index: int
    axis: int
    rows: int
    offset: int  # absolute offset of the payload bytes
    length: int
    crc32: int
    rolling: int | None = None

    def to_row(self) -> list[int]:
        """Compact JSON representation used by the footer index."""
        row = [
            self.buffer_index,
            self.axis,
            self.rows,
            self.offset,
            self.length,
            self.crc32,
        ]
        if self.rolling is not None:
            row.append(self.rolling)
        return row

    @classmethod
    def from_row(cls, row: list) -> "ChunkEntry":
        """Rebuild an entry from a footer row (6 or 7 columns)."""
        if not 6 <= len(row) <= 7:
            raise ContainerFormatError(
                f"footer index row has {len(row)} columns; expected 6 or 7"
            )
        return cls(*(int(v) for v in row))


@dataclass(frozen=True)
class Quarantine:
    """One damaged region skipped by the salvage scan.

    ``buffer_index``/``axis``/``rows`` identify the chunk when its frame
    header survived (CRC or torn-payload damage); they are ``None`` when
    even the header was destroyed (``reason == "bad marker"``).
    """

    offset: int  # absolute file offset where the damage starts
    end: int  # offset where scanning resumed (exclusive)
    reason: str  # "crc mismatch" | "torn frame" | "bad marker"
    buffer_index: int | None = None
    axis: int | None = None
    rows: int | None = None

    def to_json(self) -> dict:
        """JSON-serializable form used by salvage reports."""
        return {
            "offset": self.offset,
            "end": self.end,
            "reason": self.reason,
            "buffer": self.buffer_index,
            "axis": self.axis,
            "rows": self.rows,
        }


@dataclass
class StreamLayout:
    """Parsed structure of an ``MDZ2`` stream (no payload decoding)."""

    header: dict
    chunks: list[ChunkEntry]
    snapshots: int
    #: True when the footer was present and intact; False for a layout
    #: rebuilt by the recovery scan.
    complete: bool
    #: Damaged regions skipped by the salvage scan (always empty outside
    #: salvage mode, where the first damaged frame ends parsing instead).
    quarantined: list[Quarantine] = field(default_factory=list)


def is_stream_container(blob: bytes) -> bool:
    """True when ``blob`` starts with the ``MDZ2`` magic."""
    return blob[:4] == STREAM_MAGIC


# -- writing ------------------------------------------------------------


def write_magic(fh: BinaryIO) -> int:
    fh.write(STREAM_MAGIC)
    return len(STREAM_MAGIC)


def _write_json_section(fh: BinaryIO, marker: bytes, obj: dict) -> int:
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    fh.write(_SECTION_HEAD.pack(marker, len(body)))
    fh.write(body)
    fh.write(_U32.pack(zlib.crc32(body) & 0xFFFFFFFF))
    return _SECTION_HEAD.size + len(body) + _U32.size


def write_header(fh: BinaryIO, header: dict) -> int:
    """Write the stream header frame; returns bytes written."""
    return _write_json_section(fh, HEADER_MAGIC, header)


def write_chunk(
    fh: BinaryIO,
    buffer_index: int,
    axis: int,
    rows: int,
    payload: bytes,
    offset: int,
    rolling: int | None = None,
) -> tuple[ChunkEntry, int]:
    """Append one chunk frame at absolute position ``offset``.

    ``rolling`` is the cumulative payload CRC32 *before* this chunk (the
    previous entry's ``rolling``, or 0 for the first chunk); pass ``None``
    to omit the rolling column from the resulting entry.  Returns the
    index entry and the number of bytes written.
    """
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    fh.write(
        _CHUNK_HEAD.pack(
            CHUNK_MAGIC, buffer_index, axis, rows, len(payload), crc
        )
    )
    fh.write(payload)
    entry = ChunkEntry(
        buffer_index=buffer_index,
        axis=axis,
        rows=rows,
        offset=offset + _CHUNK_HEAD.size,
        length=len(payload),
        crc32=crc,
        rolling=(
            None
            if rolling is None
            else zlib.crc32(payload, rolling) & 0xFFFFFFFF
        ),
    )
    return entry, _CHUNK_HEAD.size + len(payload)


def write_footer(
    fh: BinaryIO,
    chunks: list[ChunkEntry],
    snapshots: int,
    footer_offset: int,
) -> int:
    """Write the footer index and the end trailer; returns bytes written."""
    body = {
        "snapshots": snapshots,
        "chunks": [entry.to_row() for entry in chunks],
    }
    written = _write_json_section(fh, FOOTER_MAGIC, body)
    fh.write(_TRAILER.pack(footer_offset, END_MAGIC))
    return written + _TRAILER.size


# -- parsing ------------------------------------------------------------


def _read_json_section(
    blob: bytes, offset: int, marker: bytes, what: str
) -> tuple[dict, int]:
    """Parse one JSON frame; returns (object, offset past the frame)."""
    end = offset + _SECTION_HEAD.size
    if end > len(blob):
        raise ContainerFormatError(f"truncated container: missing {what}")
    found, length = _SECTION_HEAD.unpack_from(blob, offset)
    if found != marker:
        raise ContainerFormatError(
            f"bad {what} marker {found!r}; expected {marker!r}"
        )
    body_end = end + length
    if body_end + _U32.size > len(blob):
        raise ContainerFormatError(f"truncated container: short {what}")
    body = blob[end:body_end]
    (stored_crc,) = _U32.unpack_from(blob, body_end)
    if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
        raise ContainerFormatError(f"{what} checksum mismatch")
    try:
        obj = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise ContainerFormatError(f"corrupt {what} JSON: {exc}") from exc
    return obj, body_end + _U32.size


def _parse_footer(blob: bytes, body_start: int) -> StreamLayout | None:
    """Parse header + footer of an intact file; None if the footer is bad."""
    try:
        tail = blob[-_TRAILER.size :]
        footer_offset, end_magic = _TRAILER.unpack(tail)
        if end_magic != END_MAGIC:
            return None
        if not body_start <= footer_offset < len(blob):
            return None
        footer, after = _read_json_section(
            blob, footer_offset, FOOTER_MAGIC, "footer"
        )
        chunks = [ChunkEntry.from_row(row) for row in footer["chunks"]]
        snapshots = int(footer["snapshots"])
    except (ContainerFormatError, struct.error, KeyError, TypeError, ValueError):
        return None
    return StreamLayout(
        header={},
        chunks=chunks,
        snapshots=snapshots,
        complete=True,
    )


def _scan_chunks(
    blob: bytes, offset: int, salvage: bool = False
) -> tuple[list[ChunkEntry], list[Quarantine]]:
    """Linear recovery scan: every intact chunk frame, in file order.

    With ``salvage=False`` the scan stops at the first frame that is
    truncated, fails its CRC, or does not carry the chunk marker (a torn
    footer counts as end-of-stream).  With ``salvage=True`` a damaged
    frame is recorded as a :class:`Quarantine` region and the scan
    re-syncs on the next chunk marker, so intact frames *after* the
    damage are still indexed.  Returns ``(chunks, quarantined)``; the
    quarantine list is empty unless ``salvage`` is set.
    """
    chunks: list[ChunkEntry] = []
    quarantined: list[Quarantine] = []
    pos = offset
    size = len(blob)
    while pos + _CHUNK_HEAD.size <= size:
        marker, buffer_index, axis, rows, length, crc = _CHUNK_HEAD.unpack_from(
            blob, pos
        )
        reason = None
        ident: tuple[int | None, int | None, int | None] = (None, None, None)
        if marker == FOOTER_MAGIC:
            # A footer frame whose trailer was torn off: end of the chunk
            # area, not damage.
            pos = size
            break
        if marker != CHUNK_MAGIC:
            reason = "bad marker"
        else:
            payload_start = pos + _CHUNK_HEAD.size
            payload_end = payload_start + length
            ident = (buffer_index, axis, rows)
            if payload_end > size:
                reason = "torn frame"  # never fully written
            elif (
                zlib.crc32(blob[payload_start:payload_end]) & 0xFFFFFFFF
                != crc
            ):
                reason = "crc mismatch"
        if reason is None:
            chunks.append(
                ChunkEntry(
                    buffer_index=buffer_index,
                    axis=axis,
                    rows=rows,
                    offset=payload_start,
                    length=length,
                    crc32=crc,
                )
            )
            pos = payload_end
            continue
        if not salvage:
            break
        resync = blob.find(CHUNK_MAGIC, pos + 1)
        end = resync if resync != -1 else size
        quarantined.append(
            Quarantine(
                offset=pos,
                end=end,
                reason=reason,
                buffer_index=ident[0],
                axis=ident[1],
                rows=ident[2],
            )
        )
        pos = end
    if salvage and pos < size:
        # Trailing bytes too short to hold even a frame header: a torn
        # tail, reported so salvage accounting never loses data silently.
        quarantined.append(
            Quarantine(offset=pos, end=size, reason="torn frame")
        )
    return chunks, quarantined


def parse_stream(
    blob: bytes, recover: bool = False, salvage: bool = False
) -> StreamLayout:
    """Parse an ``MDZ2`` stream into its layout.

    With ``recover=False`` (the default) a stream without an intact footer
    raises :class:`ContainerFormatError` — a safety net against silently
    reading a truncated copy.  With ``recover=True`` the chunk frames are
    re-indexed by a linear scan and every fully written chunk up to the
    first damaged frame survives.  With ``salvage=True`` (implies
    ``recover``) damaged frames are skipped instead of ending the scan:
    they land in ``layout.quarantined``, and — when the footer *is*
    intact — indexed chunks whose payload fails its CRC are likewise
    moved to quarantine rather than raising at read time.

    Raises :class:`ContainerFormatError` on a bad magic, a damaged
    header, or (strict mode only) a missing footer.
    """
    if len(blob) == 0:
        raise ContainerFormatError("container is empty (zero-length input)")
    if not is_stream_container(blob):
        raise ContainerFormatError(
            f"bad container magic {blob[:4]!r}; expected {STREAM_MAGIC!r}"
        )
    header, body_start = _read_json_section(
        blob, len(STREAM_MAGIC), HEADER_MAGIC, "header"
    )
    layout = _parse_footer(blob, body_start)
    if layout is not None:
        layout.header = header
        if salvage:
            _quarantine_indexed(blob, layout)
        return layout
    if not (recover or salvage):
        raise ContainerFormatError(
            "stream has no intact footer (truncated or crashed writer); "
            "open with recover=True to index the surviving chunks"
        )
    chunks, quarantined = _scan_chunks(blob, body_start, salvage=salvage)
    snapshots = sum(c.rows for c in chunks if c.axis == 0)
    return StreamLayout(
        header=header,
        chunks=chunks,
        snapshots=snapshots,
        complete=False,
        quarantined=quarantined,
    )


def _quarantine_indexed(blob: bytes, layout: StreamLayout) -> None:
    """Move footer-indexed chunks with damaged bytes into quarantine.

    Covers the intact-footer-but-corrupted-file case (bit rot under a
    surviving index).  Two checks per entry: the payload is re-hashed
    against the indexed CRC, and the frame *header* preceding it must
    agree with the index (magic, identity, length, CRC) — payload CRCs
    do not cover header bytes, so without this check damage to a frame
    header would be invisible until a footer-less recovery scan needs
    that header.  Failures are quarantined in place, so salvage-mode
    readers skip them instead of raising on first touch.
    """
    survivors: list[ChunkEntry] = []
    for entry in layout.chunks:
        payload = blob[entry.offset : entry.offset + entry.length]
        reason = None
        if len(payload) != entry.length:
            reason = "torn frame"
        elif zlib.crc32(payload) & 0xFFFFFFFF != entry.crc32:
            reason = "crc mismatch"
        else:
            head_start = entry.offset - _CHUNK_HEAD.size
            if head_start < 0:
                reason = "frame header mismatch"
            else:
                marker, b, a, rows, length, crc = _CHUNK_HEAD.unpack_from(
                    blob, head_start
                )
                if (marker, b, a, rows, length, crc) != (
                    CHUNK_MAGIC,
                    entry.buffer_index,
                    entry.axis,
                    entry.rows,
                    entry.length,
                    entry.crc32,
                ):
                    reason = "frame header mismatch"
        if reason is None:
            survivors.append(entry)
        else:
            layout.quarantined.append(
                Quarantine(
                    offset=entry.offset - _CHUNK_HEAD.size,
                    end=entry.offset + entry.length,
                    reason=reason,
                    buffer_index=entry.buffer_index,
                    axis=entry.axis,
                    rows=entry.rows,
                )
            )
    layout.chunks = survivors


# -- verification and repair ---------------------------------------------


def verify_stream(blob: bytes) -> dict:
    """Full integrity audit of an ``MDZ2`` stream; never raises on damage.

    Checks, in order: magic, header frame CRC, footer presence and CRC,
    every chunk payload CRC, and — when the index carries the rolling
    column — the chained rolling checksum (which additionally proves the
    chunks are the ones the index committed, in the committed order).

    Returns a JSON-serializable report::

        {"format": "MDZ2", "intact": bool, "header": bool,
         "footer": "intact" | "missing", "chunks": int,
         "snapshots": int, "bad_chunks": [quarantine dicts],
         "rolling": "ok" | "absent" | "mismatch",
         "errors": [str, ...], "warnings": [str, ...]}

    ``intact`` is True only when the footer is present, every chunk
    checks out, and the rolling chain (when present) matches.  The
    rolling check stops at the first divergence (once the chain breaks,
    every later link mismatches by construction — one error says it
    all).  ``warnings`` flags conditions that are self-consistent but
    lossy to decode, e.g. a repaired archive keeping a buffer some of
    whose axis chunks are gone.

    Raises :class:`ContainerFormatError` only for inputs that are not an
    ``MDZ2`` stream at all (wrong magic, empty input, destroyed header) —
    everything downstream of a parseable header is reported, not raised.
    """
    report: dict = {
        "format": "MDZ2",
        "intact": False,
        "header": False,
        "footer": "missing",
        "chunks": 0,
        "snapshots": 0,
        "bad_chunks": [],
        "rolling": "absent",
        "errors": [],
        "warnings": [],
    }
    layout = parse_stream(blob, salvage=True)
    report["header"] = True
    report["footer"] = "intact" if layout.complete else "missing"
    report["chunks"] = len(layout.chunks)
    report["snapshots"] = layout.snapshots
    report["bad_chunks"] = [q.to_json() for q in layout.quarantined]
    if not layout.complete:
        report["errors"].append(
            "no intact footer (truncated file or crashed writer)"
        )
    for q in layout.quarantined:
        where = (
            f"chunk (buffer {q.buffer_index}, axis {q.axis})"
            if q.buffer_index is not None
            else f"region [{q.offset}, {q.end})"
        )
        report["errors"].append(f"{where}: {q.reason}")
    if layout.complete and any(
        c.rolling is not None for c in layout.chunks
    ):
        rolling = 0
        ok = True
        for entry in layout.chunks:
            payload = blob[entry.offset : entry.offset + entry.length]
            rolling = zlib.crc32(payload, rolling) & 0xFFFFFFFF
            if entry.rolling is not None and entry.rolling != rolling:
                ok = False
                report["errors"].append(
                    f"rolling checksum chain breaks at chunk (buffer "
                    f"{entry.buffer_index}, axis {entry.axis}): stored "
                    f"{entry.rolling:#010x}, computed {rolling:#010x}"
                )
                break  # every later link mismatches by construction
        report["rolling"] = "ok" if ok else "mismatch"
    present: dict[int, set[int]] = {}
    for entry in layout.chunks:
        present.setdefault(entry.buffer_index, set()).add(entry.axis)
    n_axes = int(layout.header.get("axes", 0) or 0)
    if n_axes:
        for b in sorted(present):
            missing = sorted(set(range(n_axes)) - present[b])
            if missing:
                report["warnings"].append(
                    f"buffer {b} is incomplete (axes {missing} missing): "
                    "its snapshots are not decodable"
                )
    report["intact"] = (
        layout.complete
        and not layout.quarantined
        and report["rolling"] != "mismatch"
    )
    return report


def repair_stream(blob: bytes) -> tuple[bytes, dict]:
    """Rebuild a clean ``MDZ2`` container from a damaged one.

    Salvage-parses ``blob``, keeps every intact chunk frame, and writes a
    fresh container (same header, re-framed chunks with fresh rolling
    checksums, new footer indexing exactly the survivors).  The repaired
    file opens strictly; its footer snapshot count covers only surviving
    axis-0 chunks, so nothing claims data that is gone.

    Returns ``(repaired_bytes, report)`` where ``report`` lists the kept
    chunk count, the quarantined regions dropped, and the snapshot
    accounting delta against the original footer's claim (when one
    survived).

    Raises :class:`ContainerFormatError` when the header is damaged
    beyond salvage (nothing can be rebuilt without it).
    """
    layout = parse_stream(blob, salvage=True)
    out = io.BytesIO()
    offset = write_magic(out)
    offset += write_header(out, layout.header)
    entries: list[ChunkEntry] = []
    rolling = 0
    for entry in layout.chunks:
        payload = blob[entry.offset : entry.offset + entry.length]
        new_entry, written = write_chunk(
            out,
            entry.buffer_index,
            entry.axis,
            entry.rows,
            payload,
            offset,
            rolling,
        )
        rolling = new_entry.rolling
        entries.append(new_entry)
        offset += written
    snapshots = sum(e.rows for e in entries if e.axis == 0)
    write_footer(out, entries, snapshots, offset)
    claimed = layout.snapshots if layout.complete else None
    report = {
        "chunks_kept": len(entries),
        "chunks_dropped": len(layout.quarantined),
        "dropped": [q.to_json() for q in layout.quarantined],
        "snapshots": snapshots,
        "snapshots_claimed": claimed,
        "footer_was_intact": layout.complete,
    }
    return out.getvalue(), report


def chunk_payload(blob: bytes, entry: ChunkEntry) -> bytes:
    """Extract and CRC-verify one chunk's payload bytes."""
    payload = blob[entry.offset : entry.offset + entry.length]
    if len(payload) != entry.length:
        raise ContainerFormatError(
            f"chunk (buffer {entry.buffer_index}, axis {entry.axis}) "
            "extends past the end of the container"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != entry.crc32:
        raise ContainerFormatError(
            f"chunk (buffer {entry.buffer_index}, axis {entry.axis}) "
            "checksum mismatch: the container is corrupted"
        )
    return payload
